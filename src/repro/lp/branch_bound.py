"""Branch-and-bound over the exact simplex relaxation.

:func:`solve_milp` turns :func:`repro.lp.simplex.solve_lp` into an
integer-programming solver:

* **depth-first search** with per-node bound-override dicts — the shared
  :class:`~repro.lp.model.LinearProgram` is never copied;
* **group branching**: time-indexed scheduling models are stacks of
  SOS1-style rows (one start cycle per operation), and splitting an
  operation's window at the fractional mean start prunes far better than
  fixing one binary at a time.  Callers pass the groups; single-variable
  most-fractional branching is the fallback;
* **exactness**: every LP verdict is a proof (Fractions end to end), so
  ``"infeasible"`` here means *no integer point exists* — the property
  the differential harness relies on when it treats the ILP backend as
  an oracle;
* **bounded effort**: an optional node limit turns exhaustion into the
  distinct ``"limit"`` status instead of a false infeasibility claim.

This module imports nothing outside the standard library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .model import LinearProgram
from .simplex import INFEASIBLE, OPTIMAL, SimplexSolution, solve_lp

#: Branch-and-bound statuses (a superset of the LP statuses).
LIMIT = "limit"

_ZERO = Fraction(0)
_ONE = Fraction(1)

Bounds = Dict[int, Tuple[Fraction, Optional[Fraction]]]


@dataclass
class BranchBoundResult:
    """Outcome of one MILP solve.

    Attributes:
        status: ``"optimal"``, ``"infeasible"`` or ``"limit"`` (node
            budget exhausted before the search closed — explicitly *not*
            an infeasibility claim).
        objective: Objective value of the best integer point found.
        values: The best integer assignment (indexed like
            ``program.variables``).
        nodes: Branch-and-bound nodes solved.
        iterations: Total simplex iterations across all nodes.
    """

    status: str
    objective: Optional[Fraction] = None
    values: Optional[List[Fraction]] = None
    nodes: int = 0
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


def _is_integral(value: Fraction) -> bool:
    return value.denominator == 1


def _pick_fractional_group(
    groups: Sequence[Sequence[Tuple[int, int]]],
    values: List[Fraction],
) -> Optional[Sequence[Tuple[int, int]]]:
    """The group whose weighted mean is most fractional, or ``None``."""
    best: Optional[Sequence[Tuple[int, int]]] = None
    best_score = _ZERO
    for group in groups:
        fractional = False
        mean = _ZERO
        for index, weight in group:
            value = values[index]
            if not _is_integral(value):
                fractional = True
            mean += value * weight
        if not fractional:
            continue
        score = abs(mean - Fraction(round(mean)))
        # A fractional group whose mean happens to land on an integer is
        # still branchable: give it a nominal score so it can be picked.
        if score == 0:
            score = Fraction(1, 1_000_000)
        if best is None or score > best_score:
            best = group
            best_score = score
    return best


def _pick_fractional_variable(
    integers: Sequence[int], values: List[Fraction]
) -> Optional[int]:
    """The integer variable closest to value 1/2, or ``None``."""
    best: Optional[int] = None
    best_score = _ZERO
    for index in integers:
        value = values[index]
        if _is_integral(value):
            continue
        score = min(value - math.floor(value), math.ceil(value) - value)
        if best is None or score > best_score:
            best = index
            best_score = score
    return best


def _group_children(
    group: Sequence[Tuple[int, int]],
    values: List[Fraction],
    bounds: Bounds,
) -> List[Bounds]:
    """Split a group at the floor of its fractional weighted mean.

    With ``sum(x) == 1`` and fractional support on at least two weights,
    the mean sits strictly between the smallest and largest supported
    weight, so both children remove LP mass.  The "start early" child
    (weights ≤ split) comes first — for makespan-style objectives the
    first integer point found this way tends to be strong, which
    tightens the incumbent bound early.
    """
    mean = sum((values[index] * weight for index, weight in group), _ZERO)
    split = math.floor(mean)
    weights = sorted(weight for _, weight in group)
    # Keep both children strict subsets even if the mean is degenerate.
    split = max(weights[0], min(split, weights[-1] - 1))
    early: Bounds = dict(bounds)
    late: Bounds = dict(bounds)
    for index, weight in group:
        if weight > split:
            early[index] = (_ZERO, _ZERO)
        else:
            late[index] = (_ZERO, _ZERO)
    return [early, late]


def _variable_children(
    index: int,
    value: Fraction,
    bounds: Bounds,
    lower: Fraction,
    upper: Optional[Fraction],
) -> List[Bounds]:
    floor = Fraction(math.floor(value))
    current = bounds.get(index, (lower, upper))
    down: Bounds = dict(bounds)
    down[index] = (current[0], floor)
    up: Bounds = dict(bounds)
    up[index] = (floor + _ONE, current[1])
    return [down, up]


def solve_milp(
    program: LinearProgram,
    *,
    groups: Optional[Sequence[Sequence[Tuple[int, int]]]] = None,
    node_limit: Optional[int] = None,
    integral_objective: bool = False,
) -> BranchBoundResult:
    """Minimize ``program`` subject to its integrality flags.

    Args:
        program: The model.  Variables flagged ``integer`` must be
            integral in any reported solution.
        groups: Optional SOS1-style branching groups: each group is a
            sequence of ``(variable, weight)`` pairs whose variables sum
            to one, branched by splitting the weight axis (for the
            scheduling formulation: one group per operation, weights are
            start cycles).  Variables not covered by any group fall back
            to single-variable branching.
        node_limit: Maximum LP nodes to solve; exhaustion yields status
            ``"limit"``.
        integral_objective: Declare that every integer point has an
            integral objective value (true for makespan and register
            counts), enabling ceiling-rounding of relaxation bounds —
            a substantially sharper prune.

    Returns:
        A :class:`BranchBoundResult`; ``status == "infeasible"`` is a
        proof that no integer point satisfies the constraints.
    """
    integers = program.integer_variables()
    incumbent: Optional[List[Fraction]] = None
    incumbent_objective: Optional[Fraction] = None
    nodes = 0
    iterations = 0
    limited = False
    stack: List[Bounds] = [{}]

    while stack:
        if node_limit is not None and nodes >= node_limit:
            limited = True
            break
        bounds = stack.pop()
        nodes += 1
        relaxation: SimplexSolution = solve_lp(program, bounds or None)
        iterations += relaxation.iterations
        if relaxation.status == INFEASIBLE:
            continue
        if relaxation.status != OPTIMAL:
            # An unbounded relaxation of a bounded-binary model signals a
            # modelling bug; surface it as a limit, never as a verdict.
            limited = True
            break
        bound = relaxation.objective
        if integral_objective:
            bound = Fraction(math.ceil(bound))
        if incumbent_objective is not None and bound >= incumbent_objective:
            continue
        values = relaxation.values
        if all(_is_integral(values[index]) for index in integers):
            incumbent = values
            incumbent_objective = program.evaluate_objective(values)
            continue
        children: Optional[List[Bounds]] = None
        if groups:
            group = _pick_fractional_group(groups, values)
            if group is not None:
                children = _group_children(group, values, bounds)
        if children is None:
            index = _pick_fractional_variable(integers, values)
            if index is None:  # pragma: no cover - all-integral handled above
                continue
            variable = program.variables[index]
            children = _variable_children(
                index, values[index], bounds, variable.lower, variable.upper
            )
        # DFS: push the preferred child last so it is explored first.
        for child in reversed(children):
            stack.append(child)

    if limited:
        # An incumbent found before the budget ran out is still only a
        # bound, not a proven optimum: report it under the limit status.
        return BranchBoundResult(
            status=LIMIT,
            objective=incumbent_objective,
            values=incumbent,
            nodes=nodes,
            iterations=iterations,
        )
    if incumbent is not None:
        return BranchBoundResult(
            status=OPTIMAL,
            objective=incumbent_objective,
            values=incumbent,
            nodes=nodes,
            iterations=iterations,
        )
    return BranchBoundResult(status=INFEASIBLE, nodes=nodes, iterations=iterations)
