"""Unit tests for the battery model."""

import pytest

from repro.power.battery import (
    Battery,
    BatteryError,
    BatteryParameters,
    high_quality_battery,
    iterations_until_depleted,
    lifetime_extension,
    low_quality_battery,
)


class TestParameters:
    def test_validation(self):
        with pytest.raises(BatteryError):
            BatteryParameters(capacity=0)
        with pytest.raises(BatteryError):
            BatteryParameters(capacity=10, peukert_alpha=0.9)
        with pytest.raises(BatteryError):
            BatteryParameters(capacity=10, peak_threshold=0)
        with pytest.raises(BatteryError):
            BatteryParameters(capacity=10, peak_penalty=0.5)
        with pytest.raises(BatteryError):
            BatteryParameters(capacity=10, supply_voltage=0)

    def test_quality_presets(self):
        low = low_quality_battery()
        high = high_quality_battery()
        assert low.peukert_alpha > high.peukert_alpha
        assert low.peak_threshold < high.peak_threshold
        assert low.peak_penalty > high.peak_penalty


class TestDraining:
    def test_ideal_battery_drains_linearly(self):
        params = BatteryParameters(capacity=100, peukert_alpha=1.0, peak_penalty=1.0)
        battery = Battery(params)
        removed = battery.drain_cycle(10.0)
        assert removed == pytest.approx(10.0)
        assert battery.remaining_charge == pytest.approx(90.0)
        assert battery.state_of_charge == pytest.approx(0.9)

    def test_peukert_makes_peaks_expensive(self):
        params = BatteryParameters(capacity=1000, peukert_alpha=1.3, peak_penalty=1.0)
        battery = Battery(params)
        # one cycle at 10 drains more than two cycles at 5
        peak = battery.effective_drain(10.0)
        split = 2 * battery.effective_drain(5.0)
        assert peak > split

    def test_threshold_penalty(self):
        params = BatteryParameters(
            capacity=1000, peukert_alpha=1.0, peak_threshold=10.0, peak_penalty=3.0
        )
        battery = Battery(params)
        below = battery.effective_drain(10.0)
        above = battery.effective_drain(12.0)
        # the 2 units above threshold cost 2 * penalty extra beyond linear
        assert above == pytest.approx(below + 2.0 + 2.0 * 2.0)

    def test_negative_power_rejected(self):
        battery = Battery(BatteryParameters(capacity=10))
        with pytest.raises(BatteryError):
            battery.drain_cycle(-1.0)

    def test_zero_power_drains_nothing(self):
        battery = Battery(BatteryParameters(capacity=10))
        assert battery.drain_cycle(0.0) == 0.0

    def test_depletion_and_reset(self):
        battery = Battery(BatteryParameters(capacity=5, peukert_alpha=1.0, peak_penalty=1.0))
        battery.drain_profile([3.0, 3.0])
        assert battery.depleted
        assert battery.remaining_charge == 0.0
        battery.reset()
        assert not battery.depleted


class TestLifetime:
    def test_iterations_until_depleted(self):
        params = BatteryParameters(capacity=100, peukert_alpha=1.0, peak_penalty=1.0)
        assert iterations_until_depleted(params, [5.0, 5.0]) == 10

    def test_empty_or_zero_profile_rejected(self):
        params = BatteryParameters(capacity=100)
        with pytest.raises(BatteryError):
            iterations_until_depleted(params, [])
        with pytest.raises(BatteryError):
            iterations_until_depleted(params, [0.0, 0.0])

    def test_flat_profile_lives_longer_than_spiky(self):
        """The paper's premise: same energy, flatter profile, longer lifetime."""
        params = low_quality_battery(capacity=100_000.0)
        spiky = [20.0, 0.0, 20.0, 0.0]
        flat = [10.0, 10.0, 10.0, 10.0]
        assert sum(spiky) == sum(flat)
        extension = lifetime_extension(params, spiky, flat)
        assert extension > 0.0

    def test_extension_larger_for_low_quality_battery(self):
        """Low-quality batteries benefit more from power flattening ([1])."""
        spiky = [20.0, 0.0, 20.0, 0.0]
        flat = [10.0, 10.0, 10.0, 10.0]
        low = lifetime_extension(low_quality_battery(1e6), spiky, flat)
        high = lifetime_extension(high_quality_battery(1e6), spiky, flat)
        assert low > high
