"""Benchmark registry: name → CDFG builder with the paper's latency bounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..ir.cdfg import CDFG
from .ar import ar_cdfg
from .cosine import COSINE_LATENCIES, cosine_cdfg
from .elliptic import ELLIPTIC_LATENCIES, elliptic_cdfg
from .fir import fir_cdfg
from .hal import HAL_LATENCIES, hal_cdfg


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark and the latency bounds it is evaluated at."""

    name: str
    builder: Callable[[], CDFG]
    latencies: Tuple[int, ...]
    in_paper: bool

    def build(self) -> CDFG:
        return self.builder()


_REGISTRY: Dict[str, BenchmarkSpec] = {
    "hal": BenchmarkSpec("hal", hal_cdfg, tuple(HAL_LATENCIES), in_paper=True),
    "cosine": BenchmarkSpec("cosine", cosine_cdfg, tuple(COSINE_LATENCIES), in_paper=True),
    "elliptic": BenchmarkSpec("elliptic", elliptic_cdfg, tuple(ELLIPTIC_LATENCIES), in_paper=True),
    "fir": BenchmarkSpec("fir", fir_cdfg, (8, 12), in_paper=False),
    "ar": BenchmarkSpec("ar", ar_cdfg, (14, 20), in_paper=False),
}


def benchmark_names(paper_only: bool = False) -> List[str]:
    """Names of registered benchmarks (optionally only the paper's three)."""
    return [
        name
        for name, spec in _REGISTRY.items()
        if spec.in_paper or not paper_only
    ]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name.

    Raises:
        KeyError: with the list of known names when the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def build_benchmark(name: str) -> CDFG:
    """Build the CDFG of a registered benchmark."""
    return get_benchmark(name).build()


def figure2_cases() -> List[Tuple[str, int]]:
    """The (benchmark, latency) pairs plotted in the paper's Figure 2."""
    cases: List[Tuple[str, int]] = []
    for name in ("hal", "cosine", "elliptic"):
        spec = get_benchmark(name)
        cases.extend((name, latency) for latency in spec.latencies)
    return cases
