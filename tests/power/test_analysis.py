"""Unit tests for repro.power.analysis."""

import pytest

from repro.power.analysis import (
    compare_profiles,
    flatness,
    headroom_profile,
    peak_power,
    power_variance,
    spike_report,
)
from repro.power.profile import PowerProfile


class TestSpikeReport:
    def test_no_spikes(self):
        report = spike_report(PowerProfile.of([1.0, 2.0]), threshold=5.0)
        assert not report.has_spikes
        assert report.count == 0
        assert report.worst_cycle is None
        assert report.total_excess_energy == 0.0

    def test_spikes_located_and_quantified(self):
        report = spike_report(PowerProfile.of([1.0, 8.0, 3.0, 9.0]), threshold=5.0)
        assert report.violating_cycles == (1, 3)
        assert report.worst_cycle == 3
        assert report.worst_excess == pytest.approx(4.0)
        assert report.total_excess_energy == pytest.approx(7.0)


class TestMetrics:
    def test_peak(self):
        assert peak_power(PowerProfile.of([1.0, 4.0])) == 4.0

    def test_variance_zero_for_flat(self):
        assert power_variance(PowerProfile.of([3.0, 3.0, 3.0])) == 0.0
        assert power_variance(PowerProfile.of([])) == 0.0

    def test_variance_positive_for_spiky(self):
        assert power_variance(PowerProfile.of([0.0, 6.0])) > 0.0

    def test_flatness_bounds(self):
        assert flatness(PowerProfile.of([2.0, 2.0])) == pytest.approx(1.0)
        assert flatness(PowerProfile.of([0.0, 4.0])) == pytest.approx(0.5)
        assert flatness(PowerProfile.of([])) == 1.0

    def test_headroom(self):
        assert headroom_profile(PowerProfile.of([2.0, 7.0]), budget=5.0) == [3.0, -2.0]


class TestComparison:
    def test_compare_reports_reduction(self):
        spiky = PowerProfile.of([10.0, 0.0, 10.0, 0.0])
        flat = PowerProfile.of([5.0, 5.0, 5.0, 5.0])
        metrics = compare_profiles(spiky, flat)
        assert metrics["peak_reduction"] == pytest.approx(5.0)
        assert metrics["peak_reduction_pct"] == pytest.approx(50.0)
        assert metrics["flatness_gain"] > 0
        assert metrics["energy_ratio"] == pytest.approx(1.0)
