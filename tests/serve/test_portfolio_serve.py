"""Portfolio jobs through the serving layer: deadlines, stats, HTTP.

``deadline_s`` is a submission-level job option that must be stamped
into the portfolio task's content address *before* admission (the
deadline changes what the spec means), and a portfolio win must credit
the winning concrete strategy's ``portfolio_wins`` counter in ``/stats``
so the portfolio row's jobs and the winners' credits reconcile.
"""

import pytest

from repro.api.task import TaskError
from repro.portfolio import portfolio_task
from repro.serve import Client, ClientError, SynthesisService, start_server
from repro.serve.http import parse_submission

SMALL = dict(latency=17, power_budget=12.0, strategies=["engine", "pasap"])


def small_task(**kwargs):
    return portfolio_task("hal", **{**SMALL, **kwargs})


class TestParseSubmissionDeadline:
    def test_deadline_rides_the_envelope(self):
        submission = parse_submission(
            '{"graph": "hal", "latency": 17, "scheduler": "portfolio",'
            ' "deadline_s": 5}'
        )
        assert submission.deadline_s == 5.0
        assert submission.tasks[0].scheduler == "portfolio"

    @pytest.mark.parametrize("bad", ['"soon"', "-1", "0", "true"])
    def test_malformed_deadline_is_rejected(self, bad):
        with pytest.raises(TaskError):
            parse_submission(
                '{"graph": "hal", "latency": 17, "scheduler": "portfolio",'
                f' "deadline_s": {bad}}}'
            )


class TestServiceDeadlineStamping:
    def test_deadline_is_stamped_before_keying(self):
        service = SynthesisService(workers=1)  # not started: queue only
        task = small_task()
        jobs = service.submit_many([task], deadline_s=30.0)
        stamped = jobs[0].task
        assert stamped.options["portfolio_deadline_s"] == 30.0
        assert jobs[0].key == stamped.cache_key()
        assert jobs[0].key != task.cache_key()  # the deadline changed the spec

    def test_non_portfolio_tasks_draw_a_task_error_atomically(self):
        from repro.api.task import SynthesisTask

        service = SynthesisService(workers=1)  # not started: queue only
        plain = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        with pytest.raises(TaskError):
            service.submit_many([small_task(), plain], deadline_s=30.0)
        assert service.stats()["queue"]["depth"] == 0  # nothing admitted


class TestPortfolioOverHTTP:
    @pytest.fixture(scope="class")
    def server(self):
        with start_server(workers=2) as handle:
            yield handle

    @pytest.fixture()
    def client(self, server):
        return Client(server.url)

    def test_race_with_deadline_serves_a_certified_winner(self, client):
        records = client.submit_and_wait([small_task()], deadline_s=60.0)
        assert len(records) == 1
        record = records[0]
        assert record.feasible is True
        assert record.winner in ("engine", "pasap+greedy")
        assert record.area is not None

        stats = client.stats()["per_strategy"]
        assert stats["portfolio"]["jobs"] >= 1
        winner_scheduler = record.winner.split("+", 1)[0]
        assert stats[winner_scheduler]["portfolio_wins"] >= 1
        # wins reconcile: every finished portfolio job credits one winner
        total_wins = sum(row.get("portfolio_wins", 0) for row in stats.values())
        assert total_wins >= stats["portfolio"]["jobs"] - stats["portfolio"].get(
            "failed", 0
        )

    def test_deadline_on_a_non_portfolio_task_is_a_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.submit(
                {"graph": "hal", "latency": 17, "power_budget": 12.0},
                deadline_s=5.0,
            )
        assert excinfo.value.status == 400
