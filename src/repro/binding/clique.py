"""Clique partitioning of compatibility graphs.

Sharing functional units among operations is a *clique partitioning*
problem: every clique of the compatibility graph can be implemented by a
single functional unit, and the cost of a partition is the total area of
the modules chosen for its cliques (plus interconnect).  Exact clique
partitioning is NP-hard; the paper (following Jou et al.) solves it
greedily, always merging the "best" pair first.

Two solvers are provided:

* :func:`greedy_clique_partition` — the production path: repeatedly merge
  the highest-gain compatible pair of clusters until no merge is possible.
* :func:`exhaustive_clique_partition` — brute force over set partitions
  for graphs of up to ~10 operations; used by tests to check that the
  greedy solution is a valid partition and close to optimal on small
  inputs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..library.module import FUModule
from .compatibility import CompatibilityGraph


@dataclass
class Clique:
    """A group of operations sharing one functional unit."""

    members: FrozenSet[str]
    module: Optional[FUModule] = None

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, op_name: str) -> bool:
        return op_name in self.members

    def merged_with(self, other: "Clique", module: Optional[FUModule] = None) -> "Clique":
        return Clique(self.members | other.members, module or self.module)


@dataclass
class CliquePartition:
    """A partition of operations into cliques (one FU instance per clique)."""

    cliques: List[Clique] = field(default_factory=list)

    def all_members(self) -> FrozenSet[str]:
        members: set = set()
        for clique in self.cliques:
            members |= clique.members
        return frozenset(members)

    def clique_of(self, op_name: str) -> Optional[Clique]:
        for clique in self.cliques:
            if op_name in clique:
                return clique
        return None

    def total_area(self, area_of: Callable[[Clique], float]) -> float:
        return sum(area_of(clique) for clique in self.cliques)

    def is_partition_of(self, operations: Sequence[str]) -> bool:
        """True if the cliques exactly cover ``operations`` without overlap."""
        seen: set = set()
        for clique in self.cliques:
            if clique.members & seen:
                return False
            seen |= clique.members
        return seen == set(operations)

    def is_valid(self, compatibility: CompatibilityGraph) -> bool:
        """True if every clique is actually a clique of the graph."""
        return all(compatibility.is_clique(clique.members) for clique in self.cliques)


#: Gain function: (clique_a, clique_b, shared modules) -> score; higher is
#: better; return None to forbid the merge.
GainFn = Callable[[Clique, Clique, List[FUModule]], Optional[float]]


def area_saving_gain(clique_a: Clique, clique_b: Clique, modules: List[FUModule]) -> Optional[float]:
    """Default gain: area saved by sharing one module instead of two.

    When several modules could host the merged clique the cheapest is
    assumed.  A merge is never worth a negative saving (the caller keeps
    separate instances instead), so such merges return ``None``.
    """
    if not modules:
        return None
    merged_area = min(m.area for m in modules)
    separate_area = 0.0
    for clique in (clique_a, clique_b):
        if clique.module is not None:
            separate_area += clique.module.area
        elif modules:
            separate_area += merged_area
    saving = separate_area - merged_area
    if saving < 0:
        return None
    return saving


def _cluster_compatible(
    compatibility: CompatibilityGraph,
    clique_a: Clique,
    clique_b: Clique,
) -> bool:
    """All-pairs compatibility between two clusters."""
    for a in clique_a.members:
        for b in clique_b.members:
            if not compatibility.compatible(a, b):
                return False
    return True


def greedy_clique_partition(
    compatibility: CompatibilityGraph,
    gain: GainFn = area_saving_gain,
    module_chooser: Optional[Callable[[List[FUModule]], FUModule]] = None,
) -> CliquePartition:
    """Greedy clique partitioning by repeated best-pair merging.

    Args:
        compatibility: The compatibility graph to partition.
        gain: Scoring function for candidate merges (higher is better).
        module_chooser: Picks the module for a merged clique from the set
            of modules shared by all members (default: smallest area).

    Returns:
        A valid :class:`CliquePartition` covering every operation of the
        compatibility graph.
    """
    if module_chooser is None:
        module_chooser = lambda modules: min(modules, key=lambda m: (m.area, m.latency, m.power))

    clusters: List[Clique] = [Clique(frozenset({op})) for op in sorted(compatibility.operations())]

    while True:
        best: Optional[Tuple[float, int, int, List[FUModule]]] = None
        for i, clique_a in enumerate(clusters):
            for j in range(i + 1, len(clusters)):
                clique_b = clusters[j]
                if not _cluster_compatible(compatibility, clique_a, clique_b):
                    continue
                members = list(clique_a.members | clique_b.members)
                if len(members) == 2:
                    pair = compatibility.pair(*sorted(members))
                    modules = list(pair.modules) if pair else []
                else:
                    modules = compatibility.common_modules(members)
                score = gain(clique_a, clique_b, modules)
                if score is None:
                    continue
                key = (score, -min(i, j), -max(i, j))
                if best is None or key > (best[0], -best[1], -best[2]):
                    best = (score, i, j, modules)
        if best is None:
            break
        _, i, j, modules = best
        merged = clusters[i].merged_with(clusters[j], module_chooser(modules) if modules else None)
        clusters = [c for k, c in enumerate(clusters) if k not in (i, j)] + [merged]

    return CliquePartition(cliques=clusters)


def exhaustive_clique_partition(
    compatibility: CompatibilityGraph,
    cost: Callable[[Clique], float],
    max_operations: int = 10,
) -> CliquePartition:
    """Optimal clique partition by brute force (small graphs only).

    Args:
        compatibility: The compatibility graph to partition.
        cost: Cost of one clique (e.g. the area of its cheapest module);
            the partition minimizing the summed cost is returned.
        max_operations: Safety cap; larger graphs raise ``ValueError``.
    """
    operations = sorted(compatibility.operations())
    if len(operations) > max_operations:
        raise ValueError(
            f"exhaustive partitioning limited to {max_operations} operations, "
            f"got {len(operations)}"
        )

    best_partition: Optional[CliquePartition] = None
    best_cost = float("inf")

    for partition in _set_partitions(operations):
        cliques = [Clique(frozenset(block)) for block in partition]
        candidate = CliquePartition(cliques=cliques)
        if not candidate.is_valid(compatibility):
            continue
        total = sum(cost(clique) for clique in cliques)
        if total < best_cost:
            best_cost = total
            best_partition = candidate

    if best_partition is None:
        # Singletons are always a valid partition.
        best_partition = CliquePartition(
            cliques=[Clique(frozenset({op})) for op in operations]
        )
    return best_partition


def _set_partitions(items: Sequence[str]):
    """Yield all set partitions of ``items`` (Bell-number many)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # Put ``first`` into each existing block...
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1:]
        # ...or into a block of its own.
        yield [[first]] + partition
