"""Unit tests for the columnar backend: round trips, queries, compaction."""

import json

import pytest

from repro.store import (
    ColumnarStore,
    LegacyStore,
    StoreError,
    StoreQuery,
    detect_backend,
    open_store,
)

from .conftest import fill, make_payload, synthetic_key


def canonical(payload):
    return json.dumps(payload["record"], sort_keys=True, separators=(",", ":"))


class TestRoundTrip:
    def test_put_get_before_compaction(self, columnar):
        expected = fill(columnar, 25)
        for key, payload in expected.items():
            got = columnar.get(key)
            assert got is not None
            assert canonical(got) == canonical(payload)

    def test_put_get_after_compaction(self, columnar):
        expected = fill(columnar, 25)
        report = columnar.compact()
        assert report["backend"] == "columnar"
        assert report["compacted"] == 25
        for key, payload in expected.items():
            assert canonical(columnar.get(key)) == canonical(payload)

    def test_survives_a_fresh_instance(self, columnar):
        expected = fill(columnar, 10)
        columnar.compact()
        reopened = ColumnarStore(columnar.root)
        for key, payload in expected.items():
            assert canonical(reopened.get(key)) == canonical(payload)

    def test_overlay_after_compaction(self, columnar):
        """Records appended after a compaction are merged over the gen file."""
        first = fill(columnar, 10)
        columnar.compact()
        key, payload = make_payload(99, family="fir")
        columnar.put(key, payload)
        assert canonical(columnar.get(key)) == canonical(payload)
        assert columnar.count() == 11
        assert set(columnar.keys()) == set(first) | {key}

    def test_rewrite_same_key_tail_wins(self, columnar):
        key, payload = make_payload(0, area=100.0)
        columnar.put(key, payload)
        _, newer = make_payload(0, area=200.0)
        columnar.put(key, newer)
        assert columnar.get(key)["record"]["area"] == 200.0
        assert columnar.count() == 1
        columnar.compact()
        assert columnar.get(key)["record"]["area"] == 200.0
        assert columnar.count() == 1

    def test_missing_key_is_none(self, columnar):
        fill(columnar, 3)
        assert columnar.get(synthetic_key(999)) is None

    def test_records_shard_by_key_prefix(self, columnar):
        fill(columnar, 64)
        shards = sorted(p.name for p in (columnar.root / "shards").iterdir())
        assert len(shards) > 1
        for shard in shards:
            assert len(shard) == 1 and shard in "0123456789abcdef"

    def test_bad_key_rejected(self, columnar):
        _, payload = make_payload(0)
        with pytest.raises(StoreError):
            columnar.put("not-a-hex-address", payload)

    def test_payload_without_record_rejected(self, columnar):
        with pytest.raises(StoreError):
            columnar.put(synthetic_key(0), {"key": synthetic_key(0)})


class TestCountAndStats:
    def test_count_tracks_puts_and_compaction(self, columnar):
        assert columnar.count() == 0
        fill(columnar, 12)
        assert columnar.count() == 12
        columnar.compact()
        assert columnar.count() == 12

    def test_count_sees_external_writers(self, columnar):
        fill(columnar, 5)
        assert columnar.count() == 5
        other = ColumnarStore(columnar.root)
        key, payload = make_payload(77)
        other.put(key, payload)
        assert columnar.count() == 6

    def test_store_stats_shape(self, columnar):
        fill(columnar, 8)
        columnar.compact()
        fill(columnar, 2, family="fir")  # re-put two records into the tail
        stats = columnar.store_stats()
        assert stats["backend"] == "columnar"
        assert stats["records"] == 8
        assert stats["shard_width"] == 1
        assert stats["bytes"] > 0
        assert sum(s["compacted_rows"] for s in stats["shards"]) == 8
        assert sum(s["tail_rows"] for s in stats["shards"]) == 2


class TestScan:
    QUERIES = {
        "family": StoreQuery(family="hal"),
        "range": StoreQuery(power=(None, 13.0)),
        "combo": StoreQuery(family="hal", feasible=True, latency=17),
    }

    @pytest.fixture
    def populated(self, columnar):
        for index in range(10):
            key, payload = make_payload(index, family="hal", power=10.0 + index)
            columnar.put(key, payload)
        for index in range(10, 16):
            key, payload = make_payload(
                index,
                family="fir",
                scheduler="asap",
                latency=20,
                power=30.0,
                feasible=False,
                error_type="InfeasibleError",
            )
            columnar.put(key, payload)
        return columnar

    def test_empty_query_returns_everything(self, populated):
        assert len(list(populated.scan(StoreQuery()))) == 16
        assert len(list(populated.scan())) == 16

    def test_family_filter(self, populated):
        rows = list(populated.scan(StoreQuery(family="fir")))
        assert len(rows) == 6
        assert all(row.family == "fir" for row in rows)

    def test_scheduler_and_feasible_filters(self, populated):
        assert len(list(populated.scan(StoreQuery(scheduler="asap")))) == 6
        assert len(list(populated.scan(StoreQuery(feasible=True)))) == 10
        assert len(list(populated.scan(StoreQuery(feasible=False)))) == 6

    def test_power_range_filter(self, populated):
        rows = list(populated.scan(StoreQuery(power=(12.0, 14.0))))
        assert len(rows) == 3
        assert all(12.0 <= row.power_budget <= 14.0 for row in rows)

    def test_exact_latency_filter(self, populated):
        assert len(list(populated.scan(StoreQuery(latency=20)))) == 6

    def test_filters_identical_after_compaction(self, populated):
        before = {
            name: sorted(row.key for row in populated.scan(query))
            for name, query in self.QUERIES.items()
        }
        populated.compact()
        for name, query in self.QUERIES.items():
            assert sorted(row.key for row in populated.scan(query)) == before[name]

    def test_scan_with_records_round_trips(self, populated):
        rows = list(populated.scan(StoreQuery(family="fir"), with_records=True))
        assert len(rows) == 6
        for row, record in rows:
            assert record["error_type"] == "InfeasibleError"
            assert record["task"]["graph"] == row.family == "fir"

    def test_inverted_range_rejected(self):
        with pytest.raises(StoreError):
            StoreQuery(power=(14.0, 12.0))

    def test_scan_parity_with_legacy(self, columnar, legacy):
        for store in (columnar, legacy):
            fill(store, 20)
        query = StoreQuery(family="hal", power=(None, 12.5))
        assert sorted(r.key for r in columnar.scan(query)) == sorted(
            r.key for r in legacy.scan(query)
        )


class TestBackendSelection:
    def test_fresh_dir_detects_nothing(self, tmp_path):
        assert detect_backend(tmp_path) is None

    def test_columnar_manifest_detected(self, tmp_path):
        fill(ColumnarStore(tmp_path), 1)
        assert detect_backend(tmp_path) == "columnar"
        assert open_store(tmp_path).backend == "columnar"

    def test_legacy_layout_detected(self, tmp_path):
        fill(LegacyStore(tmp_path), 1)
        assert detect_backend(tmp_path) == "legacy"
        assert open_store(tmp_path).backend == "legacy"

    def test_fresh_dir_defaults_to_legacy(self, tmp_path):
        assert open_store(tmp_path).backend == "legacy"
        assert open_store(tmp_path / "x", backend="columnar").backend == "columnar"

    def test_conflicting_backend_refused(self, tmp_path):
        fill(ColumnarStore(tmp_path), 1)
        with pytest.raises(StoreError, match="migrate"):
            open_store(tmp_path, backend="legacy")

    def test_unknown_backend_refused(self, tmp_path):
        with pytest.raises(StoreError):
            open_store(tmp_path, backend="parquet")

    def test_shard_width_conflict_refused(self, tmp_path):
        fill(ColumnarStore(tmp_path, shard_width=1), 1)
        with pytest.raises(StoreError):
            ColumnarStore(tmp_path, shard_width=2)
