"""Figure 2 — area vs. power constraint under different time constraints.

Regenerates the paper's Figure 2: for each of the six (benchmark, T)
cases — hal (T=10, 17), cosine (T=12, 15, 19), elliptic (T=22) — sweep the
per-cycle power budget from the smallest feasible value up to 150 and
record the synthesized datapath area.

Absolute areas differ from the paper (our register/mux model and CDFG
reconstructions are not byte-identical to the authors'), but the shape
checks assert the properties the paper reports:

* area never increases as the power budget is relaxed (reported with the
  running-best DSE convention, see DESIGN.md),
* the loosest-budget area equals the power-unconstrained area,
* a tighter latency bound never yields a smaller area at the same budget.
"""

from __future__ import annotations

import pytest

from repro.reporting.experiments import figure2_experiment
from repro.suite.registry import build_benchmark
from repro.synthesis.engine import synthesize

POWER_CAP = 150.0


@pytest.fixture(scope="module")
def library():
    from repro.library import default_library

    return default_library()


def test_figure2_reproduction(benchmark, library, sweep_steps):
    data = benchmark.pedantic(
        figure2_experiment,
        kwargs={"power_cap": POWER_CAP, "steps": sweep_steps, "library": library},
        rounds=1,
        iterations=1,
    )

    # All six paper cases must be present and feasible somewhere in the sweep.
    assert len(data.sweeps) == 6
    for (name, latency), sweep in data.sweeps.items():
        assert sweep.feasible_points(), f"{name} (T={latency}) never feasible"

        # Shape check 1: monotone non-increasing area vs. power budget.
        assert sweep.is_monotone_non_increasing(tolerance=1e-6), (
            f"{name} (T={latency}): area increases as the budget is relaxed"
        )

        # Shape check 2: the loose end of the curve matches the
        # power-unconstrained synthesis (the curve's asymptote).
        unconstrained = synthesize(build_benchmark(name), library, latency)
        loosest = sweep.feasible_points()[-1]
        assert loosest.area <= unconstrained.total_area + 1e-6

        # Tight budgets may cost area but never make the design infeasible
        # above the discovered minimum budget.
        assert all(point.feasible for point in sweep.points)

    # Shape check 3: tighter T is never cheaper at the loose end.
    assert data.sweeps[("hal", 10)].feasible_points()[-1].area >= \
        data.sweeps[("hal", 17)].feasible_points()[-1].area
    assert data.sweeps[("cosine", 12)].feasible_points()[-1].area >= \
        data.sweeps[("cosine", 19)].feasible_points()[-1].area

    print()
    print(data.table)
    print()
    print(data.plot)
