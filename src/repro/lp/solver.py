"""Pluggable MILP solver hook.

The formulation layer never calls :func:`repro.lp.branch_bound.solve_milp`
directly; it goes through :func:`solve`, which dispatches on a solver
name in :data:`MILP_SOLVERS` — the same string-keyed
:class:`~repro.registries.StrategyRegistry` pattern the rest of the
package uses for schedulers and binders.

Only the stdlib ``builtin`` backend ships with the package (the
container bakes in no solver libraries), but an environment that *does*
have one can graft it on without touching this package::

    from repro.lp import MILP_SOLVERS, BranchBoundResult

    @MILP_SOLVERS.register("glpk")
    def glpk_backend(program, **options):
        ...  # translate, solve, map back
        return BranchBoundResult(status="optimal", ...)

Backend contract: ``fn(program: LinearProgram, **options) ->
BranchBoundResult``.  Statuses must keep their proof semantics —
``"infeasible"`` only for a genuine certificate of infeasibility,
``"limit"`` for any inconclusive exit.
"""

from __future__ import annotations

from typing import Callable

from ..registries import StrategyRegistry
from .branch_bound import BranchBoundResult, solve_milp
from .model import LinearProgram

#: Registered MILP backends; ``builtin`` is the stdlib branch-and-bound.
MILP_SOLVERS: StrategyRegistry[Callable] = StrategyRegistry("milp solver")


@MILP_SOLVERS.register("builtin")
def _builtin(program: LinearProgram, **options) -> BranchBoundResult:
    """The zero-dependency exact branch-and-bound shipped in-tree."""
    return solve_milp(program, **options)


def solve(program: LinearProgram, solver: str = "builtin", **options) -> BranchBoundResult:
    """Solve ``program`` with the named backend.

    Args:
        program: The MILP to minimize.
        solver: A name registered in :data:`MILP_SOLVERS`.
        **options: Passed through to the backend (the builtin accepts
            ``groups``, ``node_limit`` and ``integral_objective``).

    Raises:
        repro.registries.UnknownStrategyError: for an unknown name.
    """
    return MILP_SOLVERS.get(solver)(program, **options)
