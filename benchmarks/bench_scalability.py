"""Engine scalability — synthesis run time vs. problem size.

Not a paper artifact, but a useful engineering benchmark: the greedy
partial-clique engine is quadratic-ish in the number of operations, and
this benchmark tracks the wall-clock cost of one synthesis run on random
layered graphs of growing size so regressions in the engine's complexity
show up in the benchmark history.
"""

from __future__ import annotations

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays
from repro.suite.generators import GeneratorConfig, random_cdfg
from repro.synthesis.engine import synthesize


def make_case(operations: int, library):
    cdfg = random_cdfg(
        GeneratorConfig(
            operations=operations,
            inputs=4,
            levels=max(3, operations // 6),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=3,
            seed=operations,
        )
    )
    selection = MinPowerSelection().select(cdfg, library)
    latency = critical_path_length(cdfg, selection_delays(selection, cdfg)) + 8
    return cdfg, latency


@pytest.mark.parametrize("operations", [10, 20, 40])
def test_synthesis_scalability(benchmark, library, operations):
    cdfg, latency = make_case(operations, library)
    result = benchmark.pedantic(
        synthesize,
        args=(cdfg, library, latency, 30.0),
        rounds=3,
        iterations=1,
    )
    result.verify()
    assert result.latency <= latency
