"""Declarative synthesis task specifications.

A :class:`SynthesisTask` fully describes one synthesis run as plain data:
the graph (a registered benchmark name or an inline CDFG dictionary), the
technology library (a registered name or an inline module table), the
(T, P) constraints, and the names of the strategies to use for module
selection, scheduling and binding.  Because every field is a string,
number or plain dictionary, tasks serialize to JSON and can be shipped to
worker processes, stored next to experiment results, or written by hand
in a batch file for ``repro batch``.

Strategy names resolve through :mod:`repro.registries` at run time, so a
task file can use any scheduler or binder a plugin has registered.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from ..ir.serialize import from_dict as cdfg_from_dict
from ..ir.serialize import to_dict as cdfg_to_dict
from ..library.library import FULibrary
from ..library.module import FUModule
from ..registries import LIBRARIES
from ..suite.registry import build_benchmark


class TaskError(ValueError):
    """A malformed task specification."""


#: Bump when the canonical spec layout (or anything that changes what a
#: given spec *means*) changes, so stale on-disk cache entries never match.
#: v2: register_budget joined the spec.
CACHE_KEY_VERSION = 2

#: Name of the racing meta-strategy.  Tasks with this scheduler are
#: executed by :func:`repro.portfolio.run_portfolio` (dispatched from
#: ``run_task``), never by a pipeline pass.
PORTFOLIO_SCHEDULER = "portfolio"

#: Option keys reserved for the portfolio meta-strategy's own config.
#: On a portfolio task they are split out of ``options`` before the
#: engine-option validation; on any other task they are unknown options.
PORTFOLIO_OPTION_KEYS = ("portfolio_strategies", "portfolio_deadline_s")


def split_portfolio_options(options: Dict[str, Any]) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    """Split a portfolio task's options into (portfolio config, engine overrides).

    The engine overrides are what every contender of the race inherits;
    the portfolio keys configure the race itself (strategy subset,
    deadline).  See :class:`repro.portfolio.PortfolioConfig`.
    """
    config = {k: v for k, v in options.items() if k in PORTFOLIO_OPTION_KEYS}
    rest = {k: v for k, v in options.items() if k not in PORTFOLIO_OPTION_KEYS}
    return config, rest


# --------------------------------------------------------------------------- #
# Inline library (de)serialization
# --------------------------------------------------------------------------- #
def library_to_dict(library: FULibrary) -> Dict[str, Any]:
    """Serialize a library so a task can carry a custom one inline."""
    return {
        "name": library.name,
        "modules": [
            {
                "name": module.name,
                "ops": sorted(op.value for op in module.supported_ops),
                "area": module.area,
                "latency": module.latency,
                "power": module.power,
            }
            for module in library.modules()
        ],
    }


def library_from_dict(data: Dict[str, Any]) -> FULibrary:
    """Reconstruct a library from :func:`library_to_dict` output."""
    try:
        modules = [
            FUModule.make(
                entry["name"],
                {OpType(op) for op in entry["ops"]},
                area=entry["area"],
                latency=entry["latency"],
                power=entry["power"],
            )
            for entry in data["modules"]
        ]
        return FULibrary(modules, name=data.get("name", "library"))
    except (KeyError, TypeError, ValueError) as exc:
        raise TaskError(f"malformed inline library spec: {exc}") from exc


# --------------------------------------------------------------------------- #
# Canonicalization for content addressing
# --------------------------------------------------------------------------- #
def _canonical_graph(data: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a CDFG dict for hashing without materializing a CDFG.

    Produces exactly what ``to_dict(from_dict(data))`` would, but in pure
    dictionary form (building a graph only to re-serialize it would
    dominate the cost of a cache lookup): operation types collapse to the
    canonical mnemonic, optional fields get their defaults, duplicate
    edges merge into one entry with summed multiplicity, and operations /
    edges are sorted so insertion order never changes the hash.
    """
    try:
        operations = [
            {
                "name": entry["name"],
                "type": OpType.from_mnemonic(entry["type"]).value,
                "label": entry.get("label", ""),
                "attrs": dict(entry.get("attrs") or {}),
            }
            for entry in data["operations"]
        ]
        multiplicities: Dict[Any, int] = {}
        for entry in data["edges"]:
            pair = (entry["src"], entry["dst"])
            multiplicities[pair] = multiplicities.get(pair, 0) + int(
                entry.get("multiplicity", 1)
            )
        edges = [
            {"src": src, "dst": dst, "multiplicity": multiplicity}
            for (src, dst), multiplicity in sorted(multiplicities.items())
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise TaskError(f"malformed inline CDFG spec: {exc}") from exc
    return {
        "name": data.get("name", ""),
        "operations": sorted(operations, key=lambda op: op["name"]),
        "edges": edges,
    }


def _canonical_options(overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Resolve option overrides against the EngineOptions defaults.

    Hashing the fully resolved option set makes ``options={}`` and an
    explicitly spelled-out ``EngineOptions()`` (or a partial override
    that happens to equal a default) share one content address — and
    rejects unknown option keys at hash time with the same error the
    pipeline would raise at run time.
    """
    from ..synthesis.engine import EngineOptions  # local import to avoid a cycle

    valid = {f.name for f in dataclasses.fields(EngineOptions)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise TaskError(
            f"unknown engine option(s) {unknown}; valid options: {sorted(valid)}"
        )
    return dataclasses.asdict(EngineOptions(**overrides))


def _canonical_library(data: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a library dict for hashing (sorted modules, float metrics)."""
    try:
        modules = [
            {
                "name": entry["name"],
                "ops": sorted(OpType(op).value for op in entry["ops"]),
                "area": float(entry["area"]),
                "latency": int(entry["latency"]),
                "power": float(entry["power"]),
            }
            for entry in data["modules"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise TaskError(f"malformed inline library spec: {exc}") from exc
    return {
        "name": data.get("name", "library"),
        "modules": sorted(modules, key=lambda module: module["name"]),
    }


# --------------------------------------------------------------------------- #
# The task spec
# --------------------------------------------------------------------------- #
_TASK_FIELDS = (
    "graph",
    "latency",
    "power_budget",
    "register_budget",
    "library",
    "scheduler",
    "binder",
    "selector",
    "options",
    "verify",
    "label",
)


@dataclass
class SynthesisTask:
    """A declarative, JSON-serializable spec of one synthesis run.

    Attributes:
        graph: Registered benchmark name (e.g. ``"hal"``) or an inline
            CDFG dictionary in :func:`repro.ir.serialize.to_dict` format.
        latency: Latency bound ``T`` in cycles.  ``None`` means "whatever
            the schedule takes" — only schedulers that do not need a bound
            (``asap``, ``pasap``) accept that.
        power_budget: Per-cycle power budget ``P``; ``None`` = unbounded.
        register_budget: Per-cycle register (live-value) budget ``R``;
            ``None`` = unbounded.  Only schedulers that can *guarantee*
            the budget accept it (currently ``ilp``); the pipeline
            rejects the combination otherwise instead of silently
            ignoring the constraint.
        library: Registered library name (``"table1"``, ``"single"``) or
            an inline :func:`library_to_dict` dictionary.
        scheduler: Scheduler strategy name (see ``SCHEDULERS.names()``).
            The default ``"engine"`` is the paper's combined
            scheduling/allocation/binding algorithm.
        binder: Binder strategy name used when the scheduler does not bind
            (every scheduler except ``engine``).
        selector: Module-selection policy name feeding the scheduler.
        options: Plain-dict overrides for
            :class:`repro.synthesis.engine.EngineOptions` fields.  Tasks
            with ``scheduler="portfolio"`` may additionally carry the
            reserved ``portfolio_strategies`` / ``portfolio_deadline_s``
            keys configuring the race (see
            :class:`repro.portfolio.PortfolioConfig`); the remaining
            options are inherited by every contender.
        verify: Re-check precedence/latency/power/conflicts on the result
            and raise on violation.
        label: Optional free-form label echoed in reports.
    """

    graph: Union[str, Dict[str, Any]]
    latency: Optional[int] = None
    power_budget: Optional[float] = None
    register_budget: Optional[int] = None
    library: Union[str, Dict[str, Any]] = "table1"
    scheduler: str = "engine"
    binder: str = "greedy"
    selector: str = "min_power"
    options: Dict[str, Any] = field(default_factory=dict)
    verify: bool = True
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.graph, (str, dict)):
            raise TaskError(
                "task graph must be a benchmark name or an inline CDFG dict, "
                f"got {type(self.graph).__name__}"
            )
        if not isinstance(self.library, (str, dict)):
            raise TaskError(
                "task library must be a registered name or an inline dict, "
                f"got {type(self.library).__name__}"
            )
        if self.latency is not None:
            try:
                self.latency = int(self.latency)
            except (TypeError, ValueError):
                raise TaskError(f"latency bound must be an integer, got {self.latency!r}") from None
            if self.latency <= 0:
                raise TaskError(f"latency bound must be positive, got {self.latency}")
        if self.power_budget is not None:
            try:
                self.power_budget = float(self.power_budget)
            except (TypeError, ValueError):
                raise TaskError(f"power budget must be a number, got {self.power_budget!r}") from None
            if self.power_budget <= 0:
                raise TaskError(f"power budget must be positive, got {self.power_budget}")
        if self.register_budget is not None:
            try:
                self.register_budget = int(self.register_budget)
            except (TypeError, ValueError):
                raise TaskError(
                    f"register budget must be an integer, got {self.register_budget!r}"
                ) from None
            if self.register_budget <= 0:
                raise TaskError(
                    f"register budget must be positive, got {self.register_budget}"
                )
        for field_name in ("scheduler", "binder", "selector"):
            if not isinstance(getattr(self, field_name), str):
                raise TaskError(f"task {field_name} must be a strategy name (string)")
        if not isinstance(self.options, dict):
            raise TaskError("task options must be a plain dict of engine options")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def of(
        cls,
        graph: Union[str, Dict[str, Any], CDFG],
        *,
        library: Union[str, Dict[str, Any], FULibrary] = "table1",
        latency: Optional[int] = None,
        power_budget: Optional[float] = None,
        register_budget: Optional[int] = None,
        scheduler: str = "engine",
        binder: str = "greedy",
        selector: str = "min_power",
        options: Any = None,
        verify: bool = True,
        label: Optional[str] = None,
    ) -> "SynthesisTask":
        """Build a task from live objects, inlining them as serializable data.

        Accepts a :class:`~repro.ir.cdfg.CDFG` for ``graph``, a
        :class:`~repro.library.library.FULibrary` for ``library`` and an
        ``EngineOptions`` instance (or any dataclass / dict) for
        ``options``; everything is converted to plain dictionaries so the
        resulting task still round-trips through JSON.
        """
        if isinstance(graph, CDFG):
            graph = cdfg_to_dict(graph)
        if isinstance(library, FULibrary):
            library = library_to_dict(library)
        if options is None:
            options = {}
        elif dataclasses.is_dataclass(options) and not isinstance(options, type):
            options = dataclasses.asdict(options)
        elif not isinstance(options, dict):
            raise TaskError(
                "options must be an EngineOptions instance or a plain dict, "
                f"got {type(options).__name__}"
            )
        return cls(
            graph=graph,
            latency=latency,
            power_budget=power_budget,
            register_budget=register_budget,
            library=library,
            scheduler=scheduler,
            binder=binder,
            selector=selector,
            options=dict(options),
            verify=verify,
            label=label,
        )

    @classmethod
    def naive(
        cls,
        graph: Union[str, Dict[str, Any], CDFG],
        *,
        library: Union[str, Dict[str, Any], FULibrary] = "table1",
        latency: Optional[int] = None,
        label: Optional[str] = None,
    ) -> "SynthesisTask":
        """The unconstrained 'undesired' baseline of the paper's Figure 1.

        ASAP schedule, cheapest module per operation, one FU instance per
        operation, no verification — maximal area and an unconstrained,
        spiky power profile.
        """
        return cls.of(
            graph,
            library=library,
            latency=latency,
            scheduler="asap",
            binder="naive",
            selector="min_area",
            verify=False,
            label=label,
        )

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve_graph(self) -> CDFG:
        """Materialize the CDFG (benchmark lookup or inline deserialization)."""
        if isinstance(self.graph, str):
            return build_benchmark(self.graph)
        return cdfg_from_dict(self.graph)

    def resolve_library(self) -> FULibrary:
        """Materialize the library (registry lookup or inline deserialization)."""
        if isinstance(self.library, str):
            return LIBRARIES.get(self.library)()
        return library_from_dict(self.library)

    @property
    def graph_name(self) -> str:
        """Display name of the graph without materializing it."""
        if isinstance(self.graph, str):
            return self.graph
        return str(self.graph.get("name", "<inline>"))

    def describe(self) -> str:
        parts = [f"graph={self.graph_name}", f"scheduler={self.scheduler}"]
        if self.latency is not None:
            parts.append(f"T={self.latency}")
        parts.append(f"P={self.power_budget:g}" if self.power_budget is not None else "P=inf")
        if self.register_budget is not None:
            parts.append(f"R={self.register_budget}")
        if self.label:
            parts.append(f"label={self.label!r}")
        return "SynthesisTask(" + ", ".join(parts) + ")"

    # ------------------------------------------------------------------ #
    # Content addressing
    # ------------------------------------------------------------------ #
    def canonical_spec(self) -> Dict[str, Any]:
        """A semantically canonical form of this task for content addressing.

        Two tasks that describe the same synthesis run hash identically
        even when they are *spelled* differently: a registered benchmark
        name and the equivalent inline CDFG dictionary resolve to the same
        canonical graph, a registered library name and its inline module
        table resolve to the same canonical library, and operation / edge /
        module ordering is normalized.  The free-form ``label`` is
        deliberately excluded — it does not affect the result.
        """
        if isinstance(self.graph, str):
            graph = _canonical_graph(cdfg_to_dict(build_benchmark(self.graph)))
        else:
            graph = _canonical_graph(self.graph)
        if isinstance(self.library, str):
            library = _canonical_library(library_to_dict(LIBRARIES.get(self.library)()))
        else:
            library = _canonical_library(self.library)
        portfolio = None
        options = self.options
        if self.scheduler == PORTFOLIO_SCHEDULER:
            # The race's own config (strategy subset, deadline) is part of
            # what the task *means*, so it joins the content address as an
            # extra spec entry; the remaining options are the engine
            # overrides every contender inherits.  Non-portfolio specs are
            # byte-identical to before — their keys never move.
            from ..portfolio.config import PortfolioConfig  # avoid an import cycle

            config, options = PortfolioConfig.from_task_options(self.options)
            portfolio = config.canonical(default_binder=self.binder)
        spec = {
            "version": CACHE_KEY_VERSION,
            "graph": graph,
            "library": library,
            "latency": self.latency,
            "power_budget": self.power_budget,
            "register_budget": self.register_budget,
            "scheduler": self.scheduler,
            "binder": self.binder,
            "selector": self.selector,
            "options": _canonical_options(options),
            "verify": self.verify,
        }
        if portfolio is not None:
            spec["portfolio"] = portfolio
        return spec

    def cache_key(self) -> str:
        """SHA-256 of the canonical spec: the task's content address.

        This is what the on-disk :class:`repro.explore.ResultCache` files
        results under, so identical (graph, library, T, P, strategy,
        options) points share one entry across sweeps, CLI invocations and
        worker processes.

        The key is memoized on first use — treat a task as immutable once
        it has been hashed or executed (they are plain data; build a new
        one instead of mutating).
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            payload = json.dumps(
                self.canonical_spec(), sort_keys=True, separators=(",", ":")
            )
            key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            self.__dict__["_cache_key"] = key
        return key

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "graph": self.graph,
            "latency": self.latency,
            "power_budget": self.power_budget,
            "register_budget": self.register_budget,
            "library": self.library,
            "scheduler": self.scheduler,
            "binder": self.binder,
            "selector": self.selector,
            "options": dict(self.options),
            "verify": self.verify,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SynthesisTask":
        """Build a task from a plain dict, rejecting unknown keys.

        Raises:
            TaskError: on unknown keys or malformed values, naming the
                offending key so batch-file mistakes are easy to find.
        """
        if not isinstance(data, dict):
            raise TaskError(f"task spec must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_TASK_FIELDS))
        if unknown:
            raise TaskError(
                f"unknown task field(s) {unknown}; valid fields: {list(_TASK_FIELDS)}"
            )
        if "graph" not in data:
            raise TaskError("task spec is missing the required 'graph' field")
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SynthesisTask":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Execution sugar
    # ------------------------------------------------------------------ #
    def run(self):
        """Run this task through the default pipeline; return the result.

        Raises the usual :class:`~repro.synthesis.result.SynthesisError`
        subclasses on infeasible constraints.  For a non-raising record
        (and for parallel execution) use :func:`repro.api.batch.run_task`
        / :func:`repro.api.batch.run_batch`.
        """
        from .pipeline import Pipeline  # local import to avoid a cycle

        return Pipeline.default().run(self)


def tasks_from_json(text: str) -> List[SynthesisTask]:
    """Parse a batch file: a JSON list of task specs or ``{"tasks": [...]}``.

    ``{"sweeps": [...]}`` entries are expanded through
    :class:`repro.api.batch.Sweep`.
    """
    from .batch import Sweep  # local import to avoid a cycle

    payload = json.loads(text)
    specs: List[Dict[str, Any]] = []
    sweeps: List[Dict[str, Any]] = []
    if isinstance(payload, list):
        specs = payload
    elif isinstance(payload, dict):
        specs = payload.get("tasks", [])
        sweeps = payload.get("sweeps", [])
        unknown = sorted(set(payload) - {"tasks", "sweeps"})
        if unknown:
            raise TaskError(f"unknown batch-file key(s) {unknown}; use 'tasks'/'sweeps'")
    else:
        raise TaskError("batch file must be a JSON list of tasks or an object")
    tasks = [SynthesisTask.from_dict(spec) for spec in specs]
    for sweep_spec in sweeps:
        tasks.extend(Sweep.from_dict(sweep_spec).tasks())
    if not tasks:
        raise TaskError("batch file contains no tasks")
    return tasks
