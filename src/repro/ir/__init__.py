"""Intermediate representation: operations, CDFGs and static analyses."""

from .operation import COMMUTATIVE_TYPES, Operation, OpType
from .cdfg import CDFG, CDFGError
from .builder import CDFGBuilder
from .validate import ValidationError, collect_problems, is_valid, validate_cdfg
from .analysis import (
    ValidatedDelayMap,
    alap_times,
    asap_times,
    concurrency_profile,
    critical_path,
    critical_path_length,
    depth_levels,
    energy_lower_bound_power,
    mobility,
    operation_intervals,
    resource_lower_bound,
    unit_delays,
    validated_delays,
)
from .transform import (
    io_wrapped,
    merge_graphs,
    relabel,
    remove_dead_operations,
    strip_virtual_operations,
)
from .serialize import from_dict, from_json, load, save, to_dict, to_json
from .dot import to_dot

__all__ = [
    "COMMUTATIVE_TYPES",
    "Operation",
    "OpType",
    "CDFG",
    "CDFGError",
    "ValidatedDelayMap",
    "validated_delays",
    "CDFGBuilder",
    "ValidationError",
    "collect_problems",
    "is_valid",
    "validate_cdfg",
    "alap_times",
    "asap_times",
    "concurrency_profile",
    "critical_path",
    "critical_path_length",
    "depth_levels",
    "energy_lower_bound_power",
    "mobility",
    "operation_intervals",
    "resource_lower_bound",
    "unit_delays",
    "io_wrapped",
    "merge_graphs",
    "relabel",
    "remove_dead_operations",
    "strip_virtual_operations",
    "from_dict",
    "from_json",
    "load",
    "save",
    "to_dict",
    "to_json",
    "to_dot",
]
