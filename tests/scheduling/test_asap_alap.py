"""Unit tests for the classical ASAP and ALAP schedulers."""

import pytest

from repro.ir.cdfg import CDFGError
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.alap import alap_schedule, alap_schedule_with_library
from repro.scheduling.asap import asap_schedule, asap_schedule_with_library
from repro.scheduling.constraints import TimeConstraint


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestAsap:
    def test_respects_precedence(self, hal, library):
        delays, powers = maps_for(hal, library)
        schedule = asap_schedule(hal, delays, powers)
        schedule.verify()

    def test_sources_start_at_zero(self, hal, library):
        delays, powers = maps_for(hal, library)
        schedule = asap_schedule(hal, delays, powers)
        for source in hal.sources():
            assert schedule.start(source) == 0

    def test_every_op_starts_at_data_ready(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        schedule = asap_schedule(cosine, delays, powers)
        for name in cosine.operation_names():
            ready = max(
                (schedule.finish(p) for p in cosine.predecessors(name)), default=0
            )
            assert schedule.start(name) == ready

    def test_makespan_equals_critical_path(self, hal, library):
        from repro.ir.analysis import critical_path_length

        delays, powers = maps_for(hal, library)
        schedule = asap_schedule(hal, delays, powers)
        assert schedule.makespan == critical_path_length(hal, delays)

    def test_locked_operations_respected(self, diamond, library):
        delays, powers = maps_for(diamond, library)
        schedule = asap_schedule(diamond, delays, powers, locked={"left": 5})
        assert schedule.start("left") == 5
        assert schedule.start("bottom") >= 6

    def test_with_library_wrapper(self, hal, library):
        schedule = asap_schedule_with_library(hal, library)
        schedule.verify()
        assert schedule.delays["m1_3x"] == 4  # min-power selection -> serial multiplier


class TestAlap:
    def test_respects_precedence_and_latency(self, hal, library):
        delays, powers = maps_for(hal, library)
        schedule = alap_schedule(hal, delays, powers, latency=20)
        schedule.verify(time=TimeConstraint(20))

    def test_everything_pushed_to_the_bound(self, hal, library):
        delays, powers = maps_for(hal, library)
        schedule = alap_schedule(hal, delays, powers, latency=20)
        for sink in hal.sinks():
            assert schedule.finish(sink) == 20

    def test_alap_never_earlier_than_asap(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        asap = asap_schedule(cosine, delays, powers)
        alap = alap_schedule(cosine, delays, powers, latency=25)
        for name in cosine.operation_names():
            assert alap.start(name) >= asap.start(name)

    def test_infeasible_latency_rejected(self, hal, library):
        delays, powers = maps_for(hal, library)
        with pytest.raises(CDFGError):
            alap_schedule(hal, delays, powers, latency=5)

    def test_locked_operations_respected(self, diamond, library):
        delays, powers = maps_for(diamond, library)
        schedule = alap_schedule(diamond, delays, powers, latency=12, locked={"right": 2})
        assert schedule.start("right") == 2

    def test_with_library_wrapper(self, hal, library):
        schedule = alap_schedule_with_library(hal, library, TimeConstraint(20))
        schedule.verify(time=TimeConstraint(20))
