"""Configuration of the ``portfolio`` racing meta-strategy.

A portfolio task is an ordinary :class:`~repro.api.task.SynthesisTask`
with ``scheduler="portfolio"`` whose ``options`` dict may carry two
reserved keys:

* ``portfolio_strategies`` — the contender subset, as a list (or
  comma-separated string) of ``"scheduler"`` / ``"scheduler+binder"``
  entries.  A bare scheduler resolves against the task's own ``binder``.
* ``portfolio_deadline_s`` — optional: instead of returning the
  canonically-first certified result, collect certified results until
  the deadline and return the best-area one.

Both keys are part of the task's content address (the race config
changes what the spec *means*); every other option key is an ordinary
engine override inherited by each contender.  The *order* of the
``portfolio_strategies`` list is semantic: it is the canonical decision
order of the race (see :mod:`repro.portfolio.runner`), which is exactly
why priors — which only permute the *launch* order — can never change
the returned record.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..api.task import (
    PORTFOLIO_SCHEDULER,
    SynthesisTask,
    TaskError,
    split_portfolio_options,
)
from ..store.priors import SELF_BINDING, pair_label

__all__ = [
    "DEFAULT_STRATEGIES",
    "PortfolioConfig",
    "portfolio_task",
    "with_deadline",
]

#: Default contender subset: the paper's combined engine, both
#: power-constrained heuristics, the classical force-directed scheduler
#: and the exact ILP — a spread of fast/likely and slow/complete.
DEFAULT_STRATEGIES = ("engine", "pasap", "palap", "force_directed", "ilp")


def _parse_entries(value: Any) -> Tuple[str, ...]:
    if isinstance(value, str):
        entries: Sequence[Any] = [part for part in value.split(",") if part.strip()]
    elif isinstance(value, (list, tuple)):
        entries = value
    else:
        raise TaskError(
            "portfolio_strategies must be a list of 'scheduler' / "
            f"'scheduler+binder' entries, got {value!r}"
        )
    cleaned: List[str] = []
    for entry in entries:
        if not isinstance(entry, str) or not entry.strip():
            raise TaskError(f"portfolio strategy entries must be non-empty strings, got {entry!r}")
        cleaned.append(entry.strip())
    if not cleaned:
        raise TaskError("portfolio_strategies must name at least one strategy")
    return tuple(cleaned)


@dataclass(frozen=True)
class PortfolioConfig:
    """The race config of one portfolio task: who races, and for how long.

    Attributes:
        strategies: Contender entries in canonical decision order; each a
            ``"scheduler"`` or ``"scheduler+binder"`` string.
        deadline_s: ``None`` races to the canonically-first certified
            result; a positive number collects certified results until
            the deadline and returns the best-area one.
    """

    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES
    deadline_s: Optional[float] = None

    @classmethod
    def from_options(cls, config_options: Dict[str, Any]) -> "PortfolioConfig":
        """Build and validate a config from the reserved option keys only."""
        strategies = config_options.get("portfolio_strategies")
        strategies = (
            DEFAULT_STRATEGIES if strategies is None else _parse_entries(strategies)
        )
        deadline = config_options.get("portfolio_deadline_s")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
                raise TaskError(
                    f"portfolio_deadline_s must be a number of seconds, got {deadline!r}"
                )
            deadline = float(deadline)
            if deadline <= 0:
                raise TaskError(f"portfolio_deadline_s must be positive, got {deadline}")
        return cls(strategies=strategies, deadline_s=deadline)

    @classmethod
    def from_task_options(
        cls, options: Dict[str, Any]
    ) -> Tuple["PortfolioConfig", Dict[str, Any]]:
        """Split a portfolio task's options into (config, engine overrides)."""
        config_options, engine_overrides = split_portfolio_options(options)
        return cls.from_options(config_options), engine_overrides

    @classmethod
    def from_task(cls, task: SynthesisTask) -> "PortfolioConfig":
        """The config of one portfolio task (raises on non-portfolio tasks)."""
        if task.scheduler != PORTFOLIO_SCHEDULER:
            raise TaskError(
                f"task scheduler is {task.scheduler!r}, not {PORTFOLIO_SCHEDULER!r}"
            )
        config, _ = cls.from_task_options(task.options)
        return config

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolved_pairs(self, default_binder: str) -> Tuple[Tuple[str, str], ...]:
        """The contender (scheduler, binder) pairs in canonical order.

        Bare scheduler entries resolve against ``default_binder`` (the
        portfolio task's own binder field); duplicates after resolution
        and recursive ``portfolio`` entries are rejected.
        """
        pairs: List[Tuple[str, str]] = []
        seen = set()
        for entry in self.strategies:
            parts = [part.strip() for part in entry.split("+")]
            if len(parts) == 1:
                scheduler, binder = parts[0], default_binder
            elif len(parts) == 2 and all(parts):
                scheduler, binder = parts
            else:
                raise TaskError(
                    f"malformed portfolio strategy entry {entry!r}; "
                    "use 'scheduler' or 'scheduler+binder'"
                )
            if scheduler == PORTFOLIO_SCHEDULER:
                raise TaskError("a portfolio cannot race itself as a contender")
            if scheduler in SELF_BINDING and len(parts) == 2:
                raise TaskError(
                    f"scheduler {scheduler!r} binds itself; drop the '+{binder}' suffix"
                )
            if scheduler in SELF_BINDING:
                binder = default_binder
            label = pair_label(scheduler, binder)
            if label in seen:
                raise TaskError(f"duplicate portfolio contender {label!r}")
            seen.add(label)
            pairs.append((scheduler, binder))
        return tuple(pairs)

    def labels(self, default_binder: str) -> Tuple[str, ...]:
        """Canonical pair labels of the contenders, in decision order."""
        return tuple(
            pair_label(scheduler, binder)
            for scheduler, binder in self.resolved_pairs(default_binder)
        )

    def canonical(self, default_binder: str) -> Dict[str, Any]:
        """The hashable form joining the task's canonical spec.

        Entries are fully resolved (``"pasap"`` with a greedy task binder
        and ``"pasap+greedy"`` hash identically) so spelling never splits
        a content address.
        """
        return {
            "strategies": list(self.labels(default_binder)),
            "deadline_s": self.deadline_s,
        }

    def to_options(self) -> Dict[str, Any]:
        """The reserved option keys that reproduce this config on a task."""
        options: Dict[str, Any] = {"portfolio_strategies": list(self.strategies)}
        if self.deadline_s is not None:
            options["portfolio_deadline_s"] = self.deadline_s
        return options


def portfolio_task(
    graph,
    *,
    latency: Optional[int] = None,
    power_budget: Optional[float] = None,
    register_budget: Optional[int] = None,
    library: Union[str, Dict[str, Any]] = "table1",
    binder: str = "greedy",
    selector: str = "min_power",
    strategies: Optional[Sequence[str]] = None,
    deadline_s: Optional[float] = None,
    options: Optional[Dict[str, Any]] = None,
    label: Optional[str] = None,
) -> SynthesisTask:
    """Convenience constructor for a portfolio task.

    ``strategies`` / ``deadline_s`` land in the reserved option keys;
    ``options`` carries the engine overrides every contender inherits.
    """
    merged = dict(options or {})
    if strategies is not None:
        merged["portfolio_strategies"] = list(strategies)
    if deadline_s is not None:
        merged["portfolio_deadline_s"] = deadline_s
    task = SynthesisTask.of(
        graph,
        library=library,
        latency=latency,
        power_budget=power_budget,
        register_budget=register_budget,
        scheduler=PORTFOLIO_SCHEDULER,
        binder=binder,
        selector=selector,
        options=merged,
        label=label,
    )
    PortfolioConfig.from_task(task)  # validate eagerly, not at hash time
    return task


def with_deadline(task: SynthesisTask, deadline_s: float) -> SynthesisTask:
    """A copy of a portfolio task with ``portfolio_deadline_s`` set.

    This is how the serving layer applies a submission-level
    ``deadline_s`` job option: the deadline is part of the task's content
    address, so it must be stamped on before admission keys the job.

    Raises:
        TaskError: when the task is not a portfolio task or the deadline
            is not a positive number.
    """
    if task.scheduler != PORTFOLIO_SCHEDULER:
        raise TaskError(
            f"deadline_s applies to portfolio tasks only; task scheduler is "
            f"{task.scheduler!r}"
        )
    if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
        raise TaskError(f"deadline_s must be a number of seconds, got {deadline_s!r}")
    if float(deadline_s) <= 0:
        raise TaskError(f"deadline_s must be positive, got {deadline_s}")
    options = dict(task.options)
    options["portfolio_deadline_s"] = float(deadline_s)
    return dataclasses.replace(task, options=options)
