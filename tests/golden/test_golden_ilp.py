"""Golden exact-vs-ilp agreement on the small benchmarks.

``exact`` (exhaustive search) and ``ilp`` (integer programming) are
independent implementations of the same optimization problem; the
fixtures in ``golden_ilp.json`` pin its answers on every benchmark small
enough for both.  Regenerate with ``generate_ilp_goldens.py`` (and say
so loudly in the PR) if a case is ever added.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.task import SynthesisTask
from repro.library import default_library
from repro.library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from repro.lp.formulation import ILPInfeasibleError, ilp_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.exact import ExactSizeError, minimum_latency_under_power
from repro.suite.registry import build_benchmark
from repro.verify.certificate import check_certificate

HERE = os.path.dirname(os.path.abspath(__file__))

with open(os.path.join(HERE, "golden_ilp.json")) as _handle:
    _GOLDEN = json.load(_handle)

EXACT_CAP = _GOLDEN["exact_cap"]
CASES = _GOLDEN["cases"]


def _ids(case):
    return f"{case['benchmark']}-T{case['latency']}-P{case['power']}"


@pytest.fixture(scope="module")
def library():
    return default_library()


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


@pytest.mark.parametrize("case", CASES, ids=_ids)
class TestGoldenAgreement:
    def test_exact_matches_the_golden_verdict(self, case, library):
        cdfg = build_benchmark(case["benchmark"])
        delays, powers = maps_for(cdfg, library)
        budget = (
            PowerConstraint.unbounded()
            if case["power"] is None
            else PowerConstraint(case["power"])
        )
        optimum = minimum_latency_under_power(
            cdfg,
            delays,
            powers,
            budget,
            horizon=case["latency"],
            max_operations=EXACT_CAP,
        )
        assert (optimum is not None) == case["feasible"]
        assert optimum == case["optimal_makespan"]

    def test_ilp_matches_the_golden_verdict(self, case, library):
        cdfg = build_benchmark(case["benchmark"])
        delays, powers = maps_for(cdfg, library)
        budget = (
            PowerConstraint.unbounded()
            if case["power"] is None
            else PowerConstraint(case["power"])
        )
        if not case["feasible"]:
            with pytest.raises(ILPInfeasibleError):
                ilp_schedule(cdfg, delays, powers, budget, case["latency"])
            return
        schedule = ilp_schedule(cdfg, delays, powers, budget, case["latency"])
        assert schedule.metadata["optimal_makespan"] == case["optimal_makespan"]
        assert schedule.makespan == case["optimal_makespan"]


class TestBeyondTheExactCap:
    """mesh (18 operations) is above the default exact size cap: the
    exhaustive search must decline with a *capacity* verdict while the
    ILP produces a certified optimal schedule for the same task."""

    TASK = dict(graph="mesh", latency=14, power_budget=20.0)

    def test_exact_declines_with_a_capacity_verdict(self, library):
        cdfg = build_benchmark("mesh")
        delays, powers = maps_for(cdfg, library)
        with pytest.raises(ExactSizeError):
            minimum_latency_under_power(
                cdfg, delays, powers, PowerConstraint(20.0), horizon=14
            )

    def test_ilp_certifies_an_optimal_result(self):
        task = SynthesisTask(scheduler="ilp", verify=False, **self.TASK)
        result = task.run()
        report = check_certificate(result)
        assert report.ok, report.describe()
        assert result.schedule.metadata["optimal_makespan"] == result.schedule.makespan

    def test_raising_the_cap_brings_exact_back_in_agreement(self):
        # Satellite check: the cap is a task-level option, and once it is
        # raised the exhaustive search confirms the ILP's optimum.
        ilp = SynthesisTask(scheduler="ilp", verify=False, **self.TASK).run()
        exact = SynthesisTask(
            scheduler="exact",
            verify=False,
            options={"exact_max_operations": 18},
            **self.TASK,
        ).run()
        assert (
            exact.schedule.metadata["optimal_makespan"]
            == ilp.schedule.metadata["optimal_makespan"]
        )
