"""Unit tests for the random CDFG generator."""

import pytest

from repro.ir.operation import OpType
from repro.ir.validate import is_valid
from repro.suite.generators import GeneratorConfig, random_cdfg, random_cdfg_batch


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(operations=0)
        with pytest.raises(ValueError):
            GeneratorConfig(inputs=0)
        with pytest.raises(ValueError):
            GeneratorConfig(levels=0)
        with pytest.raises(ValueError):
            GeneratorConfig(mul_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(mul_fraction=0.7, sub_fraction=0.7)


class TestGeneration:
    def test_graph_is_valid_and_sized(self):
        config = GeneratorConfig(operations=15, inputs=3, outputs=2, seed=7)
        graph = random_cdfg(config)
        assert is_valid(graph)
        arithmetic = [n for n in graph.operation_names() if graph.operation(n).is_arithmetic]
        assert len(arithmetic) == 15
        assert len(graph.operations_of_type(OpType.INPUT)) == 3
        assert len(graph.operations_of_type(OpType.OUTPUT)) <= 2

    def test_deterministic_for_same_seed(self):
        a = random_cdfg(GeneratorConfig(seed=42))
        b = random_cdfg(GeneratorConfig(seed=42))
        assert a.operation_names() == b.operation_names()
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_cdfg(GeneratorConfig(operations=20, seed=1))
        b = random_cdfg(GeneratorConfig(operations=20, seed=2))
        assert sorted(a.edges()) != sorted(b.edges())

    def test_type_mix_follows_fractions(self):
        config = GeneratorConfig(operations=60, mul_fraction=1.0, sub_fraction=0.0, seed=3)
        graph = random_cdfg(config)
        assert len(graph.operations_of_type(OpType.MUL)) == 60

        config = GeneratorConfig(operations=60, mul_fraction=0.0, sub_fraction=0.0, seed=3)
        graph = random_cdfg(config)
        assert len(graph.operations_of_type(OpType.ADD)) == 60

    def test_custom_name(self):
        assert random_cdfg(GeneratorConfig(seed=1), name="custom").name == "custom"

    def test_batch(self):
        graphs = random_cdfg_batch(4, base_seed=10, operations=8)
        assert len(graphs) == 4
        assert len({g.name for g in graphs}) == 4
        assert all(is_valid(g) for g in graphs)
