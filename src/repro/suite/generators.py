"""Parameterized random CDFG generation and the scenario families.

Random graphs complement the fixed benchmarks in two ways:

* the property-based tests use them to check scheduler and binder
  invariants on thousands of structurally diverse inputs, and
* the scalability benchmark sweeps graph size to measure how the
  synthesis run time grows.

The layered :func:`random_cdfg` generator produces DAGs that look like
real data-flow graphs: operations are organized in levels, every
non-input operation consumes one or two values from strictly earlier
levels, and the operation-type mix (multiplication-heavy vs.
addition-heavy) is controllable.

Beyond it, four structured **scenario families** stress shapes the
layered generator rarely produces — the extremes the verification
subsystem fuzzes across:

* :func:`chain_cdfg` — a serial dependence chain (zero parallelism, the
  narrowest possible power profile; stresses latency bounds),
* :func:`tree_cdfg` — a balanced reduction tree (parallelism halves
  every level; stresses register lifetimes at the wide base),
* :func:`butterfly_cdfg` — FFT-style butterfly stages (constant-width
  all-to-all shuffles; stresses interconnect and FU sharing),
* :func:`mesh_cdfg` — a diamond/pipeline mesh (constant-width systolic
  rows; stresses steady-state power).

Each family is registered in :data:`FAMILIES` as a seeded builder (shape
and op-type mix drawn deterministically from the seed) for the
differential fuzzer, and one fixed representative of each is registered
as a batch-runnable benchmark in :mod:`repro.suite.registry`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from ..registries import StrategyRegistry


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random CDFG generation.

    Attributes:
        operations: Number of arithmetic operations to generate.
        inputs: Number of primary inputs.
        levels: Number of dependence levels the operations are spread over.
        mul_fraction: Fraction of operations that are multiplications.
        sub_fraction: Fraction of operations that are subtractions (the
            remainder after multiplications and subtractions are additions).
        outputs: Number of sink values wrapped in output operations.
        seed: PRNG seed for reproducibility.
    """

    operations: int = 20
    inputs: int = 4
    levels: int = 5
    mul_fraction: float = 0.3
    sub_fraction: float = 0.2
    outputs: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError("need at least one operation")
        if self.inputs < 1:
            raise ValueError("need at least one input")
        if self.levels < 1:
            raise ValueError("need at least one level")
        if not 0.0 <= self.mul_fraction <= 1.0:
            raise ValueError("mul_fraction must be within [0, 1]")
        if not 0.0 <= self.sub_fraction <= 1.0:
            raise ValueError("sub_fraction must be within [0, 1]")
        if self.mul_fraction + self.sub_fraction > 1.0:
            raise ValueError("mul_fraction + sub_fraction must not exceed 1")


def random_cdfg(config: Optional[GeneratorConfig] = None, name: Optional[str] = None) -> CDFG:
    """Generate a random layered data-flow graph.

    The same configuration (including seed) always produces the same
    graph, which keeps property-test failures reproducible.
    """
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    b = CDFGBuilder(name or f"random_{config.seed}")

    inputs = [b.input(f"in{i}") for i in range(config.inputs)]

    # Assign each operation to a level; every level gets at least one
    # operation when possible.
    level_of: List[int] = []
    for index in range(config.operations):
        if index < config.levels:
            level_of.append(index)
        else:
            level_of.append(rng.randrange(config.levels))
    level_of.sort()

    produced_by_level: List[List[str]] = [list(inputs)]
    names_by_level: List[List[str]] = [[] for _ in range(config.levels)]

    for index, level in enumerate(level_of):
        # Candidate producers: anything from earlier levels (inputs count
        # as level -1 producers).
        candidates: List[str] = []
        for earlier in range(level + 1):
            candidates.extend(produced_by_level[earlier] if earlier < len(produced_by_level) else [])
        if not candidates:
            candidates = list(inputs)

        draw = rng.random()
        if draw < config.mul_fraction:
            optype = OpType.MUL
        elif draw < config.mul_fraction + config.sub_fraction:
            optype = OpType.SUB
        else:
            optype = OpType.ADD

        a = rng.choice(candidates)
        second = rng.choice(candidates)
        op_name = b.op(optype, f"op{index}", (a, second))
        while len(produced_by_level) <= level + 1:
            produced_by_level.append([])
        produced_by_level[level + 1].append(op_name)
        names_by_level[level].append(op_name)

    # Wrap some sinks in outputs.
    cdfg = b.cdfg
    sinks = [n for n in cdfg.sinks() if not cdfg.operation(n).is_io]
    rng.shuffle(sinks)
    for index, sink in enumerate(sinks[: config.outputs]):
        b.output(f"out{index}", sink)

    return b.build()


def random_cdfg_batch(count: int, base_seed: int = 0, **overrides) -> Sequence[CDFG]:
    """A list of random CDFGs with consecutive seeds (for sweeps)."""
    graphs = []
    for offset in range(count):
        config = GeneratorConfig(seed=base_seed + offset, **overrides)
        graphs.append(random_cdfg(config))
    return graphs


# --------------------------------------------------------------------------- #
# Scenario families
# --------------------------------------------------------------------------- #
def _draw_optype(rng: random.Random, mul_fraction: float, sub_fraction: float) -> OpType:
    """One arithmetic op type with the configured mul/sub/add mix."""
    draw = rng.random()
    if draw < mul_fraction:
        return OpType.MUL
    if draw < mul_fraction + sub_fraction:
        return OpType.SUB
    return OpType.ADD


def _check_fractions(mul_fraction: float, sub_fraction: float) -> None:
    if not 0.0 <= mul_fraction <= 1.0:
        raise ValueError("mul_fraction must be within [0, 1]")
    if not 0.0 <= sub_fraction <= 1.0:
        raise ValueError("sub_fraction must be within [0, 1]")
    if mul_fraction + sub_fraction > 1.0:
        raise ValueError("mul_fraction + sub_fraction must not exceed 1")


def chain_cdfg(
    length: int = 10,
    *,
    mul_fraction: float = 0.4,
    sub_fraction: float = 0.2,
    seed: int = 0,
    name: Optional[str] = None,
) -> CDFG:
    """A serial dependence chain of ``length`` operations.

    Operation ``i`` consumes operation ``i-1`` (the chain) plus a value
    drawn from anything produced earlier, so the critical path equals the
    whole graph: the narrowest possible power profile and the hardest
    shape for a latency bound.  Deterministic for a fixed seed.
    """
    if length < 1:
        raise ValueError("a chain needs at least one operation")
    _check_fractions(mul_fraction, sub_fraction)
    rng = random.Random(f"chain:{seed}")
    b = CDFGBuilder(name or f"chain{length}_s{seed}")
    first = b.input("in0")
    second = b.input("in1")
    values = [first, second]
    previous = second
    for index in range(length):
        optype = _draw_optype(rng, mul_fraction, sub_fraction)
        previous = b.op(optype, f"c{index}", (previous, rng.choice(values)))
        values.append(previous)
    b.output("out0", previous)
    return b.build()


def tree_cdfg(
    leaves: int = 8,
    *,
    mul_fraction: float = 0.3,
    sub_fraction: float = 0.2,
    seed: int = 0,
    name: Optional[str] = None,
) -> CDFG:
    """A balanced reduction tree over ``leaves`` input values.

    Adjacent values are combined pairwise level by level (an odd value
    carries over) until one root remains — ``leaves - 1`` operations
    whose parallelism halves every level, the classical reduction shape.
    """
    if leaves < 2:
        raise ValueError("a reduction tree needs at least two leaves")
    _check_fractions(mul_fraction, sub_fraction)
    rng = random.Random(f"tree:{seed}")
    b = CDFGBuilder(name or f"tree{leaves}_s{seed}")
    values = [b.input(f"in{i}") for i in range(leaves)]
    level = 0
    counter = 0
    while len(values) > 1:
        reduced: List[str] = []
        for left, right in zip(values[0::2], values[1::2]):
            optype = _draw_optype(rng, mul_fraction, sub_fraction)
            reduced.append(b.op(optype, f"t{level}_{counter}", (left, right)))
            counter += 1
        if len(values) % 2:
            reduced.append(values[-1])
        values = reduced
        level += 1
    b.output("out0", values[0])
    return b.build()


def butterfly_cdfg(
    lanes: int = 4,
    stages: Optional[int] = None,
    *,
    mul_fraction: float = 0.3,
    sub_fraction: float = 0.3,
    seed: int = 0,
    name: Optional[str] = None,
) -> CDFG:
    """FFT-style butterfly stages over ``lanes`` parallel lanes.

    ``lanes`` must be a power of two.  In stage ``s`` every lane combines
    its own value with its partner's at XOR-distance ``2**s`` — the
    constant-width all-to-all shuffle of an FFT dataflow, the worst case
    for interconnect (every stage brings new producers to every port).
    ``stages`` defaults to the full ``log2(lanes)`` passes.
    """
    if lanes < 2 or lanes & (lanes - 1):
        raise ValueError("butterfly lanes must be a power of two >= 2")
    full = lanes.bit_length() - 1
    stages = full if stages is None else stages
    if stages < 1:
        raise ValueError("a butterfly needs at least one stage")
    _check_fractions(mul_fraction, sub_fraction)
    rng = random.Random(f"butterfly:{seed}")
    b = CDFGBuilder(name or f"butterfly{lanes}x{stages}_s{seed}")
    values = [b.input(f"in{i}") for i in range(lanes)]
    for stage in range(stages):
        distance = 1 << (stage % full)
        values = [
            b.op(
                _draw_optype(rng, mul_fraction, sub_fraction),
                f"b{stage}_{lane}",
                (values[lane], values[lane ^ distance]),
            )
            for lane in range(lanes)
        ]
    for lane, value in enumerate(values):
        b.output(f"out{lane}", value)
    return b.build()


def mesh_cdfg(
    width: int = 3,
    depth: int = 4,
    *,
    mul_fraction: float = 0.25,
    sub_fraction: float = 0.25,
    seed: int = 0,
    name: Optional[str] = None,
) -> CDFG:
    """A diamond/pipeline mesh: ``depth`` systolic rows of ``width`` lanes.

    Row ``i`` lane ``j`` consumes lanes ``j`` and ``j+1`` (wrapping) of
    row ``i-1`` — overlapping diamonds that keep a constant ``width``
    operations live per level, the steady-state pipeline shape whose
    power profile is a plateau rather than a spike.
    """
    if width < 2:
        raise ValueError("a mesh needs at least two lanes")
    if depth < 1:
        raise ValueError("a mesh needs at least one row")
    _check_fractions(mul_fraction, sub_fraction)
    rng = random.Random(f"mesh:{seed}")
    b = CDFGBuilder(name or f"mesh{width}x{depth}_s{seed}")
    values = [b.input(f"in{j}") for j in range(width)]
    for row in range(depth):
        values = [
            b.op(
                _draw_optype(rng, mul_fraction, sub_fraction),
                f"m{row}_{lane}",
                (values[lane], values[(lane + 1) % width]),
            )
            for lane in range(width)
        ]
    for lane, value in enumerate(values):
        b.output(f"out{lane}", value)
    return b.build()


#: Seeded family builders for the differential fuzzer: name → fn(seed)
#: drawing the shape *and* the op-type mix deterministically from the
#: seed.  Shapes stay small enough that the exact scheduler engages on a
#: useful share of the graphs (its cap is 12 schedulable operations,
#: inputs and outputs included).
FAMILIES: StrategyRegistry = StrategyRegistry("generator family")


@FAMILIES.register("chain")
def _family_chain(seed: int) -> CDFG:
    rng = random.Random(f"family-chain:{seed}")
    return chain_cdfg(
        length=rng.randint(3, 7),
        mul_fraction=rng.uniform(0.0, 0.6),
        sub_fraction=rng.uniform(0.0, 0.3),
        seed=seed,
    )


@FAMILIES.register("tree")
def _family_tree(seed: int) -> CDFG:
    rng = random.Random(f"family-tree:{seed}")
    return tree_cdfg(
        leaves=rng.randint(3, 6),
        mul_fraction=rng.uniform(0.0, 0.6),
        sub_fraction=rng.uniform(0.0, 0.3),
        seed=seed,
    )


@FAMILIES.register("butterfly")
def _family_butterfly(seed: int) -> CDFG:
    rng = random.Random(f"family-butterfly:{seed}")
    lanes = rng.choice((2, 2, 4))
    return butterfly_cdfg(
        lanes=lanes,
        stages=rng.randint(1, 2),
        mul_fraction=rng.uniform(0.0, 0.6),
        sub_fraction=rng.uniform(0.0, 0.3),
        seed=seed,
    )


@FAMILIES.register("mesh")
def _family_mesh(seed: int) -> CDFG:
    rng = random.Random(f"family-mesh:{seed}")
    return mesh_cdfg(
        width=2,
        depth=rng.randint(2, 4),
        mul_fraction=rng.uniform(0.0, 0.6),
        sub_fraction=rng.uniform(0.0, 0.3),
        seed=seed,
    )


@FAMILIES.register("layered")
def _family_layered(seed: int) -> CDFG:
    """The general layered generator, kept exact-scheduler-sized."""
    rng = random.Random(f"family-layered:{seed}")
    config = GeneratorConfig(
        operations=rng.randint(4, 8),
        inputs=rng.randint(1, 3),
        levels=rng.randint(2, 4),
        mul_fraction=rng.uniform(0.0, 0.6),
        sub_fraction=rng.uniform(0.0, 0.3),
        outputs=rng.randint(0, 2),
        seed=seed,
    )
    return random_cdfg(config)


def family_names() -> List[str]:
    """Names of the registered scenario families."""
    return FAMILIES.names()


def family_cdfg(family: str, seed: int) -> CDFG:
    """Build the seeded variant ``seed`` of a registered family.

    Raises:
        repro.registries.UnknownStrategyError: for unknown family names.
    """
    return FAMILIES.get(family)(seed)
