"""Merge-candidate scoring for the combined synthesis engine.

At every iteration the engine contemplates a set of *decisions*: bind one
still-unbound operation either onto an existing functional-unit instance
(sharing it) or onto a freshly allocated instance of some library module.
This module defines the decision record and the scoring that decides
which candidate is "best", mirroring the cost structure of the paper
(minimum area first, least interconnect second, preserve scheduling
freedom third).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..library.module import FUModule


@dataclass(frozen=True)
class BindingDecision:
    """One candidate synthesis step.

    Attributes:
        op_name: The operation being scheduled/allocated/bound.
        module: The library module implementing it.
        instance_name: Name of the existing instance to share, or ``None``
            when a new instance of ``module`` is to be allocated.
        start_time: The start cycle the operation would be locked to.
        area_increase: Additional datapath area this decision causes
            (0 when sharing, ``module.area`` when allocating).
        interconnect_penalty: Estimated new mux inputs caused by sharing.
        mobility_loss: Total window-width reduction over the remaining
            unbound operations after tentatively committing the decision
            (smaller is better — it preserves freedom for later steps).
        effective_area: Amortized area used for *scoring* a new-instance
            decision: the module area divided by an estimate of how many
            still-unbound compatible operations the new instance could
            eventually host.  ``None`` falls back to ``area_increase``.
            This is how the engine compares "allocate one big shareable
            module" against "allocate one small single-use module" — the
            trade-off the paper's multi-implementation library enables.
    """

    op_name: str
    module: FUModule
    instance_name: Optional[str]
    start_time: int
    area_increase: float
    interconnect_penalty: int = 0
    mobility_loss: int = 0
    effective_area: Optional[float] = None

    @property
    def shares_instance(self) -> bool:
        return self.instance_name is not None

    def sort_key(self) -> Tuple:
        """Smaller keys are better decisions.

        Ordering: least (amortized) area increase, then least interconnect,
        then least mobility loss, then earliest start, then stable name
        ordering so results are deterministic.
        """
        scored_area = (
            self.effective_area if self.effective_area is not None else self.area_increase
        )
        return (
            scored_area,
            self.interconnect_penalty,
            self.mobility_loss,
            self.start_time,
            self.op_name,
            self.module.name,
            self.instance_name or "",
        )

    def describe(self) -> str:
        """One-line description used in synthesis traces."""
        target = self.instance_name or f"new {self.module.name}"
        return (
            f"bind {self.op_name} -> {target} @ cycle {self.start_time} "
            f"(+area {self.area_increase:g}, +mux {self.interconnect_penalty}, "
            f"-mobility {self.mobility_loss})"
        )


def better(first: BindingDecision, second: BindingDecision) -> BindingDecision:
    """The preferable of two decisions under :meth:`BindingDecision.sort_key`."""
    return first if first.sort_key() <= second.sort_key() else second
