"""Datapath area model.

The paper reports circuit *area* as the synthesis objective; its Table 1
gives the area of each functional-unit module, and the cost function also
considers interconnect ("using least interconnect").  Registers and
multiplexers therefore enter the total through a simple, documented model
that is held constant across every experiment so comparisons stay fair:

* functional units: the module areas of Table 1,
* registers: :data:`REGISTER_AREA` area units each,
* multiplexers: :data:`~repro.binding.interconnect.MUX_INPUT_AREA` per
  mux input (see :mod:`repro.binding.interconnect`).

``AreaBreakdown`` carries the components separately so reports can show
where the area goes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Area of one data register, in the paper's area units.  Chosen in the
#: same order of magnitude as the small library cells (comp = 8).
REGISTER_AREA = 12.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Datapath area split into its components (all in Table-1 units)."""

    functional_units: float
    registers: float
    interconnect: float

    @property
    def total(self) -> float:
        return self.functional_units + self.registers + self.interconnect

    @property
    def fu_only(self) -> float:
        """Functional-unit area alone (closest to the paper's headline axis)."""
        return self.functional_units

    def describe(self) -> str:
        return (
            f"area total={self.total:.1f} "
            f"(FUs={self.functional_units:.1f}, registers={self.registers:.1f}, "
            f"muxes={self.interconnect:.1f})"
        )


def register_area(count: int) -> float:
    """Total register area for ``count`` registers."""
    if count < 0:
        raise ValueError("register count cannot be negative")
    return count * REGISTER_AREA
