"""Allocation and binding: compatibility graphs, clique partitioning, registers, interconnect."""

from .intervals import (
    Interval,
    any_overlap,
    intervals_overlap,
    max_overlap_count,
    union_length,
)
from .compatibility import (
    CompatibilityGraph,
    CompatiblePair,
    build_compatibility_graph,
    instance_accepts_operation,
    shared_modules,
    windows_allow_sharing,
)
from .clique import (
    Clique,
    CliquePartition,
    area_saving_gain,
    exhaustive_clique_partition,
    greedy_clique_partition,
)
from .register import (
    RegisterAllocation,
    ValueLifetime,
    allocate_registers,
    left_edge_allocation,
    register_lower_bound,
    value_lifetimes,
)
from .interconnect import (
    MUX_INPUT_AREA,
    InterconnectReport,
    fu_mux_inputs,
    interconnect_report,
    register_mux_inputs,
    sharing_penalty,
)
from .merge import BindingDecision, better

__all__ = [
    "Interval",
    "any_overlap",
    "intervals_overlap",
    "max_overlap_count",
    "union_length",
    "CompatibilityGraph",
    "CompatiblePair",
    "build_compatibility_graph",
    "instance_accepts_operation",
    "shared_modules",
    "windows_allow_sharing",
    "Clique",
    "CliquePartition",
    "area_saving_gain",
    "exhaustive_clique_partition",
    "greedy_clique_partition",
    "RegisterAllocation",
    "ValueLifetime",
    "allocate_registers",
    "left_edge_allocation",
    "register_lower_bound",
    "value_lifetimes",
    "MUX_INPUT_AREA",
    "InterconnectReport",
    "fu_mux_inputs",
    "interconnect_report",
    "register_mux_inputs",
    "sharing_penalty",
    "BindingDecision",
    "better",
]
