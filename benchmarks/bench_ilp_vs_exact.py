"""Exact-search vs. ILP crossover — optimal scheduling cost vs. size.

Two exact engines decide the same makespan-minimization problem: the
exhaustive branch-and-prune search (``repro.scheduling.exact``, capped
at 12 operations by default because its worst case is exponential in
the operation count) and the time-indexed ILP
(``repro.lp``, whose cost is governed by the model size instead).  This
benchmark records both trajectories over the benchmark suite:

* on the *shared* sizes (chain/tree/butterfly/mesh, 13–18 operations,
  cap raised for the exhaustive side) each engine is timed on the same
  ``(T, P)`` point and their optima are asserted identical — the golden
  agreement invariant, measured;
* on the *large* benchmarks (hal/cosine/elliptic/ar, 20–54 operations)
  only the ILP runs: past the cap this is the only engine that still
  returns certified optima, which is the crossover the subsystem exists
  for.

Record a run into the benchmark history with::

    python benchmarks/record.py --bench bench_ilp_vs_exact \
        --history BENCH_scalability.json --label ilp-vs-exact
"""

from __future__ import annotations

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from repro.lp.formulation import ilp_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.exact import minimum_latency_under_power
from repro.suite.registry import build_benchmark

#: Shared cases: benchmark -> (latency bound, power budget, exact cap).
#: All small enough that the exhaustive search terminates quickly once
#: its cap is raised to cover the graph.
SHARED_CASES = {
    "chain": (26, 10.0, 13),
    "tree": (7, 15.0, 16),
    "butterfly": (9, 15.0, 16),
    "mesh": (14, 20.0, 18),
}

#: ILP-only cases: benchmark -> (latency slack over cp, power budget).
#: Every one is beyond the exhaustive search's reach.
LARGE_CASES = {
    "hal": (4, 15.0),
    "cosine": (3, 40.0),
    "elliptic": (3, 25.0),
    "ar": (3, 25.0),
}


def make_case(case: str, library):
    cdfg = build_benchmark(case)
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return cdfg, delays, powers


@pytest.mark.parametrize("case", sorted(SHARED_CASES))
def test_exact_on_shared_sizes(case, benchmark, library):
    latency, power, cap = SHARED_CASES[case]
    cdfg, delays, powers = make_case(case, library)
    optimum = benchmark.pedantic(
        minimum_latency_under_power,
        args=(cdfg, delays, powers, PowerConstraint(power)),
        kwargs={"horizon": latency, "max_operations": cap},
        rounds=3,
        iterations=1,
    )
    assert optimum is not None


@pytest.mark.parametrize("case", sorted(SHARED_CASES))
def test_ilp_on_shared_sizes(case, benchmark, library):
    latency, power, cap = SHARED_CASES[case]
    cdfg, delays, powers = make_case(case, library)
    schedule = benchmark.pedantic(
        ilp_schedule,
        args=(cdfg, delays, powers, PowerConstraint(power), latency),
        rounds=3,
        iterations=1,
    )
    # The measured agreement invariant: both exact engines return the
    # same optimum on every shared size.
    optimum = minimum_latency_under_power(
        cdfg,
        delays,
        powers,
        PowerConstraint(power),
        horizon=latency,
        max_operations=cap,
    )
    assert schedule.metadata["optimal_makespan"] == optimum


@pytest.mark.parametrize("case", sorted(LARGE_CASES))
def test_ilp_beyond_the_cap(case, benchmark, library):
    slack, power = LARGE_CASES[case]
    cdfg, delays, powers = make_case(case, library)
    latency = critical_path_length(cdfg, delays) + slack
    schedule = benchmark.pedantic(
        ilp_schedule,
        args=(cdfg, delays, powers, PowerConstraint(power), latency),
        rounds=3,
        iterations=1,
    )
    assert schedule.metadata["optimal_makespan"] <= latency
    assert schedule.respects_precedence()
