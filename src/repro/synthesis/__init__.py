"""Combined power-constrained synthesis: engine, baselines, exploration."""

from .result import (
    PowerInfeasibleSynthesisError,
    SynthesisError,
    SynthesisResult,
    TimingInfeasibleError,
)
from .engine import EngineOptions, PowerConstrainedSynthesizer, synthesize
from .baseline import naive_synthesis, time_constrained_synthesis
from .explore import (
    SweepPoint,
    SweepResult,
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
    synthesize_point,
)

__all__ = [
    "PowerInfeasibleSynthesisError",
    "SynthesisError",
    "SynthesisResult",
    "TimingInfeasibleError",
    "EngineOptions",
    "PowerConstrainedSynthesizer",
    "synthesize",
    "naive_synthesis",
    "time_constrained_synthesis",
    "SweepPoint",
    "SweepResult",
    "default_power_grid",
    "minimum_feasible_power",
    "power_area_sweep",
    "synthesize_point",
]
