"""The columnar backend's on-disk binary format (stdlib only).

Two file kinds make up a shard of a
:class:`~repro.store.columnar.ColumnarStore`:

**Append segments** (``append.seg``, plus ``consumed-*.seg`` awaiting a
compaction) hold one CRC-framed record per write::

    b"RSG1" | u32 body_len | u32 crc32(body) | body

with ``body`` = 32-byte raw content address + the fixed-width numeric
row (:data:`ROW_STRUCT`) + five length-prefixed strings (family,
scheduler, binder, selector, error_type) + the length-prefixed JSON
record blob.  A frame is emitted as **one** ``os.write`` to an
``O_APPEND`` descriptor, so concurrent writers never interleave; a crash
mid-write leaves a torn tail that :func:`iter_frames` detects and stops
at (every complete frame before it is intact).

**Compacted column files** (``compact-<gen>.col``) are what range scans
read.  :func:`write_compacted` lays out, in order: the sorted 32-byte
key block, one contiguous block per numeric column, u32 string-id
columns over an interned string table, the blob offset/length columns,
the string table, the blob heap, and a JSON section directory as a
footer (``directory | u32 dir_len | b"RCOLEND1"``).
:class:`CompactedReader` reads the footer, then loads *only the blocks a
query touches* — a family+scheduler+P-range scan over 100k rows reads a
few column blocks, never the blobs of non-matching rows.

Numeric ``None`` is encoded as ``-1`` for integer columns (every real
value is non-negative) and NaN for float columns; an absent
``error_type`` is the empty string.  Multi-byte blocks are written
little-endian regardless of host byte order.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .base import StoreError, StoredRow

FRAME_MAGIC = b"RSG1"
FRAME_HEADER = struct.Struct("<4sII")  # magic, body length, crc32(body)

#: Fixed-width numeric row: latency, power_budget, register_budget,
#: feasible, cached, area, fu_area, peak_power, result_latency,
#: registers, backtracks, elapsed.
ROW_STRUCT = struct.Struct("<qdqBBdddqqqd")

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

FOOTER_MAGIC = b"RCOLEND1"
FOOTER = struct.Struct("<I8s")  # directory length, magic

#: String columns interned into the compacted string table, in order.
STRING_COLUMNS = ("family", "scheduler", "binder", "selector", "error_type")

#: Numeric columns and their array typecodes, in on-disk order.
NUMERIC_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("latency", "q"),
    ("power_budget", "d"),
    ("register_budget", "q"),
    ("feasible", "B"),
    ("cached", "B"),
    ("area", "d"),
    ("fu_area", "d"),
    ("peak_power", "d"),
    ("result_latency", "q"),
    ("registers", "q"),
    ("backtracks", "q"),
    ("elapsed", "d"),
)

_NAN = float("nan")


def _enc_int(value: Optional[int]) -> int:
    return -1 if value is None else int(value)


def _dec_int(value: int) -> Optional[int]:
    return None if value < 0 else int(value)


def _enc_float(value: Optional[float]) -> float:
    return _NAN if value is None else float(value)


def _dec_float(value: float) -> Optional[float]:
    return None if value != value else value  # NaN ≠ NaN


def pack_numeric_row(row: StoredRow) -> bytes:
    """The fixed-width numeric portion of one row."""
    return ROW_STRUCT.pack(
        _enc_int(row.latency),
        _enc_float(row.power_budget),
        _enc_int(row.register_budget),
        1 if row.feasible else 0,
        1 if row.cached else 0,
        _enc_float(row.area),
        _enc_float(row.fu_area),
        _enc_float(row.peak_power),
        _enc_int(row.result_latency),
        _enc_int(row.registers),
        int(row.backtracks),
        float(row.elapsed),
    )


def unpack_numeric_row(key: str, strings: Sequence[str], packed: bytes) -> StoredRow:
    """Rebuild a :class:`StoredRow` from its packed numeric + string parts."""
    (
        latency,
        power_budget,
        register_budget,
        feasible,
        cached,
        area,
        fu_area,
        peak_power,
        result_latency,
        registers,
        backtracks,
        elapsed,
    ) = ROW_STRUCT.unpack(packed)
    family, scheduler, binder, selector, error_type = strings
    return StoredRow(
        key=key,
        family=family,
        scheduler=scheduler,
        binder=binder,
        selector=selector,
        latency=_dec_int(latency),
        power_budget=_dec_float(power_budget),
        register_budget=_dec_int(register_budget),
        feasible=bool(feasible),
        area=_dec_float(area),
        fu_area=_dec_float(fu_area),
        peak_power=_dec_float(peak_power),
        result_latency=_dec_int(result_latency),
        registers=_dec_int(registers),
        backtracks=int(backtracks),
        elapsed=float(elapsed),
        cached=bool(cached),
        error_type=error_type or None,
    )


def row_strings(row: StoredRow) -> Tuple[str, ...]:
    """The row's values for :data:`STRING_COLUMNS`, ``None`` as ``""``."""
    return (
        row.family,
        row.scheduler,
        row.binder,
        row.selector,
        row.error_type or "",
    )


# --------------------------------------------------------------------------- #
# Append frames
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Frame:
    """One decoded append-segment frame."""

    key: str  # hex content address
    row: StoredRow
    blob: bytes  # canonical JSON of the record dict

    def record(self) -> Dict[str, Any]:
        return json.loads(self.blob.decode("utf-8"))


def encode_frame(key: str, row: StoredRow, blob: bytes) -> bytes:
    """Serialize one record into a single appendable frame."""
    key_bytes = bytes.fromhex(key)
    if len(key_bytes) != 32:
        raise StoreError(f"content address must be 64 hex chars, got {key!r}")
    parts = [key_bytes, pack_numeric_row(row)]
    for text in row_strings(row):
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise StoreError(f"string column value too long ({len(data)} bytes)")
        parts.append(_U16.pack(len(data)))
        parts.append(data)
    parts.append(_U32.pack(len(blob)))
    parts.append(blob)
    body = b"".join(parts)
    return FRAME_HEADER.pack(FRAME_MAGIC, len(body), zlib.crc32(body)) + body


def decode_frame_body(body: bytes) -> Frame:
    """Decode one frame body (already CRC-validated)."""
    try:
        key = body[:32].hex()
        offset = 32 + ROW_STRUCT.size
        packed = body[32:offset]
        strings: List[str] = []
        for _ in STRING_COLUMNS:
            (length,) = _U16.unpack_from(body, offset)
            offset += _U16.size
            strings.append(body[offset : offset + length].decode("utf-8"))
            offset += length
        (blob_len,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        blob = body[offset : offset + blob_len]
        if len(blob) != blob_len:
            raise StoreError("frame body shorter than its blob length")
    except (struct.error, IndexError) as exc:
        raise StoreError(f"malformed frame body: {exc}") from exc
    return Frame(key=key, row=unpack_numeric_row(key, strings, packed), blob=blob)


def iter_frames(data: bytes, start: int = 0) -> Iterator[Tuple[int, Frame]]:
    """Yield ``(end_offset, frame)`` for every intact frame in ``data``.

    Stops at the first torn or corrupt frame — everything before a bad
    header, length or checksum is trusted, everything after is not (it
    cannot be resynchronized safely).  The last yielded ``end_offset`` is
    therefore the valid prefix length, which the store uses to repair a
    torn tail before appending again.
    """
    offset = start
    total = len(data)
    while offset + FRAME_HEADER.size <= total:
        magic, body_len, crc = FRAME_HEADER.unpack_from(data, offset)
        if magic != FRAME_MAGIC:
            return
        body_end = offset + FRAME_HEADER.size + body_len
        if body_end > total:
            return
        body = data[offset + FRAME_HEADER.size : body_end]
        if zlib.crc32(body) != crc:
            return
        try:
            frame = decode_frame_body(body)
        except StoreError:
            return
        yield body_end, frame
        offset = body_end


def valid_prefix_length(data: bytes) -> int:
    """Length of the intact frame prefix of an append segment."""
    end = 0
    for end, _ in iter_frames(data):
        pass
    return end


# --------------------------------------------------------------------------- #
# Compacted column files
# --------------------------------------------------------------------------- #
def _le(arr: array) -> array:
    """Ensure little-endian byte order for multi-byte array blocks."""
    if sys.byteorder != "little" and arr.itemsize > 1:  # pragma: no cover - BE hosts
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr


def write_compacted(path, entries: Sequence[Tuple[str, StoredRow, bytes]]) -> None:
    """Write one compacted column file from ``(key, row, blob)`` entries.

    ``entries`` must be sorted by key and free of duplicates; the writer
    lays the sections out contiguously and finishes with the footer, so a
    crash mid-write leaves a file without a valid footer — readers reject
    it and fall back to the previous generation.
    """
    n = len(entries)
    strings: Dict[str, int] = {}

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(strings)
            strings[text] = index
        return index

    key_block = bytearray()
    numeric: Dict[str, array] = {name: array(code) for name, code in NUMERIC_COLUMNS}
    string_ids: Dict[str, array] = {name: array("I") for name in STRING_COLUMNS}
    blob_off = array("Q")
    blob_len = array("I")
    heap_size = 0
    previous = b""
    for key, row, blob in entries:
        key_bytes = bytes.fromhex(key)
        if key_bytes <= previous and previous:
            raise StoreError("compacted entries must be sorted by key, unique")
        previous = key_bytes
        key_block += key_bytes
        packed = ROW_STRUCT.unpack(pack_numeric_row(row))
        for (name, _), value in zip(NUMERIC_COLUMNS, packed):
            numeric[name].append(value)
        for name, text in zip(STRING_COLUMNS, row_strings(row)):
            string_ids[name].append(intern(text))
        blob_off.append(heap_size)
        blob_len.append(len(blob))
        heap_size += len(blob)

    table = bytearray(_U32.pack(len(strings)))
    for text in strings:  # insertion order == id order
        data = text.encode("utf-8")
        table += _U32.pack(len(data))
        table += data

    sections: Dict[str, Tuple[int, int]] = {}
    cursor = 0

    def block(name: str, data: bytes) -> bytes:
        nonlocal cursor
        sections[name] = (cursor, len(data))
        cursor += len(data)
        return data

    blocks = [block("keys", bytes(key_block))]
    for name, _ in NUMERIC_COLUMNS:
        blocks.append(block(f"col:{name}", _le(numeric[name]).tobytes()))
    for name in STRING_COLUMNS:
        blocks.append(block(f"col:{name}", _le(string_ids[name]).tobytes()))
    blocks.append(block("blob_off", _le(blob_off).tobytes()))
    blocks.append(block("blob_len", _le(blob_len).tobytes()))
    blocks.append(block("strings", bytes(table)))
    blocks.append(block("blobs", b""))  # offset marker; heap streamed below

    directory = json.dumps(
        {
            "version": 1,
            "rows": n,
            "heap": heap_size,
            "sections": {name: list(span) for name, span in sections.items()},
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")

    with open(path, "wb") as handle:
        for data in blocks:
            handle.write(data)
        for _, _, blob in entries:
            handle.write(blob)
        handle.write(directory)
        handle.write(FOOTER.pack(len(directory), FOOTER_MAGIC))
        handle.flush()
        os.fsync(handle.fileno())


class CompactedReader:
    """Partial-read access to one compacted column file.

    Loads the footer directory once; every key block, column block,
    string table and blob is then fetched with an independent
    seek+read, cached per reader.  Corrupt or footer-less files raise
    :class:`StoreError` at construction so the store can skip them.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "rb")
        try:
            self._handle.seek(0, 2)
            size = self._handle.tell()
            if size < FOOTER.size:
                raise StoreError(f"{path}: too short for a compacted file")
            self._handle.seek(size - FOOTER.size)
            dir_len, magic = FOOTER.unpack(self._handle.read(FOOTER.size))
            if magic != FOOTER_MAGIC or dir_len > size - FOOTER.size:
                raise StoreError(f"{path}: missing compacted footer")
            self._handle.seek(size - FOOTER.size - dir_len)
            directory = json.loads(self._handle.read(dir_len).decode("utf-8"))
            self.rows: int = directory["rows"]
            self._heap = directory["heap"]
            self._sections: Dict[str, Tuple[int, int]] = {
                name: (int(off), int(length))
                for name, (off, length) in directory["sections"].items()
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._handle.close()
            if isinstance(exc, StoreError):
                raise
            raise StoreError(f"{path}: corrupt compacted file: {exc}") from exc
        self._cache: Dict[str, Any] = {}
        self._typecodes = dict(NUMERIC_COLUMNS)
        self._typecodes.update({name: "I" for name in STRING_COLUMNS})
        self._typecodes.update({"blob_off": "Q", "blob_len": "I"})

    def close(self) -> None:
        self._handle.close()

    def _read(self, name: str) -> bytes:
        off, length = self._sections[name]
        self._handle.seek(off)
        return self._handle.read(length)

    @property
    def keys_block(self) -> bytes:
        block = self._cache.get("keys")
        if block is None:
            block = self._cache["keys"] = self._read("keys")
        return block

    def key_at(self, index: int) -> str:
        return self.keys_block[index * 32 : index * 32 + 32].hex()

    def find(self, key: str) -> Optional[int]:
        """Binary-search the sorted key block; row index or ``None``."""
        needle = bytes.fromhex(key)
        block = self.keys_block
        lo, hi = 0, self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            probe = block[mid * 32 : mid * 32 + 32]
            if probe < needle:
                lo = mid + 1
            elif probe > needle:
                hi = mid
            else:
                return mid
        return None

    def column(self, name: str) -> array:
        """One whole column block (cached after first load)."""
        cached = self._cache.get(name)
        if cached is None:
            section = f"col:{name}" if f"col:{name}" in self._sections else name
            cached = array(self._typecodes[name])
            cached.frombytes(self._read(section))
            cached = _le(cached)
            self._cache[name] = cached
        return cached

    @property
    def string_table(self) -> List[str]:
        table = self._cache.get("strings")
        if table is None:
            data = self._read("strings")
            (count,) = _U32.unpack_from(data, 0)
            offset = _U32.size
            table = []
            for _ in range(count):
                (length,) = _U32.unpack_from(data, offset)
                offset += _U32.size
                table.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            self._cache["strings"] = table
        return table

    def blob(self, index: int) -> bytes:
        heap_start = self._sections["blobs"][0]
        off = self.column("blob_off")[index]
        length = self.column("blob_len")[index]
        self._handle.seek(heap_start + off)
        return self._handle.read(length)

    def record(self, index: int) -> Dict[str, Any]:
        return json.loads(self.blob(index).decode("utf-8"))

    def row(self, index: int) -> StoredRow:
        strings = self.string_table
        values = [self.column(name)[index] for name, _ in NUMERIC_COLUMNS]
        packed = ROW_STRUCT.pack(*values)
        names = [strings[self.column(name)[index]] for name in STRING_COLUMNS]
        return unpack_numeric_row(self.key_at(index), names, packed)

    def match_indices(self, query) -> List[int]:
        """Row indices matching ``query``, touching only filtered columns.

        An empty query matches everything without loading any block; a
        ``family="elliptic", power=(8, 40)`` query loads exactly the
        ``family`` string-id column (plus the string table) and the
        ``power_budget`` column.
        """
        candidates: Optional[List[int]] = None

        def narrow(matches) -> None:
            nonlocal candidates
            pool = range(self.rows) if candidates is None else candidates
            candidates = [i for i in pool if matches(i)]

        for name in ("family", "scheduler", "binder", "selector"):
            wanted = getattr(query, name)
            if wanted is None:
                continue
            try:
                target = self.string_table.index(wanted)
            except ValueError:
                return []
            column = self.column(name)
            narrow(lambda i, c=column, t=target: c[i] == t)
            if not candidates:
                return []
        if query.feasible is not None:
            column = self.column("feasible")
            want = 1 if query.feasible else 0
            narrow(lambda i, c=column, w=want: c[i] == w)
            if not candidates:
                return []
        for attr, col_name, integer in (
            ("latency", "latency", True),
            ("power", "power_budget", False),
            ("register", "register_budget", True),
        ):
            bounds = getattr(query, attr)
            if bounds is None:
                continue
            lo, hi = bounds
            column = self.column(col_name)
            if integer:
                narrow(
                    lambda i, c=column, lo=lo, hi=hi: c[i] >= 0
                    and (lo is None or c[i] >= lo)
                    and (hi is None or c[i] <= hi)
                )
            else:
                narrow(
                    lambda i, c=column, lo=lo, hi=hi: c[i] == c[i]
                    and (lo is None or c[i] >= lo)
                    and (hi is None or c[i] <= hi)
                )
            if not candidates:
                return []
        if candidates is None:
            return list(range(self.rows))
        return candidates
