"""The HTTP surface of the synthesis service (stdlib-only, selector-based).

A thin, dependency-free JSON-over-HTTP layer on top of
:class:`~repro.serve.service.SynthesisService`.  PR-5's front was
``ThreadingHTTPServer`` — one OS thread per connection — which falls
over exactly where a polling protocol stresses it: thousands of mostly
*idle* client connections each pinning a thread.  This version is a
single-threaded event loop over :mod:`selectors`: one thread owns the
listening socket and every connection, parses requests incrementally
from non-blocking reads, and writes responses as sockets drain.  An
idle poller costs one registered file descriptor, nothing more.
Synthesis concurrency is unaffected — it lives in the service's worker
tier (child processes by default), not in the front.

Endpoints:

* ``POST /tasks`` — submit work.  The body is a single task spec object,
  a JSON list of specs, or a full batch file (``{"tasks": [...],
  "sweeps": [...]}``, the same format ``repro batch`` reads); an
  enclosing object may carry ``"priority": N`` (higher runs first) and
  ``"deadline_s": S`` (a race budget stamped onto submitted
  ``portfolio`` tasks before admission keys them).
  Returns ``202`` with one ``{id, key, state}`` entry per accepted job,
  or ``429`` with a ``Retry-After`` header when the queue is at its
  configured depth — backpressure, not silent buffering.
* ``GET /jobs/<id>`` — a job's full status/progress record.
* ``GET /results/<key>`` — the certified result record stored under a
  content address (the ``key`` echoed at submission); ``404`` until the
  synthesis finishes.
* ``GET /jobs`` — every job, in submission order (small-fleet admin).
* ``GET /healthz`` — liveness: worker status, queue depth, uptime.
* ``GET /stats`` — queue/cache/strategy counters plus the same
  :class:`~repro.api.batch.BatchSummary` numbers ``repro batch`` prints.

Protocol discipline: HTTP/1.1 with keep-alive; every error response
(400/404/413/429/503) closes the connection after exactly one response,
discarding whatever the client pipelined behind the rejected request —
the anti-request-smuggling rule the threaded front already enforced.
A body whose declared ``Content-Length`` exceeds ``MAX_BODY_BYTES``
is rejected at the header stage, before any of it is read.

Start one with :func:`start_server` (in-process, ephemeral port — what
the tests and :mod:`examples.serve_quickstart` do) or via the ``repro
serve`` CLI command.
"""

from __future__ import annotations

import json
import math
import selectors
import socket
import threading
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Any, Dict, List, Optional, Tuple

from ..api.task import TaskError, SynthesisTask, tasks_from_json
from ..registries import UnknownStrategyError
from .queue import QueueFullError
from .service import SynthesisService

#: Largest accepted request body (a batch file of inline CDFGs is big;
#: an unbounded read is a denial-of-service hazard).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest accepted request head (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Per-recv read size for the event loop.
_RECV_SIZE = 65536


@dataclass
class Submission:
    """A parsed ``POST /tasks`` body: the tasks plus queue metadata."""

    tasks: List[SynthesisTask]
    priority: int = 0
    deadline_s: Optional[float] = None


def parse_submission(text: str) -> Submission:
    """Parse a ``POST /tasks`` body into a :class:`Submission`.

    Accepts the single-spec object form (``{"graph": "hal", ...}``) as
    sugar on top of everything :func:`~repro.api.task.tasks_from_json`
    reads (a list of specs, or ``{"tasks": [...], "sweeps": [...]}``).
    An object form may carry a ``"priority"`` integer (higher-priority
    jobs are dequeued first) and a ``"deadline_s"`` number — a race
    budget stamped onto every submitted ``portfolio`` task before
    admission (it is part of the content address, so it must be in the
    spec before the job is keyed).
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise TaskError(f"request body is not valid JSON: {exc}") from exc
    priority = 0
    deadline_s: Optional[float] = None
    if isinstance(payload, dict) and "priority" in payload:
        raw = payload.pop("priority")
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise TaskError(f"priority must be an integer, got {raw!r}")
        priority = raw
    if isinstance(payload, dict) and "deadline_s" in payload:
        raw = payload.pop("deadline_s")
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise TaskError(f"deadline_s must be a number of seconds, got {raw!r}")
        if float(raw) <= 0:
            raise TaskError(f"deadline_s must be positive, got {raw!r}")
        deadline_s = float(raw)
    if isinstance(payload, dict) and "graph" in payload:
        return Submission([SynthesisTask.from_dict(payload)], priority, deadline_s)
    if isinstance(payload, dict):
        return Submission(tasks_from_json(json.dumps(payload)), priority, deadline_s)
    return Submission(tasks_from_json(text), priority, deadline_s)


class _HTTPError(Exception):
    """Internal: carry a status + message (and headers) to the responder."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


@dataclass
class _Connection:
    """Per-socket state: buffered bytes in, buffered bytes out, parser."""

    sock: socket.socket
    inbuf: bytes = b""
    outbuf: bytes = b""
    #: Parsed-but-unexecuted request head (method, path, headers), or None
    #: while still accumulating header bytes.
    pending: Optional[Tuple[str, str, Dict[str, str]]] = None
    #: Body bytes still owed for the pending request.
    need_body: int = 0
    #: Close once the out buffer drains (error responses, Connection: close).
    close_after: bool = False
    events: int = field(default=selectors.EVENT_READ)


class SynthesisServer:
    """A selector-based HTTP server bound to one :class:`SynthesisService`.

    One thread (the one inside :meth:`serve_forever`) owns every socket:
    it accepts, reads, parses, dispatches into the service, and writes.
    Handlers are quick — submission is a queue append, status reads are
    dict lookups — so the loop never blocks on synthesis, and a flood of
    idle pollers costs file descriptors rather than threads.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        *,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(address)
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()
        self._selector = selectors.DefaultSelector()
        # self-pipe (socketpair) so shutdown() can wake a blocked select()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._shutdown_requested = threading.Event()
        self._stopped = threading.Event()
        self._connections: Dict[int, _Connection] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound socket (the ephemeral port resolved)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` is called."""
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        try:
            while not self._shutdown_requested.is_set():
                for key, _mask in self._selector.select(timeout=1.0):
                    if key.data == "listener":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            self._wake_recv.recv(4096)
                        except OSError:  # pragma: no cover
                            pass
                    else:
                        self._handle(key.data)
        finally:
            for conn in list(self._connections.values()):
                self._close(conn)
            for sock in (self._listener, self._wake_recv):
                try:
                    self._selector.unregister(sock)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
            self._stopped.set()

    def shutdown(self) -> None:
        """Stop the event loop (blocks until it exits)."""
        self._shutdown_requested.set()
        try:
            self._wake_send.send(b"x")
        except OSError:  # pragma: no cover - loop already gone
            pass
        self._stopped.wait(5.0)

    def server_close(self) -> None:
        """Release the listening socket and selector."""
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._selector.close()
        except (OSError, RuntimeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - listener closing
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            conn = _Connection(sock=sock)
            self._connections[sock.fileno()] = conn
            self._selector.register(sock, conn.events, conn)

    def _handle(self, conn: _Connection) -> None:
        try:
            if conn.events & selectors.EVENT_READ:
                self._readable(conn)
            if conn.sock.fileno() >= 0 and conn.outbuf:
                self._flush(conn)
        except (ConnectionError, OSError):
            self._close(conn)

    def _readable(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except (ConnectionResetError, OSError):
            self._close(conn)
            return
        if not chunk:
            self._close(conn)
            return
        if conn.close_after:
            # response already queued and the connection is condemned:
            # discard anything the client keeps sending (smuggling rule)
            return
        conn.inbuf += chunk
        self._advance(conn)

    def _advance(self, conn: _Connection) -> None:
        """Drive the per-connection parser as far as the buffer allows."""
        while not conn.close_after:
            if conn.pending is None:
                head_end = conn.inbuf.find(b"\r\n\r\n")
                if head_end < 0:
                    if len(conn.inbuf) > MAX_HEADER_BYTES:
                        self._respond_error(
                            conn, 400, "request head too large"
                        )
                    return
                try:
                    method, path, headers = self._parse_head(
                        conn.inbuf[:head_end]
                    )
                except _HTTPError as exc:
                    self._respond_error(conn, exc.status, str(exc))
                    return
                conn.inbuf = conn.inbuf[head_end + 4:]
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    self._respond_error(conn, 400, "bad Content-Length")
                    return
                if length > MAX_BODY_BYTES:
                    # reject on the declared size, before reading any of
                    # the body — and close, so the unread bytes can never
                    # be parsed as a pipelined request
                    self._respond_error(
                        conn, 413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                    )
                    return
                conn.pending = (method, path, headers)
                conn.need_body = max(0, length)
            if len(conn.inbuf) < conn.need_body:
                return
            method, path, headers = conn.pending
            body = conn.inbuf[: conn.need_body].decode("utf-8", errors="replace")
            conn.inbuf = conn.inbuf[conn.need_body:]
            conn.pending = None
            conn.need_body = 0
            wants_close = headers.get("connection", "").lower() == "close"
            try:
                status, payload, extra = self._dispatch(method, path, body)
            except _HTTPError as exc:
                self._respond_error(conn, exc.status, str(exc), exc.headers)
                return
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._log(f"internal error on {method} {path}: {exc}")
                self._respond_error(conn, 500, "internal server error")
                return
            self._queue_response(
                conn, status, payload, close=wants_close, headers=extra
            )
            if wants_close:
                return

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HTTPError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _dispatch(
        self, method: str, path: str, body: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        path = path.split("?", 1)[0]
        if method == "POST":
            return self._post(path, body)
        if method in ("GET", "HEAD"):
            return self._get(path)
        raise _HTTPError(405, f"method {method} not allowed")

    def _post(self, path: str, body: str) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path.rstrip("/") != "/tasks":
            raise _HTTPError(404, f"unknown endpoint {path!r}")
        if not body:
            raise _HTTPError(400, "request body required")
        try:
            submission = parse_submission(body)
        except (TaskError, UnknownStrategyError) as exc:
            raise _HTTPError(400, f"bad task submission: {exc}") from None
        try:
            jobs = self.service.submit_many(
                submission.tasks,
                priority=submission.priority,
                deadline_s=submission.deadline_s,
            )
        except TaskError as exc:
            # a deadline_s submission containing non-portfolio tasks
            raise _HTTPError(400, f"bad task submission: {exc}") from None
        except QueueFullError as exc:
            retry_after = max(1, math.ceil(exc.retry_after))
            raise _HTTPError(
                429,
                f"queue full: {exc}",
                headers={"Retry-After": str(retry_after)},
            ) from None
        except Exception as exc:  # closed queue during shutdown
            raise _HTTPError(503, str(exc)) from None
        return (
            202,
            {
                "jobs": [
                    {"id": job.id, "key": job.key, "state": job.state}
                    for job in jobs
                ]
            },
            {},
        )

    def _get(self, path: str) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            return 200, self.service.healthz(), {}
        if path == "/stats":
            return 200, self.service.stats(), {}
        if path == "/jobs":
            return (
                200,
                {"jobs": [job.to_dict() for job in self.service.queue.jobs()]},
                {},
            )
        if path.startswith("/jobs/"):
            job = self.service.job(path[len("/jobs/"):])
            if job is None:
                raise _HTTPError(404, f"unknown job {path[len('/jobs/'):]!r}")
            return 200, job.to_dict(), {}
        if path.startswith("/results/"):
            key = path[len("/results/"):]
            payload = self.service.result(key)
            if payload is None:
                raise _HTTPError(404, f"no result stored under key {key!r}")
            return 200, payload, {}
        raise _HTTPError(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    def _respond_error(
        self,
        conn: _Connection,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # rejected requests may carry an unread body; on a keep-alive
        # connection those bytes would be parsed as the *next* request —
        # classic request smuggling through a multiplexing proxy.
        # Closing the connection on every error discards them.
        conn.inbuf = b""
        conn.pending = None
        conn.need_body = 0
        self._queue_response(
            conn, status, {"error": message}, close=True, headers=headers
        )

    def _queue_response(
        self,
        conn: _Connection,
        status: int,
        payload: Dict[str, Any],
        *,
        close: bool,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        phrase = HTTPStatus(status).phrase if status in HTTPStatus._value2member_map_ else ""
        lines = [
            f"HTTP/1.1 {status} {phrase}",
            "Server: repro-serve",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'close' if close else 'keep-alive'}")
        conn.outbuf += ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        if close:
            conn.close_after = True
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        try:
            while conn.outbuf:
                sent = conn.sock.send(conn.outbuf)
                if sent <= 0:  # pragma: no cover - defensive
                    break
                conn.outbuf = conn.outbuf[sent:]
        except (BlockingIOError, InterruptedError):
            pass
        except (ConnectionError, OSError):
            self._close(conn)
            return
        wanted = selectors.EVENT_READ | (
            selectors.EVENT_WRITE if conn.outbuf else 0
        )
        if conn.outbuf:
            self._set_events(conn, wanted)
            return
        if conn.close_after:
            self._close(conn)
            return
        self._set_events(conn, wanted)

    def _set_events(self, conn: _Connection, events: int) -> None:
        if events == conn.events or conn.sock.fileno() < 0:
            return
        conn.events = events
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):  # pragma: no cover
            pass

    def _close(self, conn: _Connection) -> None:
        fd = conn.sock.fileno()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._connections.pop(fd, None)

    def _log(self, message: str) -> None:
        if self.verbose:  # pragma: no cover - manual debugging aid
            print(f"[repro-serve] {message}")


class ServerHandle:
    """A started server + its thread; what :func:`start_server` returns.

    Use as a context manager::

        with start_server(workers=2) as handle:
            client = Client(handle.url)
            ...

    ``close()`` shuts the HTTP listener down first (no new work can
    arrive), then the service (``drain=True`` waits for accepted jobs).
    """

    def __init__(self, server: SynthesisServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def service(self) -> SynthesisService:
        return self.server.service

    def close(self, *, drain: bool = True) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.shutdown(drain=drain)
        self.thread.join(5.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    service: Optional[SynthesisService] = None,
    state_dir=None,
    workers: int = 2,
    verbose: bool = False,
    **service_options: Any,
) -> ServerHandle:
    """Boot a synthesis server in-process and return its handle.

    ``port=0`` binds an ephemeral port — read the resolved address from
    ``handle.url``.  Builds (and starts) a default
    :class:`SynthesisService` unless one is passed in; extra keyword
    arguments (``worker_mode``, ``max_queue_depth``, ``cache_dir``, …)
    are forwarded to its constructor.
    """
    if service is None:
        service = SynthesisService(state_dir, workers=workers, **service_options)
    service.start()
    server = SynthesisServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return ServerHandle(server, thread)
