"""Unit tests for FSM controller generation."""

import pytest

from repro.datapath.controller import (
    CONTROLLER_POWER,
    build_controller,
    controller_power_profile,
)
from repro.datapath.rtl import DatapathError
from repro.synthesis.engine import synthesize


@pytest.fixture
def hal_result(hal, library):
    return synthesize(hal, library, latency=17, max_power=12.0)


class TestBuildController:
    def test_one_state_per_cycle_plus_idle(self, hal_result):
        controller = build_controller(hal_result.datapath)
        assert len(controller.steps) == hal_result.schedule.makespan
        assert controller.num_states == hal_result.schedule.makespan + 1

    def test_every_operation_started_exactly_once(self, hal_result):
        controller = build_controller(hal_result.datapath)
        started = [op for step in controller.steps for op in step.started_ops]
        assert sorted(started) == sorted(hal_result.datapath.binding)

    def test_busy_instances_match_schedule(self, hal_result):
        controller = build_controller(hal_result.datapath)
        schedule = hal_result.schedule
        datapath = hal_result.datapath
        for step in controller.steps:
            expected = {
                datapath.binding[op]
                for op in datapath.binding
                if schedule.start(op) <= step.cycle < schedule.finish(op)
            }
            assert set(step.busy_instances) == expected

    def test_registers_loaded_when_producers_finish(self, hal_result):
        controller = build_controller(hal_result.datapath)
        loads = [reg for step in controller.steps for reg in step.loaded_registers]
        # every allocated register is loaded at least once
        assert set(loads) <= set(hal_result.datapath.registers.registers)
        assert loads, "expected at least one register load"

    def test_area_and_power_positive(self, hal_result):
        controller = build_controller(hal_result.datapath)
        assert controller.area > 0
        assert controller.power == CONTROLLER_POWER
        assert controller.control_signals > 0

    def test_step_lookup_and_describe(self, hal_result):
        controller = build_controller(hal_result.datapath)
        assert controller.step(0).cycle == 0
        with pytest.raises(DatapathError):
            controller.step(999)
        text = controller.describe()
        assert "states" in text and "S0" in text

    def test_power_profile_constant(self, hal_result):
        controller = build_controller(hal_result.datapath)
        profile = controller_power_profile(controller)
        assert len(profile) == len(controller.steps)
        assert all(value == CONTROLLER_POWER for value in profile)


class TestErrors:
    def test_unfinalized_datapath_rejected(self, diamond, library):
        from repro.datapath.rtl import Datapath
        from repro.library.selection import MinAreaSelection, selection_delays, selection_powers
        from repro.scheduling.asap import asap_schedule

        selection = MinAreaSelection().select(diamond, library)
        schedule = asap_schedule(
            diamond,
            selection_delays(selection, diamond),
            selection_powers(selection, diamond),
        )
        datapath = Datapath(cdfg=diamond, schedule=schedule)
        with pytest.raises(DatapathError):
            build_controller(datapath)

    def test_missing_schedule_rejected(self, diamond):
        from repro.datapath.rtl import Datapath

        with pytest.raises(DatapathError):
            build_controller(Datapath(cdfg=diamond, schedule=None))
