"""Unit tests for the datapath area model."""

import pytest

from repro.datapath.area import REGISTER_AREA, AreaBreakdown, register_area


class TestAreaBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = AreaBreakdown(functional_units=500.0, registers=48.0, interconnect=30.0)
        assert breakdown.total == pytest.approx(578.0)
        assert breakdown.fu_only == pytest.approx(500.0)

    def test_describe_mentions_all_components(self):
        text = AreaBreakdown(100.0, 24.0, 9.0).describe()
        assert "FUs=100.0" in text
        assert "registers=24.0" in text
        assert "muxes=9.0" in text
        assert "total=133.0" in text


class TestRegisterArea:
    def test_scales_linearly(self):
        assert register_area(0) == 0.0
        assert register_area(3) == pytest.approx(3 * REGISTER_AREA)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            register_area(-1)
