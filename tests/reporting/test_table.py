"""Unit tests for ASCII table rendering."""

import pytest

from repro.reporting.table import format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, float_digits=3) == "3.142"

    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_plain_values(self):
        assert format_cell(42) == "42"
        assert format_cell("text") == "text"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "area"], [["hal", 607.0], ["cosine", 1513.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "hal" in text and "607.00" in text

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text
