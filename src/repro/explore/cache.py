"""Content-addressed, on-disk caching of synthesis results.

A :class:`ResultCache` stores one :class:`~repro.api.batch.TaskResult`
per *content address* — the SHA-256 of the task's canonical spec (see
:meth:`repro.api.task.SynthesisTask.cache_key`).  Because the address is
derived from what the task *means* (graph structure, library modules,
constraints, strategies, options) rather than how it is spelled, the same
(graph, library, T, P) point hits the cache whether it was issued by a
fixed-grid sweep, the adaptive frontier refiner, a bisection probe inside
:func:`~repro.synthesis.explore.minimum_feasible_power`, a different CLI
invocation, or a worker process of a parallel batch.

Since the store refactor this class is a thin policy facade — read/write
gating, the journal, lifetime stats, the in-memory layer — over a
pluggable :class:`~repro.store.ResultStore` backend:

* ``legacy`` (the default for fresh directories): one atomically written
  JSON object per key under ``<root>/objects/<key[:2]>/<key>.json``,
* ``columnar``: the sharded append-then-compact
  :class:`~repro.store.ColumnarStore` built for millions of records,
  with O(1) counting and indexed range scans (``repro store query``).

The backend of an *existing* directory is always autodetected from its
layout, so every consumer — ``run_task`` / ``run_batch``, the sweep
refiner, the serving layer, fuzz resume, the CLI — works identically on
either; pass ``backend="columnar"`` (CLI: ``--cache-backend columnar``)
only to choose the layout of a brand-new cache directory.

Whatever the backend, the journal (``<root>/journal.jsonl``) keeps its
format and semantics: every *computed* record appends one line (cache
hits are not re-journaled) as a single ``O_APPEND`` write, torn tails
are tolerated, and a killed grid restarts without rework by replaying
the same directory.

Only scalar metrics are cached — the heavyweight
:class:`~repro.synthesis.result.SynthesisResult` object is dropped, just
as it is for parallel workers.  Records loaded from the cache therefore
have ``result=None`` and ``cached=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..api.batch import TaskResult
from ..api.task import SynthesisTask
from ..store import (
    JOURNAL_NAME,
    LegacyStore,
    StoreError,
    append_journal_line,
    iter_journal,
    load_journal,
    open_store,
)

__all__ = [
    "CacheStats",
    "JOURNAL_NAME",
    "ResultCache",
    "iter_journal",
    "load_journal",
]


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime.

    Attributes:
        hits: Lookups answered from the cache (memory or disk).
        misses: Lookups that found nothing (the caller then synthesizes).
        writes: Records stored.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ResultCache:
    """Content-addressed cache of :class:`TaskResult` records.

    Args:
        root: Cache directory (created on first write).
        read: Consult the cache on :meth:`get`.  ``read=False`` makes a
            write-only cache that records results for later runs without
            ever short-circuiting the current one (the CLI's plain
            ``--cache-dir`` without ``--resume``).
        write: Store computed records on :meth:`put`.
        journal: Also append every stored record to ``journal.jsonl``.
        backend: Storage backend for a *fresh* directory (``"legacy"`` /
            ``"columnar"``); an existing directory's layout always wins,
            and naming a conflicting backend raises
            :class:`~repro.store.StoreError` instead of splitting the
            store across formats.

    An in-memory layer fronts the disk so repeated lookups of the same
    point within one process (e.g. bisection probes) cost one file read.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        read: bool = True,
        write: bool = True,
        journal: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.read = read
        self.write = write
        self.journal = journal
        self.stats = CacheStats()
        self.store = open_store(self.root, backend=backend)
        self._memory: Dict[str, Dict[str, Any]] = {}

    @property
    def backend(self) -> str:
        """Name of the storage backend this cache sits on."""
        return self.store.backend

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def key_for(self, task: SynthesisTask) -> str:
        return task.cache_key()

    def _object_path(self, key: str) -> Path:
        """Legacy-layout object path (kept for tooling and tests)."""
        if isinstance(self.store, LegacyStore):
            return self.store.object_path(key)
        raise StoreError(
            f"the {self.backend!r} backend does not file one object per key"
        )

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, task: SynthesisTask) -> Optional[TaskResult]:
        """The cached record for ``task``, or ``None``.

        Returned records carry ``cached=True``, ``result=None`` (only
        scalar metrics are stored) and the *caller's* ``task`` — the
        content address deliberately ignores spelling differences and the
        label, so the stored spec may be a differently-spelled twin and
        must not leak into the caller's reports.  Corrupt or unreadable
        stored data counts as a miss — the point is simply recomputed.
        """
        if not self.read:
            return None
        key = self.key_for(task)
        payload = self._memory.get(key)
        if payload is None:
            payload = self.store.get(key)
            if payload is None:
                self.stats.misses += 1
                return None
            self._memory[key] = payload
        try:
            record = TaskResult.from_dict(dict(payload["record"]))
        except (TypeError, ValueError, KeyError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        record.cached = True
        record.result = None
        record.task = task
        return record

    def put(self, task: SynthesisTask, record: TaskResult) -> str:
        """Store ``record`` under the task's content address; return the key.

        Infeasible records are cached too — knowing a (T, P) point is
        below the feasibility frontier is exactly as reusable as knowing
        its area.
        """
        key = self.key_for(task)
        if not self.write:
            return key
        payload = {"key": key, "record": record.to_dict()}
        self.store.put(key, payload)
        if self.journal:
            append_journal_line(self.root, payload)
        self._memory[key] = payload
        self.stats.writes += 1
        return key

    def record_for_key(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw stored record dict for a content address, or ``None``.

        Unlike :meth:`get` this looks up by the *key itself* (no task in
        hand to rebind), honours neither the ``read`` flag nor the stats
        counters, and returns the plain payload dict — it exists for the
        serving layer's ``GET /results/<key>`` endpoint, which addresses
        results the way the cache files them.  Disk reads memoize into
        the in-memory layer, so a client polling one key parses its
        record once, not once per poll.
        """
        payload = self._memory.get(key)
        if payload is None:
            payload = self.store.get(key)
            if payload is None:
                return None
            self._memory[key] = payload
        record = payload.get("record") if isinstance(payload, dict) else None
        if not isinstance(record, dict):
            return None
        return dict(record)

    def __len__(self) -> int:
        """Number of records on disk (not just in this process's memory).

        O(1) on the columnar backend (a maintained count); a directory
        scan on the legacy one.
        """
        return self.store.count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = ("r" if self.read else "") + ("w" if self.write else "")
        return (
            f"ResultCache({str(self.root)!r}, backend={self.backend!r}, "
            f"mode={mode!r}, {self.stats})"
        )
