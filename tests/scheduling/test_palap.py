"""Unit tests for the power-constrained ALAP scheduler (palap)."""

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.alap import alap_schedule
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.palap import (
    palap_schedule,
    palap_schedule_with_library,
    palap_start_times,
)
from repro.scheduling.pasap import PowerInfeasibleError, pasap_schedule


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestPalap:
    def test_unbounded_budget_reduces_to_alap(self, hal, library):
        delays, powers = maps_for(hal, library)
        latency = critical_path_length(hal, delays) + 4
        classic = alap_schedule(hal, delays, powers, latency)
        power_aware = palap_schedule(
            hal, delays, powers, PowerConstraint.unbounded(), latency
        )
        assert power_aware.start_times == classic.start_times

    def test_respects_power_and_latency(self, hal, library):
        delays, powers = maps_for(hal, library)
        budget = PowerConstraint(8.0)
        schedule = palap_schedule(hal, delays, powers, budget, latency=24)
        schedule.verify(time=TimeConstraint(24), power=budget)

    def test_respects_precedence(self, elliptic, library):
        delays, powers = maps_for(elliptic, library)
        schedule = palap_schedule(elliptic, delays, powers, PowerConstraint(9.0), latency=30)
        assert schedule.respects_precedence()

    def test_never_later_than_classic_alap(self, cosine, library):
        """The power budget can only pull operations earlier, never later."""
        delays, powers = maps_for(cosine, library)
        latency = 25
        classic = alap_schedule(cosine, delays, powers, latency)
        power_aware = palap_schedule(cosine, delays, powers, PowerConstraint(13.0), latency)
        for name in cosine.operation_names():
            assert power_aware.start(name) <= classic.start(name)

    def test_palap_not_before_pasap(self, hal, library):
        """The [pasap, palap] window must be well-formed when feasible."""
        delays, powers = maps_for(hal, library)
        budget = PowerConstraint(8.0)
        latency = 24
        early = pasap_schedule(hal, delays, powers, budget)
        late = palap_schedule(hal, delays, powers, budget, latency)
        for name in hal.operation_names():
            assert late.start(name) >= early.start(name)

    def test_infeasible_latency_rejected(self, hal, library):
        delays, powers = maps_for(hal, library)
        with pytest.raises(PowerInfeasibleError):
            palap_schedule(hal, delays, powers, PowerConstraint(8.0), latency=10)

    def test_locked_beyond_latency_rejected(self, diamond, library):
        delays, powers = maps_for(diamond, library)
        with pytest.raises(PowerInfeasibleError):
            palap_schedule(
                diamond, delays, powers, PowerConstraint(20.0), latency=8, locked={"out": 9}
            )

    def test_locked_operations_respected(self, diamond, library):
        delays, powers = maps_for(diamond, library)
        schedule = palap_schedule(
            diamond, delays, powers, PowerConstraint(20.0), latency=10, locked={"right": 1}
        )
        assert schedule.start("right") == 1

    def test_wrappers(self, hal, library):
        budget = PowerConstraint(8.0)
        schedule = palap_schedule_with_library(hal, library, budget, TimeConstraint(24))
        schedule.verify(time=TimeConstraint(24), power=budget)
        starts = palap_start_times(
            hal,
            *maps_for(hal, library),
            PowerConstraint(8.0),
            24,
        )
        assert set(starts) == set(hal.operation_names())
