"""Classical as-soon-as-possible (ASAP) scheduling.

ASAP ignores resources and power: every operation starts as soon as its
last predecessor finishes.  It provides (a) the unconstrained baseline
whose spiky power profile motivates the paper (Figure 1, top), and (b) the
starting point that the paper's pasap algorithm "stretches" to fit the
power budget.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import (
    MinPowerSelection,
    Selection,
    selection_delays,
    selection_powers,
)
from .schedule import Schedule


def asap_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    locked: Optional[Mapping[str, int]] = None,
    label: str = "asap",
) -> Schedule:
    """Schedule every operation at its earliest data-ready time.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power (only recorded, not used).
        locked: Optional fixed start times for a subset of operations
            (already-bound operations during synthesis).  Locked times are
            honoured verbatim; successors respect them.
        label: Label stored on the resulting schedule.

    Returns:
        A legal :class:`Schedule` (precedence-correct by construction as
        long as the locked times themselves respect precedence).
    """
    locked = dict(locked or {})
    start: Dict[str, int] = {}
    for name in cdfg.topological_order():
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start[pred] + delays[pred])
        start[name] = locked[name] if name in locked else ready
    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
    )


def asap_schedule_with_library(
    cdfg: CDFG,
    library: FULibrary,
    selection: Optional[Selection] = None,
    label: str = "asap",
) -> Schedule:
    """ASAP schedule using delays/powers from a library module selection.

    When no explicit selection is supplied the minimum-power policy is
    used, matching the defaults of the power-constrained flow so the two
    schedules are directly comparable.
    """
    if selection is None:
        selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return asap_schedule(cdfg, delays, powers, label=label)
