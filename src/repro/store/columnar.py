"""The sharded, append-then-compact columnar result store.

Layout under one root::

    <root>/store.json                          backend manifest
    <root>/shards/<p>/append.seg               CRC-framed append segment
    <root>/shards/<p>/consumed-*.seg           segments a compaction rotated
    <root>/shards/<p>/compact-<gen>.col        sorted, indexed column file

Records shard by the first ``shard_width`` hex chars of their content
address (16 shards at the default width of 1), so concurrent writers
contend on a shard, not the store, and a scan whose
:class:`~repro.store.base.StoreQuery` carries a ``key_prefix`` skips
whole shards without opening them.

**Write path.**  :meth:`ColumnarStore.put` encodes one
:class:`~repro.store.format.Frame` and lands it with a single ``write``
to an ``O_APPEND`` descriptor while holding a shared ``flock`` — many
processes append to one segment without interleaving, and a writer that
raced a compaction's segment rotation detects the inode swap and
retries against the fresh segment.  A crash mid-write leaves a torn
tail; the next writer truncates it away (under the exclusive lock)
before appending, and readers simply stop at it.

**Compaction.**  :meth:`ColumnarStore.compact` rotates ``append.seg``
aside under an exclusive lock (so no writer is mid-frame), merges every
consumed segment with the previous compacted generation — newest wins
per key, though same-key records are identical by construction — and
writes the next ``compact-<gen>.col`` via temp-file + ``os.replace``.
Every intermediate state is recoverable: a leftover ``.tmp`` is ignored
and deleted, a ``consumed-*.seg`` that outlived a crash is still read
(and merged by the next compaction), an older generation is only removed
after its successor is durable.

**Read path.**  Point lookups binary-search the sorted key block of the
newest generation after checking the in-memory index of the append
tail; range scans ask :meth:`CompactedReader.match_indices` to load only
the filtered columns, then overlay the (small) uncompacted tail.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .base import ResultStore, StoreError, StoreQuery, StoredRow, row_from_payload
from .format import (
    CompactedReader,
    Frame,
    encode_frame,
    iter_frames,
    valid_prefix_length,
    write_compacted,
)

try:  # pragma: no cover - always available on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: single-writer only
    fcntl = None  # type: ignore[assignment]

MANIFEST_NAME = "store.json"
MANIFEST_VERSION = 1


def _lock(fd: int, exclusive: bool) -> None:
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)


def _same_inode(fd: int, path: Path) -> bool:
    try:
        disk = os.stat(path)
    except OSError:
        return False
    here = os.fstat(fd)
    return (here.st_dev, here.st_ino) == (disk.st_dev, disk.st_ino)


class _Shard:
    """In-memory view of one shard directory, refreshed on demand."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.reader: Optional[CompactedReader] = None
        self.generation = -1
        self.frames: Dict[str, Frame] = {}  # append + consumed tail, newest wins
        self._segment_state: Dict[str, Tuple[int, int, int]] = {}  # name -> dev,ino,size
        self.loaded = False

    @property
    def append_path(self) -> Path:
        return self.root / "append.seg"

    def generations(self) -> List[Tuple[int, Path]]:
        if not self.root.is_dir():
            return []
        found = []
        for path in self.root.glob("compact-*.col"):
            try:
                found.append((int(path.stem.split("-", 1)[1]), path))
            except ValueError:
                continue
        return sorted(found)

    def segments(self) -> List[Path]:
        """Uncompacted data, oldest first: consumed leftovers then the tail."""
        if not self.root.is_dir():
            return []
        consumed = sorted(self.root.glob("consumed-*.seg"))
        tail = self.append_path
        return consumed + ([tail] if tail.exists() else [])

    def refresh(self, force: bool = False) -> bool:
        """Re-sync with the directory; True when anything changed."""
        changed = not self.loaded or force
        self.loaded = True
        generations = self.generations()
        newest = generations[-1] if generations else None
        if newest is not None and newest[0] != self.generation:
            for generation, path in reversed(generations):
                try:
                    reader = CompactedReader(path)
                except StoreError:
                    continue  # torn tmp rename cannot happen; stale/corrupt gen skipped
                if self.reader is not None:
                    self.reader.close()
                self.reader, self.generation = reader, generation
                changed = True
                break
        elif newest is None and self.reader is not None:
            self.reader.close()
            self.reader, self.generation = None, -1
            changed = True

        state: Dict[str, Tuple[int, int, int]] = {}
        for path in self.segments():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            state[path.name] = (stat.st_dev, stat.st_ino, stat.st_size)
        if state != self._segment_state:
            changed = True
            self._segment_state = state
            self.frames = {}
            for path in self.segments():
                try:
                    data = path.read_bytes()
                except OSError:
                    continue
                for _, frame in iter_frames(data):
                    self.frames[frame.key] = frame
        return changed


class ColumnarStore(ResultStore):
    """Sharded append-then-compact columnar :class:`ResultStore` backend."""

    backend = "columnar"

    def __init__(self, root, *, shard_width: Optional[int] = None) -> None:
        super().__init__(root)
        manifest = self._read_manifest()
        if manifest is not None:
            declared = int(manifest.get("shard_width", 1))
            if shard_width is not None and shard_width != declared:
                raise StoreError(
                    f"store at {self.root} was created with shard_width="
                    f"{declared}, cannot reopen with {shard_width}"
                )
            shard_width = declared
        self.shard_width = shard_width if shard_width is not None else 1
        if not 1 <= self.shard_width <= 4:
            raise StoreError(f"shard_width must be in 1..4, got {self.shard_width}")
        self._shards: Dict[str, _Shard] = {}
        self._repaired: set = set()
        self._count: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except OSError:
            return None
        except ValueError as exc:
            raise StoreError(f"corrupt store manifest at {self.manifest_path}: {exc}")
        if manifest.get("backend") != self.backend:
            raise StoreError(
                f"{self.manifest_path} declares backend "
                f"{manifest.get('backend')!r}, not {self.backend!r}"
            )
        return manifest

    def _ensure_layout(self) -> None:
        if not self.manifest_path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            payload = {
                "backend": self.backend,
                "version": MANIFEST_VERSION,
                "shard_width": self.shard_width,
            }
            tmp = self.manifest_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
            os.replace(tmp, self.manifest_path)

    def _shard_prefix(self, key: str) -> str:
        if len(key) != 64:
            raise StoreError(f"content address must be 64 hex chars, got {key!r}")
        return key[: self.shard_width]

    def _shard(self, prefix: str) -> _Shard:
        shard = self._shards.get(prefix)
        if shard is None:
            shard = self._shards[prefix] = _Shard(self.root / "shards" / prefix)
        return shard

    def _all_prefixes(self) -> List[str]:
        shards_dir = self.root / "shards"
        if not shards_dir.is_dir():
            return []
        return sorted(p.name for p in shards_dir.iterdir() if p.is_dir())

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def _repair_tail(self, path: Path) -> None:
        """Truncate a torn tail so new frames stay reachable.

        Runs once per shard per store instance, under the exclusive lock
        (no writer is mid-frame, so trailing garbage is genuinely a crash
        remnant, never a frame in flight).
        """
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return
        try:
            _lock(fd, exclusive=True)
            if not _same_inode(fd, path):
                return  # rotated under us; the fresh segment is clean
            size = os.fstat(fd).st_size
            data = os.pread(fd, size, 0)
            keep = valid_prefix_length(data)
            if keep < size:
                os.ftruncate(fd, keep)
        finally:
            os.close(fd)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        prefix = self._shard_prefix(key)
        row = row_from_payload(key, payload)
        blob = json.dumps(
            payload["record"], sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        frame_bytes = encode_frame(key, row, blob)
        self._ensure_layout()
        shard = self._shard(prefix)
        shard.root.mkdir(parents=True, exist_ok=True)
        if prefix not in self._repaired:
            self._repair_tail(shard.append_path)
            self._repaired.add(prefix)
        path = shard.append_path
        while True:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                _lock(fd, exclusive=False)
                if not _same_inode(fd, path):
                    continue  # segment rotated between open and lock: retry
                os.write(fd, frame_bytes)
                break
            finally:
                os.close(fd)
        frame = next(iter_frames(frame_bytes))[1]
        shard.frames[key] = frame
        shard._segment_state = {}  # sizes moved; next refresh rescans and recounts

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def _find(self, shard: _Shard, key: str) -> Optional[Frame]:
        """The freshest in-memory/compacted match without forcing a refresh."""
        frame = shard.frames.get(key)
        if frame is not None:
            return frame
        if shard.reader is not None:
            index = shard.reader.find(key)
            if index is not None:
                return Frame(
                    key=key, row=shard.reader.row(index), blob=shard.reader.blob(index)
                )
        return None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        shard = self._shard(self._shard_prefix(key))
        if not shard.loaded:
            shard.refresh()
        frame = self._find(shard, key)
        if frame is None:
            # another process may have appended or compacted since our
            # snapshot: refresh once and retry before declaring a miss
            if shard.refresh():
                frame = self._find(shard, key)
        if frame is None:
            return None
        try:
            return {"key": key, "record": frame.record()}
        except ValueError:
            return None

    def scan(
        self,
        query: Optional[StoreQuery] = None,
        *,
        with_records: bool = False,
    ) -> Iterator[Any]:
        query = query or StoreQuery()
        key_prefix = query.key_prefix
        for prefix in self._all_prefixes():
            if key_prefix is not None and not (
                prefix.startswith(key_prefix) or key_prefix.startswith(prefix)
            ):
                continue  # no address under this shard can match
            shard = self._shard(prefix)
            shard.refresh()
            overlay = shard.frames
            if shard.reader is not None:
                reader = shard.reader
                for index in reader.match_indices(query):
                    key = reader.key_at(index)
                    if key in overlay:
                        continue  # the uncompacted tail overrides
                    if key_prefix is not None and not key.startswith(key_prefix):
                        continue
                    row = reader.row(index)
                    if with_records:
                        yield row, reader.record(index)
                    else:
                        yield row
            for key, frame in overlay.items():
                if query.matches(frame.row):
                    if with_records:
                        yield frame.row, frame.record()
                    else:
                        yield frame.row

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def count(self) -> int:
        """Distinct records across all shards.

        O(shards + uncompacted tail), never O(records): compacted row
        counts come from each generation's footer, the (small) tail
        contributes its keys not yet compacted, and the result is cached
        until some shard's on-disk state changes — so repeated ``len``
        calls are effectively O(1) even while other processes write.
        """
        changed = False
        for prefix in self._all_prefixes():
            if self._shard(prefix).refresh():
                changed = True
        if self._count is None or changed:
            total = 0
            for prefix in self._all_prefixes():
                shard = self._shard(prefix)
                if shard.reader is None:
                    total += len(shard.frames)
                else:
                    total += shard.reader.rows + sum(
                        1 for key in shard.frames if shard.reader.find(key) is None
                    )
            self._count = total
        return self._count

    def refresh(self) -> None:
        """Drop cached shard state so the next read re-syncs with disk."""
        for shard in self._shards.values():
            shard.refresh(force=True)
        self._count = None

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def _rotate_append(self, shard: _Shard, generation: int) -> None:
        path = shard.append_path
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return
        try:
            _lock(fd, exclusive=True)
            if not _same_inode(fd, path):
                return
            os.rename(path, shard.root / f"consumed-{generation:08d}.seg")
        finally:
            os.close(fd)

    def compact(self) -> Dict[str, Any]:
        """Merge every shard's segments into its next compacted generation."""
        self._ensure_layout()
        report = {"backend": self.backend, "shards": 0, "compacted": 0, "removed": 0}
        for prefix in self._all_prefixes():
            shard = self._shard(prefix)
            shard.refresh(force=True)
            generations = shard.generations()
            next_generation = (generations[-1][0] + 1) if generations else 0
            self._rotate_append(shard, next_generation)
            # only rotated segments are consumed: a concurrent writer may
            # already have recreated append.seg, and its frames belong to
            # the *next* compaction
            consumed = sorted(shard.root.glob("consumed-*.seg"))
            merged: Dict[str, Tuple[StoredRow, bytes]] = {}
            if shard.reader is not None:
                reader = shard.reader
                for index in range(reader.rows):
                    merged[reader.key_at(index)] = (reader.row(index), reader.blob(index))
            tail_frames: Dict[str, Frame] = {}
            for path in consumed:
                try:
                    data = path.read_bytes()
                except OSError:
                    continue
                for _, frame in iter_frames(data):
                    tail_frames[frame.key] = frame
            if not tail_frames and shard.reader is not None and not consumed:
                report["shards"] += 1
                continue  # nothing new since the last generation
            for key, frame in tail_frames.items():
                merged[key] = (frame.row, frame.blob)
            entries = [
                (key, row, blob)
                for key, (row, blob) in sorted(
                    merged.items(), key=lambda item: bytes.fromhex(item[0])
                )
            ]
            target = shard.root / f"compact-{next_generation:08d}.col"
            tmp = shard.root / f"compact-{next_generation:08d}.col.tmp"
            write_compacted(tmp, entries)
            os.replace(tmp, target)
            # the new generation is durable: consumed segments and older
            # generations are now redundant
            for path in consumed:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            for _, path in generations:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            for stale in shard.root.glob("compact-*.col.tmp"):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
            shard.refresh(force=True)
            report["shards"] += 1
            report["compacted"] += len(entries)
            report["removed"] += len(consumed)
        self._count = None
        return report

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def store_stats(self) -> Dict[str, Any]:
        shards = []
        total_bytes = 0
        for prefix in self._all_prefixes():
            shard = self._shard(prefix)
            shard.refresh()
            shard_bytes = 0
            for path in shard.root.iterdir():
                try:
                    shard_bytes += path.stat().st_size
                except OSError:
                    continue
            total_bytes += shard_bytes
            shards.append(
                {
                    "prefix": prefix,
                    "generation": shard.generation if shard.reader else None,
                    "compacted_rows": shard.reader.rows if shard.reader else 0,
                    "tail_rows": len(shard.frames),
                    "segments": len(shard.segments()),
                    "bytes": shard_bytes,
                }
            )
        return {
            "backend": self.backend,
            "root": str(self.root),
            "shard_width": self.shard_width,
            "records": self.count(),
            "shards": shards,
            "bytes": total_bytes,
        }
