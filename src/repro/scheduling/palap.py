"""Power-constrained ALAP scheduling (``palap``).

The paper pairs pasap with its "time-reversed" analogue, palap: run the
same power-constrained stretching on the *reversed* CDFG against the
latency bound ``T``, which yields for every operation the *latest* start
time that still admits a power-feasible completion by cycle ``T``.

Together the pasap and palap start times bound each operation's
power-feasible scheduling window; the compatibility graph (V1) of the
combined synthesis only considers placements inside these windows.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import (
    MinPowerSelection,
    Selection,
    selection_delays,
    selection_powers,
)
from .constraints import PowerConstraint, TimeConstraint
from .pasap import (
    LockedProfileCache,
    PowerInfeasibleError,
    PriorityFn,
    default_priority,
    pasap_core,
)
from .schedule import Schedule


def palap_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    locked: Optional[Mapping[str, int]] = None,
    priority: PriorityFn = default_priority,
    label: str = "palap",
) -> Schedule:
    """Power-constrained ALAP schedule under latency bound ``latency``.

    The reversal trick: schedule the reversed graph with pasap (treating
    each operation's *finish* as its reversed start), then map the
    reversed start time ``t'`` back to a forward start ``latency - t' - d``.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power.
        power: The per-cycle power budget ``P``.
        latency: The latency bound ``T``.
        locked: Forward start times of operations that are already fixed.
        priority: Ready-operation ordering for the underlying pasap run.
        label: Label stored on the resulting schedule.

    Raises:
        PowerInfeasibleError: if the latency bound cannot accommodate a
            power-feasible schedule (some operation would start before
            cycle 0).
    """
    start = palap_core(cdfg, delays, powers, power, latency, locked, priority)
    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"power_budget": power.max_power, "latency_bound": latency},
    )


def palap_core(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    locked: Optional[Mapping[str, int]] = None,
    priority: PriorityFn = default_priority,
    locked_base: Optional[LockedProfileCache] = None,
) -> Dict[str, int]:
    """The palap reversal, returning only the forward start-time map.

    Like :func:`repro.scheduling.pasap.pasap_core` this skips the
    :class:`Schedule` packaging for the engine's window recomputation
    loop; the reversed graph itself comes from the CDFG's cache instead
    of being rebuilt (a full graph copy) on every call.
    """
    reversed_cdfg = cdfg.reversed()

    # Translate locked forward start times into reversed start times.
    reversed_locked: Dict[str, int] = {}
    for name, fwd_start in (locked or {}).items():
        if name in cdfg:
            reversed_locked[name] = latency - fwd_start - delays[name]
            if reversed_locked[name] < 0:
                raise PowerInfeasibleError(
                    f"locked start {fwd_start} of {name!r} lies beyond the "
                    f"latency bound {latency}"
                )

    reversed_start = pasap_core(
        reversed_cdfg,
        delays,
        powers,
        power,
        locked=reversed_locked,
        priority=priority,
        locked_base=locked_base,
    )

    start: Dict[str, int] = {}
    for name, rev_start in reversed_start.items():
        fwd_start = latency - rev_start - delays[name]
        if fwd_start < 0:
            raise PowerInfeasibleError(
                f"latency bound {latency} infeasible under power budget "
                f"{power.max_power:.3f}: operation {name!r} would start at "
                f"cycle {fwd_start}"
            )
        start[name] = fwd_start
    return start


def palap_schedule_with_library(
    cdfg: CDFG,
    library: FULibrary,
    power: PowerConstraint,
    time: TimeConstraint,
    selection: Optional[Selection] = None,
    locked: Optional[Mapping[str, int]] = None,
    label: str = "palap",
) -> Schedule:
    """palap using delays/powers from a library module selection."""
    if selection is None:
        selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return palap_schedule(
        cdfg, delays, powers, power, time.latency, locked=locked, label=label
    )


def palap_start_times(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    locked: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Convenience wrapper returning only the start-time map."""
    return palap_schedule(cdfg, delays, powers, power, latency, locked=locked).start_times
