"""Unit tests for design-space exploration (repro.synthesis.explore)."""

import pytest

from repro.api.batch import TaskResult
from repro.api.task import SynthesisTask
from repro.synthesis.explore import (
    SweepPoint,
    SweepResult,
    default_power_grid,
    library_power_floor,
    minimum_feasible_power,
    power_area_sweep,
    probe_point,
    synthesize_point,
)


class TestSynthesizePoint:
    def test_feasible_point_returns_result(self, hal, library):
        result = synthesize_point(hal, library, latency=17, power_budget=12.0)
        assert result is not None
        assert result.peak_power <= 12.0 + 1e-9

    def test_infeasible_point_returns_none(self, hal, library):
        assert synthesize_point(hal, library, latency=17, power_budget=2.0) is None
        assert synthesize_point(hal, library, latency=6, power_budget=100.0) is None


class TestMinimumFeasiblePower:
    def test_result_is_feasible_and_tight(self, hal, library):
        p_min = minimum_feasible_power(hal, library, latency=17, precision=0.5)
        assert synthesize_point(hal, library, 17, p_min) is not None
        assert synthesize_point(hal, library, 17, p_min - 1.0) is None

    def test_tighter_latency_needs_more_power(self, hal, library):
        loose = minimum_feasible_power(hal, library, latency=17)
        tight = minimum_feasible_power(hal, library, latency=10)
        assert tight > loose

    def test_impossible_latency_raises(self, hal, library):
        from repro.synthesis.result import SynthesisError

        with pytest.raises(SynthesisError):
            minimum_feasible_power(hal, library, latency=5)

    def test_bisection_starts_at_library_floor(self, hal, library, monkeypatch):
        """No probe ever goes below the cheapest module's power (the old
        code bisected from 0.0 and wasted probes on impossible budgets)."""
        floor = library_power_floor(library)
        assert floor > 0
        probed = []
        real_probe = probe_point

        def spy(cdfg, lib, latency, budget, options=None, cache=None):
            probed.append(budget)
            return real_probe(cdfg, lib, latency, budget, options, cache=cache)

        monkeypatch.setattr("repro.synthesis.explore.probe_point", spy)
        p_min = minimum_feasible_power(hal, library, latency=17, precision=0.5)
        assert probed and all(budget >= floor for budget in probed)
        assert p_min >= floor

    def test_probes_route_through_cache(self, hal, library, tmp_path):
        from repro.explore import ResultCache

        cache = ResultCache(tmp_path / "cache")
        first = minimum_feasible_power(hal, library, latency=17, cache=cache)
        assert cache.stats.misses > 0 and cache.stats.hits == 0
        warm = ResultCache(tmp_path / "cache")
        second = minimum_feasible_power(hal, library, latency=17, cache=warm)
        assert second == first
        assert warm.stats.misses == 0 and warm.stats.hits > 0

    def test_probed_budgets_align_with_grid_rounding(self, hal, library, tmp_path):
        """Bisection probes at grid precision (3 decimals), so the returned
        bound — every sweep's first grid point — is already cached."""
        from repro.explore import ResultCache

        p_min = minimum_feasible_power(hal, library, latency=17)
        assert p_min == round(p_min, 3)

        cache = ResultCache(tmp_path / "cache")
        p_min = minimum_feasible_power(hal, library, latency=17, cache=cache)
        before = cache.stats.hits
        assert probe_point(hal, library, 17, p_min, cache=cache).cached
        assert cache.stats.hits == before + 1


class TestPowerGrid:
    def test_grid_endpoints_and_length(self):
        grid = default_power_grid(10.0, 150.0, steps=8)
        assert len(grid) == 8
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(150.0)
        assert grid == sorted(grid)

    def test_degenerate_range_collapses_to_one_budget(self):
        """maximum < minimum used to emit `steps` copies of the same budget,
        each of which would be synthesized separately."""
        assert default_power_grid(20.0, 10.0, steps=3) == [20.0]
        assert default_power_grid(100.0, 50.0, steps=4) == [100.0]
        assert default_power_grid(7.5, 7.5, steps=12) == [7.5]

    def test_sub_rounding_stride_never_duplicates(self):
        grid = default_power_grid(1.0, 1.001, steps=12)
        assert len(grid) == len(set(grid))
        assert grid == sorted(grid)

    def test_too_few_steps_rejected(self):
        with pytest.raises(ValueError):
            default_power_grid(1.0, 2.0, steps=1)


class TestSweep:
    def test_sweep_covers_all_budgets(self, hal, library):
        budgets = [9.0, 12.0, 20.0, 60.0]
        sweep = power_area_sweep(hal, library, 17, budgets)
        assert [p.power_budget for p in sweep.points] == budgets
        assert all(p.feasible for p in sweep.points)

    def test_infeasible_budgets_marked(self, hal, library):
        sweep = power_area_sweep(hal, library, 17, [2.0, 12.0])
        assert not sweep.points[0].feasible
        assert sweep.points[0].area is None
        assert sweep.points[1].feasible

    def test_results_respect_their_budget(self, cosine, library):
        sweep = power_area_sweep(cosine, library, 15, [25.0, 40.0, 90.0])
        for point in sweep.feasible_points():
            assert point.peak_power <= point.power_budget + 1e-9
            assert point.latency <= 15

    def test_cumulative_best_is_monotone(self, cosine, library):
        budgets = default_power_grid(24.0, 120.0, steps=6)
        sweep = power_area_sweep(cosine, library, 12, budgets, cumulative_best=True)
        assert sweep.is_monotone_non_increasing()

    def test_helpers(self, hal, library):
        sweep = power_area_sweep(hal, library, 17, [12.0, 60.0])
        assert len(sweep.areas()) == len(sweep.budgets()) == 2
        assert sweep.area_at(12.0) == sweep.points[0].area
        assert sweep.area_at(999.0) is None


class TestSweepResultLogic:
    def test_monotonicity_check(self):
        sweep = SweepResult("x", 10)
        sweep.points = [
            SweepPoint(1.0, True, area=100.0),
            SweepPoint(2.0, True, area=90.0),
            SweepPoint(3.0, True, area=90.0),
        ]
        assert sweep.is_monotone_non_increasing()
        sweep.points.append(SweepPoint(4.0, True, area=95.0))
        assert not sweep.is_monotone_non_increasing()

    def test_area_at_tolerates_grid_rounding(self):
        """Regression: budgets rounded to 3 decimals by default_power_grid
        must still match a caller's full-precision budget."""
        exact = 10.0 + 2.0 / 3.0
        sweep = SweepResult("x", 10)
        sweep.points = [SweepPoint(round(exact, 3), True, area=100.0)]
        assert sweep.area_at(exact) == 100.0
        assert sweep.area_at(round(exact, 3)) == 100.0
        assert sweep.area_at(exact + 0.5) is None

    def test_area_at_prefers_the_nearest_point(self):
        sweep = SweepResult("x", 10)
        sweep.points = [
            SweepPoint(9.999, True, area=100.0),
            SweepPoint(10.001, True, area=90.0),
        ]
        assert sweep.area_at(10.0005, tolerance=1e-2) == 90.0

    def test_area_at_skips_infeasible_points(self):
        sweep = SweepResult("x", 10)
        sweep.points = [SweepPoint(10.0, False)]
        assert sweep.area_at(10.0) is None

    def test_frontier_area_is_a_step_function(self):
        sweep = SweepResult("x", 10)
        sweep.points = [
            SweepPoint(8.0, False),
            SweepPoint(10.0, True, area=100.0),
            SweepPoint(20.0, True, area=80.0),
        ]
        assert sweep.frontier_area(9.0) is None
        assert sweep.frontier_area(10.0) == 100.0
        assert sweep.frontier_area(15.0) == 100.0
        assert sweep.frontier_area(20.0) == 80.0
        assert sweep.frontier_area(999.0) == 80.0


class TestCumulativeBestWithInfeasiblePoints:
    def _fake_records(self, monkeypatch, table):
        """Route power_area_sweep's probes through a scripted (budget ->
        (feasible, area)) table instead of the real engine."""

        def fake_probe(cdfg, library, latency, budget, options=None, cache=None):
            feasible, area = table[budget]
            task = SynthesisTask(graph="hal", latency=latency, power_budget=budget)
            if not feasible:
                return TaskResult(task=task, feasible=False, error="scripted")
            return TaskResult(
                task=task,
                feasible=True,
                area=area,
                fu_area=area,
                peak_power=budget,
                latency=latency,
            )

        monkeypatch.setattr("repro.synthesis.explore.probe_point", fake_probe)

    def test_infeasible_points_interleave_without_perturbing_the_best(
        self, hal, library, monkeypatch
    ):
        table = {
            1.0: (True, 100.0),
            2.0: (False, None),
            3.0: (True, 120.0),  # worse than the running best
            4.0: (False, None),
            5.0: (True, 90.0),
        }
        self._fake_records(monkeypatch, table)
        sweep = power_area_sweep(
            hal, library, 17, sorted(table), cumulative_best=True
        )
        assert [p.feasible for p in sweep.points] == [True, False, True, False, True]
        assert [p.area for p in sweep.points] == [100.0, None, 100.0, None, 90.0]
        assert sweep.is_monotone_non_increasing()

    def test_raw_sweep_keeps_the_noisy_areas(self, hal, library, monkeypatch):
        table = {1.0: (True, 100.0), 2.0: (False, None), 3.0: (True, 120.0)}
        self._fake_records(monkeypatch, table)
        sweep = power_area_sweep(hal, library, 17, sorted(table))
        assert [p.area for p in sweep.points] == [100.0, None, 120.0]

    def test_leading_infeasible_points_then_best_tracking(
        self, hal, library, monkeypatch
    ):
        table = {1.0: (False, None), 2.0: (False, None), 3.0: (True, 50.0)}
        self._fake_records(monkeypatch, table)
        sweep = power_area_sweep(hal, library, 17, sorted(table), cumulative_best=True)
        assert [p.area for p in sweep.points] == [None, None, 50.0]
        assert len(sweep.feasible_points()) == 1
