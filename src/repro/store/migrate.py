"""Backend migration: move a result store between layouts, verifiably.

``repro store migrate`` (and the :func:`migrate_store` API under it)
rewrites every stored payload from a source directory into a destination
with a different backend, then — because a cache that silently dropped
or mutated records is worse than no cache — :func:`verify_migration`
re-reads both sides and asserts the record dictionaries are
**bit-identical** per content address.

The journal is part of the store's semantics (it is the crash-replay
trail), so migration replays it too: records that exist only in the
source journal (an object write that crashed before its journal line has
the reverse shape — journal lines for keys whose object was lost) are
recovered via :func:`~repro.store.journal.iter_journal_payloads`, and
the destination receives a journal whose lines cover every migrated
record, torn tails of the source skipped as always.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .base import ResultStore, StoreError
from .journal import JOURNAL_NAME, append_journal_line, iter_journal_payloads


def migrate_store(
    source: "ResultStore",
    destination: "ResultStore",
    *,
    journal: bool = True,
) -> Dict[str, Any]:
    """Copy every record (objects first, then journal-only strays) across.

    Returns counters: ``records`` copied from the source's primary
    storage, ``replayed`` recovered only from its journal, ``journaled``
    lines written to the destination journal.
    """
    if Path(source.root) == Path(destination.root):
        raise StoreError("migration source and destination must be different directories")
    copied = 0
    journaled = 0
    seen = set()
    for payload in source.iter_payloads():
        key = payload["key"]
        destination.put(key, payload)
        if journal:
            append_journal_line(destination.root, payload)
            journaled += 1
        seen.add(key)
        copied += 1
    replayed = 0
    for key, record in iter_journal_payloads(Path(source.root) / JOURNAL_NAME):
        if key in seen:
            continue
        payload = {"key": key, "record": record}
        destination.put(key, payload)
        if journal:
            append_journal_line(destination.root, payload)
            journaled += 1
        seen.add(key)
        replayed += 1
    if hasattr(destination, "compact"):
        destination.compact()
    return {
        "source": str(source.root),
        "destination": str(destination.root),
        "source_backend": source.backend,
        "destination_backend": destination.backend,
        "records": copied,
        "replayed": replayed,
        "journaled": journaled,
    }


def verify_migration(
    source: "ResultStore", destination: "ResultStore"
) -> Dict[str, Any]:
    """Assert both stores answer identically for every source record.

    Compares the canonical JSON of each record dict (bit-identical
    modulo key ordering, which JSON round-trips never preserve anyway)
    and the key inventories.  Raises :class:`StoreError` on the first
    divergence; returns ``{"records": n}`` when everything matches.
    """

    def canonical(payload: Optional[Dict[str, Any]]) -> Optional[str]:
        if payload is None:
            return None
        return json.dumps(payload.get("record"), sort_keys=True, separators=(",", ":"))

    checked = 0
    for payload in source.iter_payloads():
        key = payload["key"]
        other = destination.get(key)
        if other is None:
            raise StoreError(f"migration lost record {key}")
        if canonical(payload) != canonical(other):
            raise StoreError(f"migration changed record {key}")
        checked += 1
    extra = set(destination.keys()) - {row.key for row in source.scan()} - {
        key for key, _ in iter_journal_payloads(Path(source.root) / JOURNAL_NAME)
    }
    if extra:
        raise StoreError(
            f"destination has {len(extra)} record(s) the source never stored"
        )
    return {"records": checked}
