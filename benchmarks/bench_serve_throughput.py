"""Serving-path throughput — cold/warm jobs-per-second and saturation.

The serving layer's pitch mirrors the cache's: content-identical
requests from different clients synthesize once, and warm requests are
answered in cache-lookup time.  This module measures that claim on the
full wire path — HTTP request → persistent queue → process worker tier
→ ``run_task`` → shared :class:`~repro.explore.ResultCache` → HTTP
response — not on in-process shortcuts:

* ``test_serve_throughput[cold]`` submits a fresh batch to a server
  with an empty cache and waits for every certified record,
* ``test_serve_throughput[warm]`` re-submits the identical batch to the
  same server (every job a cache hit),
* ``test_serve_saturation[1|4|16|64]`` drives one warm server from 1,
  4, 16 and 64 concurrent clients — the saturation curve of the
  selector front (jobs/s per client count),
* ``test_warm_serving_is_10x_cold_throughput`` asserts the contract:
  warm sustained jobs/second at least 10x cold, with zero synthesis
  runs during the warm pass — counted from the cache journal, which
  records *computed* results only, so it sees synthesis work no matter
  which worker process performed it,
* ``test_process_workers_match_thread_workers`` reruns one cold batch
  under both worker modes and asserts record-for-record parity (and,
  on multi-core hosts only, that process workers are not slower).

Record the results into the repository's benchmark history with::

    python benchmarks/record.py --bench bench_serve_throughput \
        --history BENCH_scalability.json --label serve-throughput

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.ir.analysis import critical_path_length
from repro.ir.serialize import to_dict
from repro.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays
from repro.serve import Client, start_server
from repro.store import iter_journal_payloads
from repro.suite.generators import GeneratorConfig, random_cdfg

WORKERS = 4


def _inline_case(seed: int, operations: int = 80) -> dict:
    """One inline-CDFG task spec: a seeded 80-op layered graph at cp + 8.

    Inline graphs keep cold throughput synthesis-bound (so the warm/cold
    ratio measures the cache, not HTTP overhead) and exercise the
    submit-a-full-CDFG-over-the-wire path the named benchmarks skip.
    """
    cdfg = random_cdfg(
        GeneratorConfig(
            operations=operations,
            inputs=4,
            levels=max(3, operations // 6),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=3,
            seed=seed,
        )
    )
    selection = MinPowerSelection().select(cdfg, default_library())
    latency = critical_path_length(cdfg, selection_delays(selection, cdfg)) + 8
    return {"graph": to_dict(cdfg), "latency": latency, "power_budget": 30.0}


#: The served batch: ten seeded 80-op inline graphs plus the paper's two
#: big benchmarks across budgets — 20 jobs, cold cost dominated by real
#: synthesis work.
BATCH = (
    [_inline_case(seed) for seed in range(10)]
    + [
        {"graph": "elliptic", "latency": 30, "power_budget": float(p)}
        for p in (30, 50, 70, 100, 150)
    ]
    + [
        {"graph": "cosine", "latency": 19, "power_budget": float(p)}
        for p in (20, 30, 40, 60, 100)
    ]
)

#: The saturation batch: small named-graph specs, so the measured cost
#: is the front + queue + cache path, not request-body parsing.
SATURATION_BATCH = [
    {"graph": "hal", "latency": 17, "power_budget": float(p)}
    for p in (8, 9, 10, 11, 12, 13, 14, 15, 16, 20)
]

#: Concurrent-client counts of the saturation curve.
SATURATION_CLIENTS = (1, 4, 16, 64)


def synthesis_count(cache_root) -> int:
    """How many records were actually computed (not served from cache).

    The cache journal appends one line per *computed* record — hits are
    never re-journaled — and is shared by every worker process, so this
    count is correct no matter where the synthesis ran.
    """
    return sum(1 for _key in iter_journal_payloads(cache_root))


def submit_and_drain(client: Client, batch=BATCH) -> float:
    """Submit the batch, wait for every job; return sustained jobs/sec."""
    started = time.perf_counter()
    jobs = client.submit(batch)
    final = client.wait(jobs, timeout=300, poll=0.002)
    elapsed = time.perf_counter() - started
    assert all(job["state"] == "done" for job in final)
    return len(final) / elapsed


@pytest.mark.parametrize("state", ["cold", "warm"])
def test_serve_throughput(benchmark, state, tmp_path):
    """Wall-clock of one served batch, cold vs. warm cache."""
    with start_server(workers=WORKERS, state_dir=tmp_path / state) as handle:
        client = Client(handle.url)
        if state == "warm":
            submit_and_drain(client)  # populate the cache, outside the timer
        benchmark.pedantic(
            lambda: submit_and_drain(client),
            rounds=3 if state == "warm" else 1,
            iterations=1,
        )


@pytest.mark.parametrize("clients", SATURATION_CLIENTS)
def test_serve_saturation(benchmark, clients, tmp_path):
    """Warm jobs/s as concurrent clients grow: the front's saturation curve.

    Every client submits the same (cached) batch and polls it to
    completion, so the measured quantity is how the selector front, the
    queue and the cache fast-path hold up under concurrency — the axis
    the thread-per-connection front fell over on.
    """
    with start_server(workers=WORKERS, state_dir=tmp_path / "sat") as handle:
        Client(handle.url).submit_and_wait(SATURATION_BATCH, timeout=300)

        def one_client(url, failures):
            try:
                rate = submit_and_drain(Client(url), batch=SATURATION_BATCH)
                assert rate > 0
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        def drive() -> float:
            failures: list = []
            threads = [
                threading.Thread(
                    target=one_client, args=(handle.url, failures)
                )
                for _ in range(clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(600)
            elapsed = time.perf_counter() - started
            assert not failures, failures[0]
            return elapsed

        elapsed = benchmark.pedantic(drive, rounds=1, iterations=1)
        total_jobs = clients * len(SATURATION_BATCH)
        rate = total_jobs / elapsed if elapsed else float("inf")
        benchmark.extra_info["clients"] = clients
        benchmark.extra_info["jobs_per_second"] = round(rate, 1)
        print(f"\nsaturation: {clients:3d} clients -> {rate:8.1f} jobs/s warm")


def test_warm_serving_is_10x_cold_throughput(tmp_path):
    """Warm serving sustains >= 10x the cold jobs-per-second, without a
    single synthesis run — proven from the shared cache journal."""
    with start_server(workers=WORKERS, state_dir=tmp_path / "serve") as handle:
        cache_root = handle.service.cache.root
        client = Client(handle.url)

        cold_rate = submit_and_drain(client)
        cold_syntheses = synthesis_count(cache_root)
        assert cold_syntheses == len(BATCH), "cold pass synthesizes every job once"

        warm_rate = submit_and_drain(client)
        assert synthesis_count(cache_root) == cold_syntheses, (
            "warm pass must not synthesize"
        )

        stats = client.stats()
        assert stats["summary"]["computed"] == len(BATCH)
        assert stats["summary"]["cache_hits"] == len(BATCH)

    assert warm_rate >= 10 * cold_rate, (
        f"warm serving must be >=10x cold throughput: "
        f"cold={cold_rate:.1f} warm={warm_rate:.1f} jobs/s "
        f"({warm_rate / cold_rate:.1f}x)"
    )
    print(
        f"\nserve throughput: cold {cold_rate:.1f} jobs/s, "
        f"warm {warm_rate:.1f} jobs/s ({warm_rate / cold_rate:.1f}x)"
    )


def test_process_workers_match_thread_workers(tmp_path):
    """Both worker modes produce identical records; process mode may only
    win, never lose, and on a multi-core host it must win cold."""
    batch = BATCH[:8]
    rates = {}
    records = {}
    for mode in ("thread", "process"):
        with start_server(
            workers=WORKERS, state_dir=tmp_path / mode, worker_mode=mode
        ) as handle:
            client = Client(handle.url)
            started = time.perf_counter()
            jobs = client.submit(batch)
            final = client.wait(jobs, timeout=300, poll=0.002)
            rates[mode] = len(final) / (time.perf_counter() - started)
            assert all(job["state"] == "done" for job in final)
            records[mode] = {
                job["key"]: (
                    job["record"]["feasible"],
                    job["record"]["area"],
                    job["record"]["peak_power"],
                )
                for job in final
            }
            assert synthesis_count(handle.service.cache.root) == len(batch)

    assert records["process"] == records["thread"], (
        "worker modes must agree record-for-record"
    )
    print(
        f"\ncold jobs/s: thread {rates['thread']:.1f}, "
        f"process {rates['process']:.1f} "
        f"({rates['process'] / rates['thread']:.2f}x, "
        f"{os.cpu_count()} cpu core(s))"
    )
    if (os.cpu_count() or 1) > 1:
        assert rates["process"] >= rates["thread"], (
            "on a multi-core host the process tier must not be slower "
            f"than threads: {rates['process']:.1f} vs {rates['thread']:.1f} jobs/s"
        )
