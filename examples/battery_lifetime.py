#!/usr/bin/env python3
"""Battery lifetime: why flattening the power profile matters.

Run with::

    python examples/battery_lifetime.py

The script synthesizes the cosine benchmark twice — once without any power
awareness (ASAP, one functional unit per operation) and once with the
paper's power-constrained synthesis — and then discharges two batteries
(a cheap one and a good one) with each design's per-cycle power profile.
The cheap battery shows the larger lifetime extension, mirroring the
20–30 % figures the paper cites for battery-aware design.
"""

from __future__ import annotations

from repro import SynthesisTask, build_benchmark, default_library, run_task, synthesize
from repro.power.battery import high_quality_battery, low_quality_battery
from repro.power.lifetime import compare_lifetimes
from repro.power.profile import profile_from_schedule
from repro.reporting.table import render_table

BENCHMARK = "cosine"
LATENCY = 15
POWER_BUDGET = 26.0
CAPACITY = 2_000_000.0


def main() -> None:
    library = default_library()
    cdfg = build_benchmark(BENCHMARK)

    naive_task = SynthesisTask.naive(cdfg.name, library=library.name)
    unconstrained = run_task(naive_task, cdfg=cdfg, library=library).result
    constrained = synthesize(cdfg, library, LATENCY, POWER_BUDGET)

    print("Per-cycle power profiles:")
    print(profile_from_schedule(unconstrained.schedule).describe())
    print()
    print(profile_from_schedule(constrained.schedule).describe())
    print()

    rows = []
    for battery_name, battery in (
        ("low quality", low_quality_battery(CAPACITY)),
        ("high quality", high_quality_battery(CAPACITY)),
    ):
        comparison = compare_lifetimes(
            battery, unconstrained.schedule, constrained.schedule
        )
        rows.append(
            [
                battery_name,
                comparison["reference_peak"],
                comparison["improved_peak"],
                comparison["reference_iterations"],
                comparison["improved_iterations"],
                100.0 * comparison["extension"],
            ]
        )

    print(
        render_table(
            [
                "battery",
                "peak (unconstrained)",
                "peak (constrained)",
                "iterations (unconstrained)",
                "iterations (constrained)",
                "lifetime extension %",
            ],
            rows,
            title=f"Battery lifetime on {BENCHMARK!r} (T={LATENCY}, P={POWER_BUDGET})",
        )
    )
    print()
    print(
        "The power-constrained design trades "
        f"{constrained.total_area - unconstrained.total_area:+.0f} area units "
        "for the flattened profile (negative = it is actually smaller thanks "
        "to functional-unit sharing) and runs "
        f"{rows[0][5]:.1f}% longer on the cheap battery."
    )


if __name__ == "__main__":
    main()
