"""Unit tests for repro.scheduling.schedule."""

import pytest

from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.schedule import (
    Schedule,
    ScheduleError,
    add_to_profile,
    empty_power_profile,
    profile_allows,
)


def make_schedule(diamond, starts=None):
    starts = starts or {"a": 0, "c": 0, "left": 1, "right": 1, "bottom": 5, "out": 6}
    delays = {"a": 1, "c": 1, "left": 1, "right": 4, "bottom": 1, "out": 1}
    powers = {"a": 0.2, "c": 0.2, "left": 2.5, "right": 2.7, "bottom": 2.5, "out": 1.7}
    return Schedule(diamond, dict(starts), delays, powers, label="test")


class TestBasics:
    def test_start_finish_interval(self, diamond):
        s = make_schedule(diamond)
        assert s.start("right") == 1
        assert s.finish("right") == 5
        assert s.interval("right") == (1, 5)

    def test_makespan(self, diamond):
        assert make_schedule(diamond).makespan == 7

    def test_unknown_operation(self, diamond):
        with pytest.raises(ScheduleError):
            make_schedule(diamond).start("ghost")

    def test_missing_operation_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            Schedule(diamond, {"a": 0}, {"a": 1}, {"a": 1.0})

    def test_negative_start_rejected(self, diamond):
        starts = {"a": -1, "c": 0, "left": 1, "right": 1, "bottom": 5, "out": 6}
        with pytest.raises(ScheduleError):
            make_schedule(diamond, starts)

    def test_operations_in_cycle(self, diamond):
        s = make_schedule(diamond)
        assert set(s.operations_in_cycle(1)) == {"left", "right"}
        assert set(s.operations_in_cycle(3)) == {"right"}


class TestPower:
    def test_power_profile_length_and_sum(self, diamond):
        s = make_schedule(diamond)
        profile = s.power_profile()
        assert len(profile) == s.makespan
        assert sum(profile) == pytest.approx(s.total_energy)

    def test_profile_accumulates_concurrent_ops(self, diamond):
        s = make_schedule(diamond)
        # cycle 1: left (2.5) and right (2.7) overlap
        assert s.power_profile()[1] == pytest.approx(5.2)

    def test_peak_and_average(self, diamond):
        s = make_schedule(diamond)
        assert s.peak_power == pytest.approx(max(s.power_profile()))
        assert s.average_power == pytest.approx(sum(s.power_profile()) / s.makespan)

    def test_total_energy(self, diamond):
        s = make_schedule(diamond)
        expected = 0.2 + 0.2 + 2.5 + 2.7 * 4 + 2.5 + 1.7
        assert s.total_energy == pytest.approx(expected)

    def test_profile_horizon_padding(self, diamond):
        s = make_schedule(diamond)
        assert len(s.power_profile(horizon=20)) == 20


class TestLegality:
    def test_valid_schedule_verifies(self, diamond):
        s = make_schedule(diamond)
        s.verify(time=TimeConstraint(7), power=PowerConstraint(6.0))

    def test_precedence_violation_detected(self, diamond):
        starts = {"a": 0, "c": 0, "left": 1, "right": 1, "bottom": 2, "out": 6}
        s = make_schedule(diamond, starts)
        # bottom starts at 2 but right (4 cycles) finishes at 5
        assert ("right", "bottom") in s.precedence_violations()
        with pytest.raises(ScheduleError):
            s.verify()

    def test_latency_violation_detected(self, diamond):
        s = make_schedule(diamond)
        with pytest.raises(ScheduleError):
            s.verify(time=TimeConstraint(6))

    def test_power_violation_detected(self, diamond):
        s = make_schedule(diamond)
        with pytest.raises(ScheduleError):
            s.verify(power=PowerConstraint(5.0))

    def test_respects_helpers(self, diamond):
        s = make_schedule(diamond)
        assert s.respects_time(TimeConstraint(10))
        assert not s.respects_time(TimeConstraint(3))
        assert s.respects_power(PowerConstraint(10.0))
        assert not s.respects_power(PowerConstraint(1.0))


class TestPresentation:
    def test_by_cycle_groups(self, diamond):
        grouped = make_schedule(diamond).by_cycle()
        assert set(grouped[0]) == {"a", "c"}
        assert set(grouped[1]) == {"left", "right"}

    def test_describe_mentions_label_and_peak(self, diamond):
        text = make_schedule(diamond).describe()
        assert "makespan=7" in text
        assert "cycle" in text

    def test_copy_with_overrides(self, diamond):
        s = make_schedule(diamond)
        copy = s.copy_with(label="other")
        assert copy.label == "other"
        assert copy.start_times == s.start_times
        assert copy.start_times is not s.start_times


class TestProfileHelpers:
    def test_empty_profile(self):
        assert empty_power_profile(3) == [0.0, 0.0, 0.0]
        with pytest.raises(ValueError):
            empty_power_profile(-1)

    def test_add_to_profile_grows(self):
        profile = [1.0]
        add_to_profile(profile, 2, 2, 3.0)
        assert profile == [1.0, 0.0, 3.0, 3.0]

    def test_profile_allows(self):
        constraint = PowerConstraint(5.0)
        profile = [2.0, 4.0]
        assert profile_allows(profile, 0, 1, 3.0, constraint)
        assert not profile_allows(profile, 1, 1, 3.0, constraint)
        # beyond the current profile the draw starts from zero
        assert profile_allows(profile, 5, 3, 5.0, constraint)

    def test_profile_allows_unbounded(self):
        assert profile_allows([100.0], 0, 1, 100.0, PowerConstraint.unbounded())
