"""Ablation A — pasap vs. the two-step schedule-then-reorder baseline.

The paper positions its *combined* formulation against two-step approaches
([1], [2]) that first build a time-constrained schedule and then repair
the power profile.  This ablation runs both on every suite benchmark at
the same latency bound and a moderately tight power budget and compares:

* whether the power budget is met at all, and
* the resulting peak power.

pasap meets the budget by construction whenever it reports success; the
two-step repair may fail, which is exactly the motivation for the paper's
combined algorithm.
"""

from __future__ import annotations

from repro.library import MinPowerSelection, selection_delays, selection_powers
from repro.reporting.table import render_table
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.pasap import PowerInfeasibleError, pasap_schedule
from repro.scheduling.two_step import two_step_schedule
from repro.suite.registry import build_benchmark

CASES = [
    ("hal", 20, 9.0),
    ("cosine", 22, 14.0),
    ("elliptic", 28, 12.0),
    ("fir", 16, 45.0),
    ("ar", 24, 22.0),
]


def run_comparison(library):
    rows = []
    for name, latency, budget in CASES:
        cdfg = build_benchmark(name)
        selection = MinPowerSelection().select(cdfg, library)
        delays = selection_delays(selection, cdfg)
        powers = selection_powers(selection, cdfg)
        constraint = PowerConstraint(budget)

        try:
            pasap = pasap_schedule(cdfg, delays, powers, constraint)
            pasap_ok = pasap.makespan <= latency
            pasap_peak = pasap.peak_power
        except PowerInfeasibleError:
            pasap_ok, pasap_peak = False, None

        two_step = two_step_schedule(
            cdfg, delays, powers, constraint, TimeConstraint(latency)
        )
        rows.append(
            [
                name,
                latency,
                budget,
                pasap_ok,
                pasap_peak,
                two_step.met_power,
                two_step.schedule.peak_power,
                two_step.moves,
            ]
        )
    return rows


def test_pasap_vs_two_step(benchmark, library):
    rows = benchmark(run_comparison, library)

    table = render_table(
        ["benchmark", "T", "P", "pasap ok", "pasap peak", "2-step ok", "2-step peak", "moves"],
        rows,
        title="Ablation A: pasap vs. two-step schedule-then-reorder",
    )
    print()
    print(table)

    # pasap must meet every case's budget within the latency bound.
    for name, latency, budget, pasap_ok, pasap_peak, *_ in rows:
        assert pasap_ok, f"pasap missed the bound on {name}"
        assert pasap_peak <= budget + 1e-9

    # Wherever the two-step repair claims success it must actually meet the
    # budget, and it never beats pasap's peak by construction of the budget.
    for _, _, budget, _, _, two_ok, two_peak, _ in rows:
        if two_ok:
            assert two_peak <= budget + 1e-9
