"""Unit tests for the batch executor: records, parity, Sweep expansion."""

import json

import pytest

from repro.api import Sweep, SynthesisTask, TaskResult, run_batch, run_task
from repro.api.task import TaskError


def _summary(record):
    return (
        record.feasible,
        record.area,
        record.fu_area,
        record.peak_power,
        record.latency,
        record.backtracks,
        record.error_type,
    )


class TestRunTask:
    def test_feasible_task_keeps_full_result(self):
        record = run_task(SynthesisTask(graph="hal", latency=17, power_budget=12.0))
        assert record.feasible
        assert record.result is not None
        assert record.area == record.result.total_area
        assert record.elapsed > 0

    def test_infeasible_task_is_a_record_not_an_exception(self):
        record = run_task(SynthesisTask(graph="hal", latency=17, power_budget=2.0))
        assert not record.feasible
        assert record.result is None and record.area is None
        assert record.error_type == "PowerInfeasibleSynthesisError"
        assert record.error

    def test_verify_failure_counts_as_infeasible(self):
        record = run_task(
            SynthesisTask(graph="hal", latency=20, power_budget=5.0, scheduler="asap")
        )
        assert not record.feasible
        # The deep certificate checker flags the power violation; its
        # error is both a SynthesisError and a ScheduleError.
        assert record.error_type == "CertificateError"
        assert "power" in record.error

    def test_record_round_trips_through_dict(self):
        record = run_task(SynthesisTask(graph="hal", latency=17, power_budget=12.0))
        restored = TaskResult.from_dict(json.loads(json.dumps(record.to_dict())))
        assert _summary(restored) == _summary(record)
        assert restored.task == record.task

    def test_verify_kwarg_certifies_a_clean_result(self):
        record = run_task(
            SynthesisTask(graph="hal", latency=17, power_budget=12.0), verify=True
        )
        assert record.feasible

    def test_verify_kwarg_raises_on_an_uncertified_result(self):
        from repro.verify import CertificateError

        # With the task's own verify gate off, the power-oblivious asap
        # schedule comes back "feasible" despite busting the budget; the
        # caller-side assertion must refuse it loudly.
        task = SynthesisTask(
            graph="hal", latency=20, power_budget=5.0, scheduler="asap", verify=False
        )
        assert run_task(task).feasible  # the lie, without the assertion
        with pytest.raises(CertificateError) as excinfo:
            run_task(task, verify=True)
        assert excinfo.value.report.by_kind("power")

    def test_verify_kwarg_never_caches_the_uncertified_result(self, tmp_path):
        from repro.explore import ResultCache
        from repro.verify import CertificateError

        cache = ResultCache(tmp_path / "cache", read=True)
        task = SynthesisTask(
            graph="hal", latency=20, power_budget=5.0, scheduler="asap", verify=False
        )
        with pytest.raises(CertificateError):
            run_task(task, cache=cache, verify=True)
        assert len(cache) == 0


class TestRunBatch:
    @pytest.fixture(scope="class")
    def sweep_tasks(self):
        budgets = [6, 8, 9, 10, 11, 12, 14, 16, 20, 25, 30, 40, 60, 80, 100, 150]
        return Sweep("hal", 17, budgets).tasks()

    def test_parallel_matches_sequential_on_16_point_sweep(self, sweep_tasks):
        sequential = run_batch(sweep_tasks)
        parallel = run_batch(sweep_tasks, jobs=2, keep_results=False)
        assert len(sequential) == len(parallel) == 16
        for seq, par in zip(sequential, parallel):
            assert _summary(seq) == _summary(par)
            assert par.result is None  # workers return scalars only

    def test_order_is_preserved(self, sweep_tasks):
        records = run_batch(sweep_tasks)
        assert [r.task.power_budget for r in records] == sorted(
            t.power_budget for t in sweep_tasks
        )

    def test_sequential_default_keeps_results(self, sweep_tasks):
        records = run_batch(sweep_tasks[:2])
        assert all(r.result is not None for r in records if r.feasible)

    def test_custom_pipeline_rejected_in_parallel(self, sweep_tasks):
        from repro.api import Pipeline

        with pytest.raises(ValueError):
            run_batch(sweep_tasks, jobs=2, pipeline=Pipeline.default())

    def test_keep_results_rejected_in_parallel(self, sweep_tasks):
        with pytest.raises(ValueError):
            run_batch(sweep_tasks, jobs=2, keep_results=True)

    def test_single_task_runs_in_process_even_with_jobs(self):
        records = run_batch(
            [SynthesisTask(graph="hal", latency=17, power_budget=12.0)], jobs=4
        )
        assert records[0].result is not None

    def test_unknown_scheduler_surfaces_cleanly_from_workers(self):
        from repro.registries import UnknownStrategyError

        tasks = [
            SynthesisTask(graph="hal", latency=17, power_budget=12.0),
            SynthesisTask(graph="hal", latency=17, scheduler="bogus"),
        ]
        with pytest.raises(UnknownStrategyError, match="bogus"):
            run_batch(tasks, jobs=2, keep_results=False)


class TestSweep:
    def test_expands_sorted_tasks(self):
        sweep = Sweep("hal", 17, [12.0, 8.0, 20.0])
        tasks = sweep.tasks()
        assert [t.power_budget for t in tasks] == [8.0, 12.0, 20.0]
        assert all(t.graph == "hal" and t.latency == 17 for t in tasks)

    def test_empty_budgets_rejected(self):
        with pytest.raises(TaskError):
            Sweep("hal", 17, []).tasks()

    def test_scalar_budgets_rejected(self):
        with pytest.raises(TaskError):
            Sweep("hal", 17, 5).tasks()

    def test_dict_round_trip(self):
        sweep = Sweep("hal", 17, [8.0, 12.0], scheduler="pasap", label="s")
        restored = Sweep.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert restored == sweep

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(TaskError):
            Sweep.from_dict({"graph": "hal", "latency": 17, "budgets": [1.0]})
        with pytest.raises(TaskError):
            Sweep.from_dict({"graph": "hal", "latency": 17})

    def test_run_matches_explicit_batch(self):
        sweep = Sweep("hal", 17, [10.0, 12.0])
        via_sweep = sweep.run()
        via_batch = run_batch(sweep.tasks())
        assert [_summary(a) for a in via_sweep] == [_summary(b) for b in via_batch]


class TestExploreParity:
    def test_power_area_sweep_parallel_identical(self, hal, library):
        from repro.synthesis.explore import power_area_sweep

        budgets = [9.0, 10.0, 12.0, 16.0, 25.0, 60.0]
        sequential = power_area_sweep(hal, library, 17, budgets)
        parallel = power_area_sweep(hal, library, 17, budgets, jobs=2)
        assert sequential.points == parallel.points
