"""The process worker tier: synthesis in child processes, past the GIL.

PR-5's service executed jobs on worker *threads*; for CPU-bound
scheduling/binding they serialize on the GIL, so a 4-worker service
measured barely above 1-worker cold throughput.  This module moves the
execution into child processes — the same shape the batch executor
proved — while the parent keeps everything stateful: the
:class:`~repro.serve.queue.JobQueue`, the in-process per-key claims,
the ``/stats`` counters.

* :func:`run_claimed_task` is the execution protocol (usable in-process
  too): check the shared cache, take the **store-level claim file** for
  the task's content address (:mod:`repro.store.claims`), re-check,
  synthesize through ``run_task(verify=…)``, release.  While someone
  else holds the claim it polls the cache — the holder finishing *is*
  the wakeup — and a holder that dies mid-synthesis goes stale
  (dead pid / expired lease) and is broken, so two service processes
  sharing a cache directory synthesize each address exactly once and a
  SIGKILL never wedges a key.
* :class:`ProcessWorker` is one long-lived child process plus its pipe.
  The parent sends ``(task, key)`` payloads and blocks for the record;
  a child that dies mid-job surfaces as :class:`WorkerCrash` (EOF on
  the pipe, exit code attached) so the service can requeue the job and
  respawn the slot.

Children are forked (POSIX) with every module they need already
imported, or spawned where fork is unavailable.  They ignore SIGINT —
shutdown is the parent's decision, delivered as a ``None`` sentinel.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Any, Dict, Optional

from ..api.batch import run_task
from ..api.task import SynthesisTask
from ..explore.cache import ResultCache
from ..store import claims

# Imported for the children's benefit under the spawn start method and
# to keep fork-time import-lock hazards away: everything a worker child
# touches is loaded before the first fork.
from ..verify import certificate as _certificate  # noqa: F401

__all__ = ["ProcessWorker", "WorkerCrash", "run_claimed_task"]

#: Seconds between cache polls while another process holds the claim.
CLAIM_POLL = 0.02

#: Default ceiling on waiting for someone else's claim before computing
#: redundantly anyway (the cache keeps that merely wasteful, not wrong).
CLAIM_TIMEOUT = 600.0


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class WorkerCrash(RuntimeError):
    """A worker child died mid-job (SIGKILL, OOM, hard crash).

    Attributes:
        pid: The dead child's pid.
        exitcode: Its exit code (negative = killed by that signal).
    """

    def __init__(self, pid: Optional[int], exitcode: Optional[int]) -> None:
        super().__init__(f"worker process {pid} died (exitcode {exitcode})")
        self.pid = pid
        self.exitcode = exitcode


def run_claimed_task(
    task: SynthesisTask,
    cache: ResultCache,
    *,
    verify: bool = True,
    owner: str = "",
    lease: float = claims.DEFAULT_LEASE,
    claim_timeout: float = CLAIM_TIMEOUT,
) -> Dict[str, Any]:
    """Execute one task under the store-level single-flight protocol.

    Returns the finished record in plain-dict form (feasible or
    infeasible both count as outcomes); an execution *error* — a
    certificate rejection, a genuine bug — comes back as
    ``{"error": …, "error_type": …}`` rather than raising, because the
    caller may live on the far side of a pipe.
    """
    key = task.cache_key()
    try:
        deadline = time.monotonic() + claim_timeout
        claim = None
        while True:
            hit = cache.get(task)
            if hit is not None:
                return hit.to_dict()
            claim = claims.try_acquire(cache.root, key, lease=lease, owner=owner)
            if claim is not None or time.monotonic() > deadline:
                break
            time.sleep(CLAIM_POLL)
        try:
            # run_task re-checks the cache first: the claim holder we
            # outwaited may have finished between our poll and our link
            record = run_task(task, keep_result=False, cache=cache, verify=verify)
        finally:
            if claim is not None:
                claim.release()
        return record.to_dict()
    except Exception as exc:  # noqa: BLE001 - shipped across the pipe
        return {"error": str(exc), "error_type": type(exc).__name__}


def _child_main(
    conn,
    cache_dir: str,
    cache_backend: Optional[str],
    verify: bool,
    lease: float,
) -> None:
    """Worker-child loop: payload dict in, record dict out, until EOF."""
    try:  # the parent's Ctrl-C must not kill workers mid-synthesis
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    parent = os.getppid()
    cache = ResultCache(cache_dir, backend=cache_backend)
    while True:
        try:
            # Poll instead of a bare recv: forked siblings inherit each
            # other's parent-end pipe fds, so a SIGKILLed parent never
            # EOFs this pipe — reparenting is the only reliable signal.
            while not conn.poll(1.0):
                if os.getppid() != parent:
                    return
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload is None:
            return
        task = SynthesisTask.from_dict(payload["task"])
        outcome = run_claimed_task(
            task,
            cache,
            verify=verify,
            owner=payload.get("owner", f"pid-{os.getpid()}"),
            lease=lease,
        )
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            return


class ProcessWorker:
    """One synthesis child process and the pipe the parent drives it by."""

    def __init__(
        self,
        cache_dir: str,
        *,
        cache_backend: Optional[str] = None,
        verify: bool = True,
        lease: float = claims.DEFAULT_LEASE,
        name: str = "repro-serve-worker",
    ) -> None:
        self.cache_dir = str(cache_dir)
        self.cache_backend = cache_backend
        self.verify = verify
        self.lease = lease
        self.name = name
        ctx = _context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_child_main,
            args=(child_conn, self.cache_dir, cache_backend, verify, lease),
            name=name,
            daemon=True,
        )
        self._process.start()
        # the parent's copy of the child end must close, or a dead child
        # would never surface as EOF on our recv
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def connection(self):
        """The parent's pipe end — for callers multiplexing many workers.

        The portfolio executor hands these to
        :func:`multiprocessing.connection.wait` so one thread can collect
        whichever contender finishes first.
        """
        return self._conn

    def run(self, task: SynthesisTask, *, owner: str = "") -> Dict[str, Any]:
        """Ship one task to the child; block for its record dict.

        Raises :class:`WorkerCrash` if the child dies before answering.
        """
        self.submit(task, owner=owner)
        try:
            return self._conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
            self._process.join(timeout=5.0)
            raise WorkerCrash(self._process.pid, self._process.exitcode) from None

    def submit(self, task: SynthesisTask, *, owner: str = "") -> None:
        """Non-blocking half of :meth:`run`: ship the payload and return.

        The answer arrives on :attr:`connection` whenever the child
        finishes; :class:`WorkerCrash` is raised if the pipe is already
        dead at send time.
        """
        try:
            self._conn.send({"task": task.to_dict(), "owner": owner})
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._process.join(timeout=5.0)
            raise WorkerCrash(self._process.pid, self._process.exitcode) from None

    def crash_outcome(self) -> Dict[str, Any]:
        """The ``{"error", "error_type"}`` dict for this child's death.

        Shaped exactly like a :func:`run_claimed_task` execution error so
        a crashed race contender flows through the same outcome channel
        as an infeasible one.
        """
        self._process.join(timeout=5.0)
        crash = WorkerCrash(self._process.pid, self._process.exitcode)
        return {"error": str(crash), "error_type": type(crash).__name__}

    def kill(self, timeout: float = 2.0) -> None:
        """Hard-stop a mid-job child (portfolio loser cancellation).

        Unlike :meth:`stop`, this does not wait for the current job: the
        child gets SIGTERM (then SIGKILL) immediately, because a race
        loser's result is no longer wanted.
        """
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - SIGTERM ignored
            self._process.kill()
            self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinel, join, then terminate as a last resort."""
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - wedged child
            self._process.terminate()
            self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
