"""Shared fixtures for the store tests: hand-rolled synthetic payloads.

These tests exercise the storage layer directly, so they do not run any
synthesis — payloads are crafted by hand with the exact shape
``ResultCache.put`` produces (``{"key": ..., "record": {...}}`` with a
``task`` dict inside the record).
"""

import hashlib

import pytest


def synthetic_key(index):
    """A deterministic 64-hex content address that spreads across shards."""
    return hashlib.sha256(f"store-test-{index}".encode()).hexdigest()


def make_payload(
    index,
    *,
    family="hal",
    scheduler="pasap",
    binder="greedy",
    selector="min_area",
    latency=17,
    power=12.0,
    register_budget=None,
    feasible=True,
    area=100.0,
    error_type=None,
    **record_overrides,
):
    """One synthetic cache payload, bit-exact round-trippable."""
    key = synthetic_key(index)
    record = {
        "task": {
            "graph": family,
            "scheduler": scheduler,
            "binder": binder,
            "selector": selector,
            "latency": latency,
            "power_budget": power,
            "register_budget": register_budget,
            "label": f"case-{index}",
        },
        "feasible": feasible,
        "area": area if feasible else None,
        "fu_area": area * 0.75 if feasible else None,
        "peak_power": power - 0.25 if feasible else None,
        "latency": latency if feasible else None,
        "registers": 5 + index % 4 if feasible else None,
        "backtracks": index % 3,
        "elapsed": 0.001 * (index + 1),
        "cached": False,
        "error_type": error_type,
    }
    record.update(record_overrides)
    return key, {"key": key, "record": record}


def fill(store, count, **kwargs):
    """Put ``count`` synthetic payloads; return {key: payload}."""
    expected = {}
    for index in range(count):
        key, payload = make_payload(index, **kwargs)
        store.put(key, payload)
        expected[key] = payload
    return expected


@pytest.fixture
def columnar(tmp_path):
    from repro.store import ColumnarStore

    return ColumnarStore(tmp_path / "col")


@pytest.fixture
def legacy(tmp_path):
    from repro.store import LegacyStore

    return LegacyStore(tmp_path / "leg")
