"""Power profiles, spike analysis, battery model and lifetime estimation."""

from .profile import (
    PowerProfile,
    combine_profiles,
    current_profile,
    profile_from_binding,
    profile_from_schedule,
)
from .analysis import (
    SpikeReport,
    compare_profiles,
    flatness,
    headroom_profile,
    peak_power,
    power_variance,
    spike_report,
)
from .battery import (
    Battery,
    BatteryError,
    BatteryParameters,
    high_quality_battery,
    iterations_until_depleted,
    lifetime_extension,
    low_quality_battery,
)
from .lifetime import LifetimeEstimate, compare_lifetimes, estimate_lifetime

__all__ = [
    "PowerProfile",
    "combine_profiles",
    "current_profile",
    "profile_from_binding",
    "profile_from_schedule",
    "SpikeReport",
    "compare_profiles",
    "flatness",
    "headroom_profile",
    "peak_power",
    "power_variance",
    "spike_report",
    "Battery",
    "BatteryError",
    "BatteryParameters",
    "high_quality_battery",
    "iterations_until_depleted",
    "lifetime_extension",
    "low_quality_battery",
    "LifetimeEstimate",
    "compare_lifetimes",
    "estimate_lifetime",
]
