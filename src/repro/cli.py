"""Command-line interface.

``python -m repro <command>`` exposes the main flows without writing any
Python:

* ``table1`` — print the functional-unit library (the paper's Table 1),
* ``bench list`` (via ``benchmarks``) — list the registered benchmark CDFGs,
* ``synthesize`` — run the combined power-constrained synthesis on a
  benchmark (or a CDFG JSON file) and print the result,
* ``sweep`` — the Figure-2 power/area sweep for one benchmark and latency,
* ``profile`` — print the per-cycle power profile of the unconstrained vs.
  the power-constrained design (Figure 1 for any benchmark).

The CLI is a thin shell over the library API; every command returns a
process exit code of 0 on success and 2 on infeasible constraint sets so
it can be scripted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .ir import load as load_cdfg
from .library import default_library
from .power.profile import profile_from_schedule
from .reporting.experiments import figure1_experiment, table1_report
from .reporting.series import Series, ascii_plot
from .reporting.table import render_table
from .suite.registry import benchmark_names, build_benchmark, get_benchmark
from .synthesis.baseline import naive_synthesis
from .synthesis.explore import (
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
)
from .synthesis.engine import synthesize
from .synthesis.result import SynthesisError

#: Exit code used for infeasible constraint combinations.
EXIT_INFEASIBLE = 2


def _load_graph(args: argparse.Namespace):
    """Resolve the --benchmark / --cdfg options into a CDFG."""
    if args.cdfg is not None:
        return load_cdfg(Path(args.cdfg))
    return build_benchmark(args.benchmark)


def _cmd_table1(_: argparse.Namespace) -> int:
    print(table1_report())
    return 0


def _cmd_benchmarks(_: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        spec = get_benchmark(name)
        graph = spec.build()
        rows.append(
            [
                name,
                len(graph),
                graph.num_edges(),
                ", ".join(str(t) for t in spec.latencies),
                spec.in_paper,
            ]
        )
    print(
        render_table(
            ["benchmark", "operations", "edges", "paper latencies", "in paper"],
            rows,
            title="Registered benchmark CDFGs",
        )
    )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    library = default_library()
    cdfg = _load_graph(args)
    try:
        result = synthesize(cdfg, library, args.latency, args.power)
    except SynthesisError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print(result.describe())
    if args.schedule:
        print()
        print(result.schedule.describe())
    if args.datapath:
        print()
        print(result.datapath.describe())
    if args.verilog is not None:
        Path(args.verilog).write_text(result.datapath.to_structural_verilog())
        print(f"\nwrote structural Verilog skeleton to {args.verilog}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    library = default_library()
    cdfg = _load_graph(args)
    try:
        p_min = minimum_feasible_power(cdfg, library, args.latency)
    except SynthesisError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    budgets = default_power_grid(p_min, args.cap, args.steps)
    sweep = power_area_sweep(
        cdfg, library, args.latency, budgets, cumulative_best=not args.raw
    )
    rows = [
        [point.power_budget, point.feasible, point.area, point.peak_power]
        for point in sweep.points
    ]
    print(
        render_table(
            ["P budget", "feasible", "area", "peak power"],
            rows,
            title=f"Power/area sweep: {cdfg.name} (T={args.latency})",
        )
    )
    series = Series(f"{cdfg.name} (T={args.latency})")
    for point in sweep.feasible_points():
        series.add(point.power_budget, point.area)
    print()
    print(ascii_plot([series], x_label="power budget", y_label="area"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    library = default_library()
    cdfg = _load_graph(args)
    if args.power is None:
        unconstrained = naive_synthesis(cdfg, library)
        print(profile_from_schedule(unconstrained.schedule).describe())
        return 0
    try:
        data = figure1_experiment(
            benchmark=args.benchmark, latency=args.latency, power_budget=args.power
        )
    except SynthesisError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print(data.report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-constrained high-level synthesis (DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the functional-unit library").set_defaults(
        handler=_cmd_table1
    )
    sub.add_parser("benchmarks", help="list the registered benchmarks").set_defaults(
        handler=_cmd_benchmarks
    )

    def add_graph_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--benchmark", "-b", default="hal", choices=benchmark_names())
        p.add_argument("--cdfg", help="path to a CDFG JSON file (overrides --benchmark)")

    synth = sub.add_parser("synthesize", help="run the combined synthesis")
    add_graph_options(synth)
    synth.add_argument("--latency", "-T", type=int, required=True)
    synth.add_argument("--power", "-P", type=float, default=None)
    synth.add_argument("--schedule", action="store_true", help="print the schedule")
    synth.add_argument("--datapath", action="store_true", help="print the datapath")
    synth.add_argument("--verilog", help="write a structural Verilog skeleton to this path")
    synth.set_defaults(handler=_cmd_synthesize)

    sweep = sub.add_parser("sweep", help="power/area sweep (one Figure-2 curve)")
    add_graph_options(sweep)
    sweep.add_argument("--latency", "-T", type=int, required=True)
    sweep.add_argument("--cap", type=float, default=150.0)
    sweep.add_argument("--steps", type=int, default=8)
    sweep.add_argument("--raw", action="store_true", help="disable the running-best convention")
    sweep.set_defaults(handler=_cmd_sweep)

    profile = sub.add_parser("profile", help="per-cycle power profile (Figure 1)")
    add_graph_options(profile)
    profile.add_argument("--latency", "-T", type=int, default=17)
    profile.add_argument("--power", "-P", type=float, default=None)
    profile.set_defaults(handler=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
