"""Battery-lifetime estimation for synthesized designs.

Glue between the synthesis results and the battery model: given a
schedule (or its power profile) and a battery, estimate how many
iterations of the design the battery sustains and compare design
alternatives.  Used by the battery-lifetime example and benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..scheduling.schedule import Schedule
from .battery import BatteryParameters, iterations_until_depleted
from .profile import PowerProfile, profile_from_schedule


@dataclass(frozen=True)
class LifetimeEstimate:
    """Result of a lifetime evaluation.

    Attributes:
        iterations: Complete design iterations until the battery depletes.
        peak_power: Peak per-cycle power of the evaluated profile.
        average_power: Average per-cycle power of the evaluated profile.
        label: Label of the evaluated profile/schedule.
    """

    iterations: int
    peak_power: float
    average_power: float
    label: str = ""


def estimate_lifetime(
    parameters: BatteryParameters,
    schedule: Optional[Schedule] = None,
    profile: Optional[PowerProfile] = None,
    idle_cycles: int = 0,
    idle_power: float = 0.0,
) -> LifetimeEstimate:
    """Estimate battery lifetime for a schedule or an explicit profile.

    Exactly one of ``schedule`` / ``profile`` must be given.  ``idle_cycles``
    of ``idle_power`` are appended to each iteration, modelling the slack
    between activations of a periodic embedded task.
    """
    if (schedule is None) == (profile is None):
        raise ValueError("provide exactly one of schedule or profile")
    if profile is None:
        profile = profile_from_schedule(schedule)
    values: Sequence[float] = list(profile) + [idle_power] * idle_cycles
    iterations = iterations_until_depleted(parameters, values)
    evaluated = PowerProfile.of(values, label=profile.label)
    return LifetimeEstimate(
        iterations=iterations,
        peak_power=evaluated.peak,
        average_power=evaluated.average,
        label=profile.label,
    )


def compare_lifetimes(
    parameters: BatteryParameters,
    reference: Schedule,
    improved: Schedule,
    idle_cycles: int = 0,
) -> dict:
    """Lifetime comparison dictionary for two schedules of the same design.

    Keys: ``reference_iterations``, ``improved_iterations``,
    ``extension`` (fractional gain, e.g. 0.27 for +27 %).
    """
    ref = estimate_lifetime(parameters, schedule=reference, idle_cycles=idle_cycles)
    imp = estimate_lifetime(parameters, schedule=improved, idle_cycles=idle_cycles)
    extension = (imp.iterations - ref.iterations) / ref.iterations if ref.iterations else 0.0
    return {
        "reference_iterations": ref.iterations,
        "improved_iterations": imp.iterations,
        "extension": extension,
        "reference_peak": ref.peak_power,
        "improved_peak": imp.peak_power,
    }
