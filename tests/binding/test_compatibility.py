"""Unit tests for the power-aware time-extended compatibility graph (V1)."""

import pytest

from repro.binding.compatibility import (
    build_compatibility_graph,
    instance_accepts_operation,
    shared_modules,
    windows_allow_sharing,
)
from repro.binding.intervals import Interval
from repro.ir.operation import OpType
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.mobility import Window, compute_windows


def windows_for(cdfg, library, latency, power):
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    windows = compute_windows(
        cdfg, delays, powers, PowerConstraint(power), TimeConstraint(latency)
    )
    return windows, delays


class TestSharedModules:
    def test_add_and_sub_share_the_alu(self, library):
        names = {m.name for m in shared_modules(library, OpType.ADD, OpType.SUB)}
        assert names == {"ALU"}

    def test_two_adds_share_add_and_alu(self, library):
        names = {m.name for m in shared_modules(library, OpType.ADD, OpType.ADD)}
        assert names == {"add", "ALU"}

    def test_add_and_mul_share_nothing(self, library):
        assert shared_modules(library, OpType.ADD, OpType.MUL) == []


class TestWindowSharing:
    def test_disjoint_windows_can_share(self):
        assert windows_allow_sharing(Window(0, 2), 2, Window(4, 8), 2)

    def test_sequential_placement_inside_overlapping_windows(self):
        # a at its earliest (0..2), b at its latest (3..5)
        assert windows_allow_sharing(Window(0, 3), 2, Window(1, 3), 2)

    def test_identical_tight_windows_cannot_share(self):
        assert not windows_allow_sharing(Window(2, 2), 3, Window(2, 2), 3)

    def test_symmetry(self):
        a, b = Window(0, 1), Window(5, 9)
        assert windows_allow_sharing(a, 2, b, 2) == windows_allow_sharing(b, 2, a, 2)


class TestBuildGraph:
    def test_nodes_are_schedulable_operations(self, hal, library):
        windows, delays = windows_for(hal, library, latency=20, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        assert set(graph.operations()) == set(hal.schedulable_operations())

    def test_edges_only_between_type_compatible_ops(self, hal, library):
        windows, delays = windows_for(hal, library, latency=20, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        for pair in graph.pairs():
            type_a = hal.operation(pair.first).optype
            type_b = hal.operation(pair.second).optype
            assert shared_modules(library, type_a, type_b)

    def test_pairs_respect_windows(self, hal, library):
        windows, delays = windows_for(hal, library, latency=20, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        for pair in graph.pairs():
            assert windows_allow_sharing(
                windows[pair.first], delays[pair.first],
                windows[pair.second], delays[pair.second],
            )

    def test_looser_latency_gives_denser_graph(self, hal, library):
        tight_windows, delays = windows_for(hal, library, latency=17, power=12.0)
        loose_windows, _ = windows_for(hal, library, latency=28, power=12.0)
        tight = build_compatibility_graph(hal, library, tight_windows, delays)
        loose = build_compatibility_graph(hal, library, loose_windows, delays)
        assert loose.graph.number_of_edges() >= tight.graph.number_of_edges()

    def test_chained_multiplications_compatible_even_at_critical_latency(self, chain, library):
        """m1 -> m2 -> m3 execute strictly one after another, so they can share
        a single serial multiplier even when T equals the critical path."""
        windows, delays = windows_for(chain, library, latency=14, power=50.0)
        graph = build_compatibility_graph(chain, library, windows, delays)
        assert graph.compatible("m1", "m2")
        assert graph.compatible("m2", "m3")
        assert graph.compatible("m1", "m3")

    def test_independent_multiplications_incompatible_without_slack(self, wide, library):
        """Two independent multiplications with identical single-point windows
        cannot share a unit (they would have to run concurrently)."""
        windows, delays = windows_for(wide, library, latency=6, power=50.0)
        graph = build_compatibility_graph(wide, library, windows, delays)
        assert not graph.compatible("m0", "m1")

    def test_best_module_is_cheapest(self, hal, library):
        windows, delays = windows_for(hal, library, latency=24, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        adds = hal.operations_of_type(OpType.ADD)
        pair = graph.pair(*sorted(adds))
        assert pair is not None
        assert pair.best_module.name == "add"

    def test_common_modules_of_mixed_clique(self, hal, library):
        windows, delays = windows_for(hal, library, latency=30, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        adds = hal.operations_of_type(OpType.ADD)
        subs = hal.operations_of_type(OpType.SUB)
        members = [adds[0], subs[0]]
        if graph.compatible(*sorted(members)):
            common = {m.name for m in graph.common_modules(members)}
            assert common == {"ALU"}

    def test_density_and_degree(self, hal, library):
        windows, delays = windows_for(hal, library, latency=24, power=12.0)
        graph = build_compatibility_graph(hal, library, windows, delays)
        assert 0.0 <= graph.density() <= 1.0
        for op in graph.operations():
            assert graph.degree(op) == len(graph.neighbours(op))


class TestInstanceAcceptance:
    def test_accepts_in_gap(self):
        busy = [Interval(0, 4), Interval(8, 12)]
        assert instance_accepts_operation("x", Window(2, 6), 4, busy) == 4

    def test_rejects_when_window_fully_busy(self):
        busy = [Interval(0, 10)]
        assert instance_accepts_operation("x", Window(2, 5), 4, busy) is None

    def test_accepts_empty_instance(self):
        assert instance_accepts_operation("x", Window(3, 7), 2, []) == 3
