"""Two-phase bounded-variable simplex over exact rational arithmetic.

:func:`solve_lp` solves the continuous relaxation of a
:class:`~repro.lp.model.LinearProgram`:

* **bounded variables** are handled natively (nonbasic variables rest at
  either bound and can *bound-flip* without a basis change), so the 0/1
  box of a time-indexed scheduling model costs no extra rows;
* **phase 1** starts from the all-at-lower-bound point, reuses a row's
  slack as the starting basic variable whenever its sign allows, and
  introduces an artificial only where it does not — minimizing the sum
  of artificials to feasibility (or proving infeasibility);
* **exact arithmetic** means optimality, infeasibility and unboundedness
  are decided without tolerances — which is what lets the
  branch-and-bound above this treat LP verdicts as proofs;
* **anti-cycling**: pricing uses Dantzig's rule (steepest reduced cost)
  for speed and switches to Bland's rule after a run of degenerate
  pivots, which guarantees termination.

The tableau is kept sparse (one dict per row) and fully reduced: the
basic column of each row is a unit column, so pricing reads reduced
costs straight off the objective row.

Internally every number is a gcd-reduced ``(numerator, denominator)``
pair of plain ints with the denominator positive, and the hot loops
inline the rational arithmetic.  :class:`fractions.Fraction` would give
identical answers, but its operator dispatch and re-normalization are
roughly an order of magnitude slower — the difference between the
branch-and-bound clearing a fuzz campaign in seconds and in hours.
Fractions appear only at the public boundary (:class:`SimplexSolution`).

This module imports nothing outside the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Optional, Tuple

from .model import EQUAL, GREATER, LESS, LinearProgram, LPError

#: Solution statuses.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"

#: Consecutive degenerate pivots tolerated before switching to Bland's rule.
_DEGENERATE_LIMIT = 40

#: Hard iteration safety valve (never hit by well-posed models; turns a
#: would-be hang into a loud error).
_MAX_ITERATIONS = 500_000

#: A rational as a reduced (numerator, denominator > 0) pair.
Rat = Tuple[int, int]

_R_ZERO: Rat = (0, 1)
_R_ONE: Rat = (1, 1)


def _reduce(num: int, den: int) -> Rat:
    if den < 0:
        num, den = -num, -den
    g = gcd(num, den)
    if g > 1:
        return (num // g, den // g)
    return (num, den)


def _from_fraction(value: Fraction) -> Rat:
    return (value.numerator, value.denominator)


def _to_fraction(value: Rat) -> Fraction:
    return Fraction(value[0], value[1])


def _r_add(a: Rat, b: Rat) -> Rat:
    an, ad = a
    bn, bd = b
    return _reduce(an * bd + bn * ad, ad * bd)


def _r_sub(a: Rat, b: Rat) -> Rat:
    an, ad = a
    bn, bd = b
    return _reduce(an * bd - bn * ad, ad * bd)


def _r_mul(a: Rat, b: Rat) -> Rat:
    return _reduce(a[0] * b[0], a[1] * b[1])


def _r_div(a: Rat, b: Rat) -> Rat:
    return _reduce(a[0] * b[1], a[1] * b[0])


def _r_lt(a: Rat, b: Rat) -> bool:
    return a[0] * b[1] < b[0] * a[1]


@dataclass
class SimplexSolution:
    """Outcome of one LP solve.

    Attributes:
        status: ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
        objective: Exact optimal objective value (``None`` unless optimal).
        values: Exact value per *structural* variable (``None`` unless
            optimal), indexed like ``program.variables``.
        iterations: Simplex pivots/bound-flips performed across both phases.
    """

    status: str
    objective: Optional[Fraction] = None
    values: Optional[List[Fraction]] = None
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


class _Infeasible(Exception):
    """Internal: bound overrides produced an empty box."""


class _Tableau:
    """Sparse reduced tableau with bounded variables (all entries Rat)."""

    def __init__(
        self,
        program: LinearProgram,
        overrides: Optional[Mapping[int, Tuple[Fraction, Optional[Fraction]]]],
    ) -> None:
        self.structural = len(program.variables)
        self.lower: List[Rat] = []
        self.upper: List[Optional[Rat]] = []
        for index, variable in enumerate(program.variables):
            low, up = variable.lower, variable.upper
            if overrides is not None and index in overrides:
                low, up = overrides[index]
            if up is not None and up < low:
                raise _Infeasible()
            self.lower.append(_from_fraction(low))
            self.upper.append(_from_fraction(up) if up is not None else None)

        # Nonbasic rest position: True = at upper bound.
        self.at_upper: List[bool] = [False] * self.structural
        self.rows: List[Dict[int, Rat]] = []
        self.rhs: List[Rat] = []
        self.basis: List[int] = []
        self.artificials: List[int] = []
        #: variable -> row it is basic in, or -1.
        self.basic_row: List[int] = [-1] * self.structural
        #: Current value of each row's basic variable, maintained
        #: incrementally across pivots and bound flips.
        self.xB: List[Rat] = []
        self.iterations = 0
        self._degenerate_run = 0
        self._bland = False

        for constraint in program.constraints:
            row: Dict[int, Rat] = {}
            residual = _from_fraction(constraint.rhs)
            for index, coefficient in constraint.coefficients:
                value = _from_fraction(coefficient)
                if index in row:
                    value = _r_add(row[index], value)
                row[index] = value
                rest = self._rest_value(index)
                if rest[0]:
                    residual = _r_sub(residual, _r_mul(value, rest))
            slack: Optional[int] = None
            if constraint.sense in (LESS, GREATER):
                slack = self._new_variable(_R_ZERO, None)
                row[slack] = _R_ONE if constraint.sense == LESS else (-1, 1)
            if residual[0] < 0:
                # Flip the whole row so the starting basic value (the
                # residual) is non-negative.
                row = {index: (-n, d) for index, (n, d) in row.items()}
                rhs = _from_fraction(-constraint.rhs)
                residual = (-residual[0], residual[1])
            else:
                rhs = _from_fraction(constraint.rhs)
            if slack is not None and row[slack] == _R_ONE:
                basic = slack
            else:
                basic = self._new_variable(_R_ZERO, None)
                row[basic] = _R_ONE
                self.artificials.append(basic)
            self.rows.append(row)
            self.rhs.append(rhs)
            self.basis.append(basic)
            self.basic_row[basic] = len(self.rows) - 1
            self.xB.append(residual)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _new_variable(self, lower: Rat, upper: Optional[Rat]) -> int:
        index = len(self.lower)
        self.lower.append(lower)
        self.upper.append(upper)
        self.at_upper.append(False)
        self.basic_row.append(-1)
        return index

    def _rest_value(self, index: int) -> Rat:
        upper = self.upper[index]
        return upper if (self.at_upper[index] and upper is not None) else self.lower[index]

    def value_of(self, index: int) -> Rat:
        row = self.basic_row[index]
        return self.xB[row] if row >= 0 else self._rest_value(index)

    def reduced_objective(self, objective: Mapping[int, Rat]) -> Dict[int, Rat]:
        """The objective row with every basic column eliminated."""
        reduced = {index: value for index, value in objective.items() if value[0]}
        for i, basic in enumerate(self.basis):
            factor = reduced.get(basic)
            if factor is None or not factor[0]:
                continue
            fn, fd = factor
            for index, (cn, cd) in self.rows[i].items():
                on, od = reduced.get(index, _R_ZERO)
                num = on * fd * cd - fn * cn * od
                if num:
                    reduced[index] = _reduce(num, od * fd * cd)
                else:
                    reduced.pop(index, None)
        return reduced

    # ------------------------------------------------------------------ #
    # The simplex loop
    # ------------------------------------------------------------------ #
    def optimize(self, objective: Dict[int, Rat]) -> str:
        """Minimize over the current basis; returns OPTIMAL or UNBOUNDED."""
        while True:
            self.iterations += 1
            if self.iterations > _MAX_ITERATIONS:  # pragma: no cover - safety valve
                raise LPError("simplex iteration limit exceeded")
            entering = self._price(objective)
            if entering is None:
                return OPTIMAL
            direction = -1 if self.at_upper[entering] else 1
            step, limiting = self._ratio_test(entering, direction)
            if step is None:
                return UNBOUNDED
            if self._bland and step[0]:
                # A non-degenerate pivot breaks any stalled cycle; resume
                # the fast pricing rule.
                self._bland = False
                self._degenerate_run = 0
            elif not step[0]:
                self._degenerate_run += 1
                if self._degenerate_run > _DEGENERATE_LIMIT:
                    self._bland = True
            delta: Rat = step if direction > 0 else (-step[0], step[1])
            if limiting is None:
                # Bound flip: the entering variable crosses its own box.
                self.at_upper[entering] = not self.at_upper[entering]
                if delta[0]:
                    dn, dd = delta
                    for i, row in enumerate(self.rows):
                        coefficient = row.get(entering)
                        if coefficient is not None:
                            cn, cd = coefficient
                            bn, bd = self.xB[i]
                            self.xB[i] = _reduce(bn * cd * dd - cn * dn * bd, bd * cd * dd)
                continue
            self._pivot(entering, delta, limiting, objective)

    def _price(self, objective: Dict[int, Rat]) -> Optional[int]:
        best: Optional[int] = None
        best_score = _R_ZERO
        for index, cost in objective.items():
            if self.basic_row[index] >= 0:
                continue
            lower, upper = self.lower[index], self.upper[index]
            if upper is not None and upper == lower:
                continue  # fixed variable can never move
            at_upper = self.at_upper[index] and upper is not None
            if at_upper:
                if cost[0] <= 0:
                    continue
                score = cost
            else:
                if cost[0] >= 0:
                    continue
                score = (-cost[0], cost[1])
            if self._bland:
                if best is None or index < best:
                    best = index
                    best_score = score
            elif _r_lt(best_score, score) or (
                score == best_score and (best is None or index < best)
            ):
                best = index
                best_score = score
        return best

    def _ratio_test(
        self, entering: int, direction: int
    ) -> Tuple[Optional[Rat], Optional[int]]:
        """Largest feasible step for the entering variable.

        Returns ``(step, limiting_row)``; ``limiting_row`` is ``None``
        when the entering variable's own opposite bound binds first (a
        bound flip), and ``step`` is ``None`` when nothing binds at all
        (the LP is unbounded in this direction).
        """
        step: Optional[Rat] = None
        limiting: Optional[int] = None
        span_upper = self.upper[entering]
        if span_upper is not None:
            step = _r_sub(span_upper, self.lower[entering])
        for i, row in enumerate(self.rows):
            coefficient = row.get(entering)
            if coefficient is None or not coefficient[0]:
                continue
            # d(basic_i)/d(step) = -coefficient * direction
            rising = (coefficient[0] < 0) if direction > 0 else (coefficient[0] > 0)
            basic = self.basis[i]
            if rising:
                bound = self.upper[basic]
                if bound is None:
                    continue
                allowance = _r_sub(bound, self.xB[i])
            else:
                allowance = _r_sub(self.xB[i], self.lower[basic])
            rate = (abs(coefficient[0]), coefficient[1])
            candidate = _r_div(allowance, rate)
            if step is None or _r_lt(candidate, step):
                step = candidate
                limiting = i
            elif candidate == step and limiting is not None:
                # Bland tie-break on the leaving variable: smallest index.
                if self.basis[i] < self.basis[limiting]:
                    limiting = i
        return step, limiting

    def _pivot(
        self,
        entering: int,
        delta: Rat,
        limiting: int,
        objective: Dict[int, Rat],
    ) -> None:
        leaving = self.basis[limiting]
        pivot_row = self.rows[limiting]
        pivot = pivot_row[entering]
        # Which of its bounds did the leaving variable hit?
        if delta[0]:
            self.at_upper[leaving] = (pivot[0] * delta[0]) < 0
        else:
            self.at_upper[leaving] = self.xB[limiting] == self.upper[leaving]
        self.basic_row[leaving] = -1

        # Update every basic value for the entering variable's move, then
        # install the entering variable as the limiting row's basic.
        entering_value = _r_add(self._rest_value(entering), delta)
        if delta[0]:
            dn, dd = delta
            for i, row in enumerate(self.rows):
                if i == limiting:
                    continue
                coefficient = row.get(entering)
                if coefficient is not None:
                    cn, cd = coefficient
                    bn, bd = self.xB[i]
                    self.xB[i] = _reduce(bn * cd * dd - cn * dn * bd, bd * cd * dd)
        self.xB[limiting] = entering_value

        if pivot != _R_ONE:
            # Normalize the pivot row so the entering column is 1.
            pn, pd = pivot
            self.rows[limiting] = pivot_row = {
                index: _reduce(n * pd, d * pn) for index, (n, d) in pivot_row.items()
            }
            rn, rd = self.rhs[limiting]
            self.rhs[limiting] = _reduce(rn * pd, rd * pn)
        pivot_items = list(pivot_row.items())
        pivot_rhs = self.rhs[limiting]
        for i, row in enumerate(self.rows):
            if i == limiting:
                continue
            factor = row.get(entering)
            if factor is None or not factor[0]:
                continue
            fn, fd = factor
            for index, (pn, pd) in pivot_items:
                cn, cd = row.get(index, _R_ZERO)
                num = cn * fd * pd - fn * pn * cd
                if num:
                    row[index] = _reduce(num, cd * fd * pd)
                else:
                    row.pop(index, None)
            rn, rd = self.rhs[i]
            qn, qd = pivot_rhs
            self.rhs[i] = _reduce(rn * fd * qd - fn * qn * rd, rd * fd * qd)
        factor = objective.get(entering)
        if factor is not None and factor[0]:
            fn, fd = factor
            for index, (pn, pd) in pivot_items:
                cn, cd = objective.get(index, _R_ZERO)
                num = cn * fd * pd - fn * pn * cd
                if num:
                    objective[index] = _reduce(num, cd * fd * pd)
                else:
                    objective.pop(index, None)
        self.basis[limiting] = entering
        self.basic_row[entering] = limiting


def solve_lp(
    program: LinearProgram,
    bounds: Optional[Mapping[int, Tuple[Fraction, Optional[Fraction]]]] = None,
) -> SimplexSolution:
    """Solve the continuous relaxation of ``program`` exactly.

    Args:
        program: The model (integrality flags are ignored here — that is
            :func:`repro.lp.branch_bound.solve_milp`'s job).
        bounds: Optional per-variable ``(lower, upper)`` overrides, the
            mechanism branch-and-bound uses to explore subproblems
            without copying the program.

    Returns:
        A :class:`SimplexSolution`.  ``status`` is exact: ``infeasible``
        and ``unbounded`` are proofs, not tolerance judgements.
    """
    try:
        tableau = _Tableau(program, bounds)
    except _Infeasible:
        return SimplexSolution(status=INFEASIBLE)

    # Phase 1: minimize the sum of artificials down to zero.
    if tableau.artificials:
        phase_one = tableau.reduced_objective(
            {index: _R_ONE for index in tableau.artificials}
        )
        status = tableau.optimize(phase_one)
        if status != OPTIMAL:  # pragma: no cover - sum of artificials is bounded
            raise LPError("phase-1 objective cannot be unbounded")
        if any(tableau.value_of(index)[0] for index in tableau.artificials):
            return SimplexSolution(status=INFEASIBLE, iterations=tableau.iterations)
        # Pin every artificial at zero so phase 2 can never re-use them.
        for index in tableau.artificials:
            tableau.lower[index] = _R_ZERO
            tableau.upper[index] = _R_ZERO
            tableau.at_upper[index] = False

    objective = tableau.reduced_objective(
        {
            index: _from_fraction(value)
            for index, value in program.objective.items()
        }
    )
    status = tableau.optimize(objective)
    if status == UNBOUNDED:
        return SimplexSolution(status=UNBOUNDED, iterations=tableau.iterations)
    values = [
        _to_fraction(tableau.value_of(index)) for index in range(tableau.structural)
    ]
    return SimplexSolution(
        status=OPTIMAL,
        objective=program.evaluate_objective(values),
        values=values,
        iterations=tableau.iterations,
    )
