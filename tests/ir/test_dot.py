"""Unit tests for repro.ir.dot."""

from repro.ir.analysis import asap_times
from repro.ir.dot import to_dot


def test_dot_contains_all_operations(diamond):
    dot = to_dot(diamond)
    for name in diamond.operation_names():
        assert f'"{name}"' in dot


def test_dot_contains_all_edges(diamond):
    dot = to_dot(diamond)
    for src, dst in diamond.edges():
        assert f'"{src}" -> "{dst}"' in dot


def test_dot_is_a_digraph(diamond):
    dot = to_dot(diamond)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")


def test_dot_with_schedule_has_ranks(diamond):
    start = asap_times(diamond)
    dot = to_dot(diamond, start_times=start)
    assert "rank=same" in dot
    assert "t=0" in dot


def test_dot_title_override(diamond):
    assert 'digraph "custom"' in to_dot(diamond, title="custom")


def test_dot_multiplicity_label(chain):
    dot = to_dot(chain)
    assert "x2" in dot  # the x*x edge is annotated
