"""Unit tests for repro.ir.serialize."""

import pytest

from repro.ir.cdfg import CDFGError
from repro.ir.serialize import from_dict, from_json, load, save, to_dict, to_json


class TestRoundTrip:
    def test_dict_round_trip(self, hal):
        restored = from_dict(to_dict(hal))
        assert set(restored.operation_names()) == set(hal.operation_names())
        assert sorted(restored.edges()) == sorted(hal.edges())
        for name in hal.operation_names():
            assert restored.operation(name).optype is hal.operation(name).optype

    def test_json_round_trip(self, cosine):
        restored = from_json(to_json(cosine))
        assert len(restored) == len(cosine)
        assert restored.num_edges() == cosine.num_edges()

    def test_multiplicity_preserved(self, chain):
        # chain contains x*x style edges with multiplicity 2
        restored = from_json(to_json(chain))
        assert restored.edge_multiplicity("x", "m1") == chain.edge_multiplicity("x", "m1")

    def test_file_round_trip(self, tmp_path, elliptic):
        path = save(elliptic, tmp_path / "elliptic.json")
        restored = load(path)
        assert len(restored) == len(elliptic)

    def test_attrs_preserved(self, hal):
        restored = from_dict(to_dict(hal))
        assert restored.operation("const_3").attrs.get("value") == 3


class TestErrors:
    def test_missing_key_rejected(self):
        with pytest.raises(CDFGError):
            from_dict({"name": "x", "operations": []})

    def test_unknown_edge_endpoint_rejected(self):
        data = {
            "name": "broken",
            "operations": [{"name": "a", "type": "in"}],
            "edges": [{"src": "a", "dst": "missing"}],
        }
        with pytest.raises(CDFGError):
            from_dict(data)

    def test_invalid_graph_rejected_unless_disabled(self):
        data = {
            "name": "invalid",
            "operations": [{"name": "o", "type": "out"}],
            "edges": [],
        }
        with pytest.raises(Exception):
            from_dict(data)
        # skipping validation lets the structurally odd graph through
        graph = from_dict(data, validate=False)
        assert "o" in graph
