"""Tests for the exact-arithmetic LinearProgram container."""

from fractions import Fraction

import pytest

from repro.lp.model import LESS, GREATER, EQUAL, LinearProgram, LPError, as_fraction


class TestAsFraction:
    def test_decimal_floats_become_the_written_decimal(self):
        # 0.1 is not representable in binary; the conversion must recover
        # the decimal the programmer wrote, not the 55-bit neighbour.
        assert as_fraction(0.1) == Fraction(1, 10)
        assert as_fraction(2.3) == Fraction(23, 10)

    def test_ints_and_fractions_pass_through(self):
        assert as_fraction(7) == Fraction(7)
        assert as_fraction(Fraction(3, 4)) == Fraction(3, 4)

    def test_non_finite_rejected(self):
        with pytest.raises(LPError):
            as_fraction(float("inf"))
        with pytest.raises(LPError):
            as_fraction(float("nan"))

    def test_booleans_rejected(self):
        with pytest.raises(LPError):
            as_fraction(True)


class TestLinearProgram:
    def test_variable_indices_are_sequential(self):
        lp = LinearProgram()
        assert lp.add_variable("x") == 0
        assert lp.add_binary("b") == 1
        assert lp.num_variables == 2
        assert lp.variables[1].integer and lp.variables[1].upper == 1

    def test_empty_bound_range_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", lower=2, upper=1)

    def test_zero_coefficients_are_dropped(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        row = lp.add_constraint({x: 1, y: 0}, LESS, 4)
        assert lp.constraints[row].coefficients == ((x, Fraction(1)),)

    def test_satisfied_constant_row_is_skipped(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert lp.add_constraint({x: 0}, LESS, 1) is None
        assert lp.num_constraints == 0

    def test_violated_constant_row_raises_at_build_time(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({x: 0}, GREATER, 1)

    def test_unknown_variable_and_sense_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({5: 1}, LESS, 1)
        with pytest.raises(LPError):
            lp.add_constraint({0: 1}, "<", 1)
        with pytest.raises(LPError):
            lp.set_objective({5: 1})

    def test_evaluate_objective_is_exact(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.set_objective({x: 0.1, y: 3})
        values = [Fraction(1), Fraction(1, 3)]
        assert lp.evaluate_objective(values) == Fraction(11, 10)

    def test_integer_variables_listing(self):
        lp = LinearProgram()
        lp.add_variable("x")
        b = lp.add_binary("b")
        assert lp.integer_variables() == [b]

    def test_equal_sense_accepted(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert lp.add_constraint({x: 2}, EQUAL, 1) == 0
