"""Force-directed scheduling (Paulin & Knight) — time-constrained baseline.

Force-directed scheduling (FDS) balances the expected number of
simultaneously active operations of each type across the latency budget.
It is the classical *time-constrained* scheduler used as step one of the
two-step power-management baselines the paper contrasts itself with
(first meet the deadline, then fix the power profile).

The implementation follows the textbook formulation:

1. compute ASAP/ALAP windows under the latency bound,
2. build per-type *distribution graphs*: for each cycle, the sum over
   operations of ``1 / window width`` restricted to cycles the operation
   could occupy,
3. repeatedly pick the (operation, cycle) assignment with the lowest
   *force* (self force + predecessor/successor forces) and fix it,
   updating windows and distributions.

Only the forces needed for correctness of the baseline are modelled;
the implementation favours clarity over the last bit of speed since the
benchmark graphs have tens of operations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.analysis import alap_times, asap_times
from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from .schedule import Schedule


def _distribution(
    cdfg: CDFG,
    windows: Mapping[str, Tuple[int, int]],
    delays: Mapping[str, int],
    latency: int,
) -> Dict[OpType, List[float]]:
    """Per-type expected occupancy per cycle (the FDS distribution graph)."""
    distribution: Dict[OpType, List[float]] = {}
    for name, (earliest, latest) in windows.items():
        op = cdfg.operation(name)
        if op.is_virtual:
            continue
        width = latest - earliest + 1
        if width <= 0:
            continue
        probability = 1.0 / width
        series = distribution.setdefault(op.optype, [0.0] * latency)
        for start in range(earliest, latest + 1):
            for cycle in range(start, min(start + delays[name], latency)):
                series[cycle] += probability
    return distribution


def _self_force(
    op_type: OpType,
    delays_for_op: int,
    window: Tuple[int, int],
    candidate_start: int,
    distribution: Mapping[OpType, List[float]],
    latency: int,
) -> float:
    """Force of fixing one operation at ``candidate_start``."""
    earliest, latest = window
    width = latest - earliest + 1
    series = distribution.get(op_type, [0.0] * latency)
    average = 0.0
    for start in range(earliest, latest + 1):
        for cycle in range(start, min(start + delays_for_op, latency)):
            average += series[cycle]
    average /= max(width, 1)
    chosen = 0.0
    for cycle in range(candidate_start, min(candidate_start + delays_for_op, latency)):
        chosen += series[cycle]
    return chosen - average


def force_directed_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    latency: int,
    label: str = "force-directed",
) -> Schedule:
    """Time-constrained schedule balancing per-type concurrency.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power (recorded on the result).
        latency: Latency bound in cycles.
        label: Label stored on the resulting schedule.

    Returns:
        A precedence-legal schedule meeting the latency bound.
    """
    delays = dict(delays)
    fixed: Dict[str, int] = {}
    unfixed = [n for n in cdfg.operation_names() if not cdfg.operation(n).is_virtual]

    while unfixed:
        asap = asap_times(cdfg, delays) if not fixed else _asap_with_fixed(cdfg, delays, fixed)
        alap = _alap_with_fixed(cdfg, delays, fixed, latency)
        windows = {
            n: (max(asap[n], 0), max(alap[n], asap[n]))
            for n in cdfg.operation_names()
        }
        distribution = _distribution(cdfg, windows, delays, latency)

        best: Optional[Tuple[float, str, int]] = None
        for name in unfixed:
            earliest, latest = windows[name]
            op_type = cdfg.operation(name).optype
            for candidate in range(earliest, latest + 1):
                force = _self_force(
                    op_type, delays[name], windows[name], candidate, distribution, latency
                )
                key = (force, name, candidate)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, chosen_name, chosen_start = best
        fixed[chosen_name] = chosen_start
        unfixed.remove(chosen_name)

    # Virtual operations at their data-ready time.
    start: Dict[str, int] = dict(fixed)
    for name in cdfg.topological_order():
        if name in start:
            continue
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start.get(pred, 0) + delays[pred])
        start[name] = ready

    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=delays,
        powers=dict(powers),
        label=label,
        metadata={"latency_bound": latency},
    )


def _asap_with_fixed(
    cdfg: CDFG, delays: Mapping[str, int], fixed: Mapping[str, int]
) -> Dict[str, int]:
    start: Dict[str, int] = {}
    for name in cdfg.topological_order():
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start[pred] + delays[pred])
        start[name] = fixed.get(name, ready)
    return start


def _alap_with_fixed(
    cdfg: CDFG, delays: Mapping[str, int], fixed: Mapping[str, int], latency: int
) -> Dict[str, int]:
    start: Dict[str, int] = {}
    for name in cdfg.reverse_topological_order():
        latest_finish = latency
        for succ in cdfg.successors(name):
            latest_finish = min(latest_finish, start[succ])
        start[name] = fixed.get(name, latest_finish - delays[name])
    return start
