"""Unit tests for the two-step schedule-then-reorder baseline."""

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.pasap import pasap_schedule
from repro.scheduling.two_step import two_step_schedule


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestTwoStep:
    def test_schedule_is_always_legal(self, hal, library):
        delays, powers = maps_for(hal, library)
        result = two_step_schedule(
            hal, delays, powers, PowerConstraint(9.0), TimeConstraint(20)
        )
        result.schedule.verify(time=TimeConstraint(20))

    def test_met_power_flag_is_truthful(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        budget = PowerConstraint(14.0)
        result = two_step_schedule(cosine, delays, powers, budget, TimeConstraint(24))
        assert result.met_power == result.schedule.respects_power(budget)

    def test_loose_budget_needs_no_moves(self, hal, library):
        delays, powers = maps_for(hal, library)
        result = two_step_schedule(
            hal, delays, powers, PowerConstraint(1000.0), TimeConstraint(20)
        )
        assert result.met_power
        assert result.moves == 0

    def test_repair_reduces_peak(self, wide, library):
        delays, powers = maps_for(wide, library)
        latency = critical_path_length(wide, delays) + 16
        budget = PowerConstraint(6.0)
        result = two_step_schedule(wide, delays, powers, budget, TimeConstraint(latency))
        # the repair pass must have moved something and lowered the peak
        assert result.moves > 0

    def test_can_fail_where_pasap_succeeds(self, library, fir):
        """The motivation for the combined approach: two-step may miss budgets
        that the power-aware scheduler meets at the same latency."""
        delays, powers = maps_for(fir, library)
        budget = PowerConstraint(9.0)
        pasap = pasap_schedule(fir, delays, powers, budget)
        latency = TimeConstraint(pasap.makespan)
        assert pasap.respects_power(budget)
        result = two_step_schedule(fir, delays, powers, budget, latency)
        # Not asserted to fail (the greedy repair sometimes succeeds), but the
        # baseline must never beat pasap's latency at the same budget.
        if result.met_power:
            assert result.schedule.makespan >= pasap.makespan - 1
