"""Unit and property tests for the exact reference scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.builder import CDFGBuilder
from repro.library.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.exact import (
    ExactSchedulerError,
    exists_schedule,
    minimum_latency_under_power,
    optimality_gap,
)
from repro.scheduling.pasap import pasap_schedule
from repro.suite.generators import GeneratorConfig, random_cdfg

LIBRARY = default_library()


def maps_for(cdfg):
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


def two_independent_adds():
    b = CDFGBuilder("pair")
    x = b.const("x")
    y = b.const("y")
    b.add("a1", x, y)
    b.add("a2", x, y)
    return b.build()


class TestExactScheduler:
    def test_unbounded_power_gives_critical_path(self, diamond):
        delays, powers = maps_for(diamond)
        from repro.ir.analysis import critical_path_length

        optimum = minimum_latency_under_power(
            diamond, delays, powers, PowerConstraint.unbounded()
        )
        assert optimum == critical_path_length(diamond, delays)

    def test_power_budget_forces_serialization(self):
        cdfg = two_independent_adds()
        delays, powers = maps_for(cdfg)
        # Both adds together draw 5.0; a 3.0 budget forces them into
        # different cycles, doubling the optimal makespan.
        parallel = minimum_latency_under_power(cdfg, delays, powers, PowerConstraint(10.0))
        serial = minimum_latency_under_power(cdfg, delays, powers, PowerConstraint(3.0))
        assert parallel == 1
        assert serial == 2

    def test_exists_schedule(self):
        cdfg = two_independent_adds()
        delays, powers = maps_for(cdfg)
        assert exists_schedule(cdfg, delays, powers, PowerConstraint(3.0), latency=2)
        assert not exists_schedule(cdfg, delays, powers, PowerConstraint(3.0), latency=1)

    def test_size_guard(self, cosine):
        delays, powers = maps_for(cosine)
        with pytest.raises(ExactSchedulerError):
            minimum_latency_under_power(cosine, delays, powers, PowerConstraint(30.0))

    def test_gap_zero_on_diamond(self, diamond):
        delays, powers = maps_for(diamond)
        budget = PowerConstraint(20.0)
        heuristic = pasap_schedule(diamond, delays, powers, budget)
        assert optimality_gap(heuristic, budget) == pytest.approx(0.0)


@st.composite
def small_case(draw):
    config = GeneratorConfig(
        operations=draw(st.integers(min_value=2, max_value=7)),
        inputs=draw(st.integers(min_value=1, max_value=2)),
        levels=draw(st.integers(min_value=1, max_value=3)),
        mul_fraction=draw(st.floats(min_value=0.0, max_value=0.4)),
        sub_fraction=0.2,
        outputs=0,
        seed=draw(st.integers(min_value=0, max_value=2000)),
    )
    cdfg = random_cdfg(config)
    budget = PowerConstraint(draw(st.sampled_from([8.5, 10.0, 15.0, 30.0])))
    return cdfg, budget


@given(small_case())
@settings(max_examples=30, deadline=None)
def test_pasap_never_beats_the_exact_optimum(case):
    """pasap is feasible, therefore its makespan is >= the exact optimum; the
    exact optimum under a budget the heuristic satisfies always exists."""
    cdfg, budget = case
    delays, powers = maps_for(cdfg)
    heuristic = pasap_schedule(cdfg, delays, powers, budget)
    optimum = minimum_latency_under_power(
        cdfg, delays, powers, budget, horizon=heuristic.makespan
    )
    assert optimum is not None
    assert optimum <= heuristic.makespan
