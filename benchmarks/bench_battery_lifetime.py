"""Ablation C — battery lifetime of constrained vs. unconstrained designs.

The paper motivates power-constrained synthesis with battery lifetime:
flattening the current profile extends the usable life of the battery,
with 20–30 % gains reported in the literature it cites for low-quality
batteries.  This benchmark drives the synthesized designs through the
analytical battery model (DESIGN.md documents the substitution for the
original works' measured battery data) and reports the lifetime extension
of the power-constrained design over the unconstrained one, for both a
low-quality and a high-quality battery.
"""

from __future__ import annotations

from repro.api import SynthesisTask, run_task
from repro.power.battery import high_quality_battery, low_quality_battery
from repro.power.lifetime import compare_lifetimes
from repro.reporting.table import render_table
from repro.suite.registry import build_benchmark
from repro.synthesis.engine import synthesize


def naive_design(cdfg, library):
    """The unconstrained 'undesired' design: ASAP, one FU per operation."""
    task = SynthesisTask.naive(cdfg.name, library=library.name)
    return run_task(task, cdfg=cdfg, library=library).result

CASES = [
    ("hal", 17, 11.0),
    ("cosine", 15, 26.0),
    ("elliptic", 22, 17.0),
]

CAPACITY = 2_000_000.0


def run_lifetime_study(library):
    rows = []
    for name, latency, budget in CASES:
        cdfg = build_benchmark(name)
        unconstrained = naive_design(cdfg, library)
        constrained = synthesize(cdfg, library, latency, budget)
        for battery_name, battery in (
            ("low quality", low_quality_battery(CAPACITY)),
            ("high quality", high_quality_battery(CAPACITY)),
        ):
            comparison = compare_lifetimes(
                battery, unconstrained.schedule, constrained.schedule
            )
            rows.append(
                [
                    name,
                    battery_name,
                    comparison["reference_peak"],
                    comparison["improved_peak"],
                    comparison["reference_iterations"],
                    comparison["improved_iterations"],
                    100.0 * comparison["extension"],
                ]
            )
    return rows


def test_battery_lifetime_ablation(benchmark, library):
    rows = benchmark(run_lifetime_study, library)

    table = render_table(
        [
            "benchmark",
            "battery",
            "peak (unconstr.)",
            "peak (constr.)",
            "iters (unconstr.)",
            "iters (constr.)",
            "extension %",
        ],
        rows,
        title="Ablation C: battery lifetime, unconstrained vs. power-constrained",
    )
    print()
    print(table)

    by_benchmark = {}
    for name, battery_name, _, _, _, _, extension in rows:
        by_benchmark.setdefault(name, {})[battery_name] = extension

    for name, extensions in by_benchmark.items():
        # Flattening must never shorten the lifetime, and must help the
        # low-quality battery at least as much as the high-quality one
        # (the paper's 20-30 % claim concerns low-quality batteries).
        assert extensions["low quality"] >= 0.0
        assert extensions["high quality"] >= 0.0
        assert extensions["low quality"] >= extensions["high quality"] - 1e-9

    assert any(ext["low quality"] > 5.0 for ext in by_benchmark.values()), (
        "expected a noticeable lifetime extension on at least one benchmark"
    )
