"""Operation model for the control/data-flow graph (CDFG).

The scheduling and binding algorithms in this package manipulate
*operations*: typed nodes of a data-flow graph.  An operation carries an
:class:`OpType` (addition, multiplication, comparison, I/O, ...) which
determines the set of functional-unit modules from the library that can
implement it, and therefore its possible delay, power and area.

The operation set mirrors what the DATE 2003 paper's functional-unit
library (Table 1) supports: ``+``, ``-``, ``>``, ``*`` plus explicit input
and output operations.  A few additional types (``<``, shifts, constants,
no-ops for the virtual source/sink) are provided so the standard HLS
benchmark graphs can be expressed naturally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Mapping


class OpType(enum.Enum):
    """Kinds of operations that may appear in a CDFG.

    The enum *value* is the conventional textual mnemonic used in data-flow
    graph dumps and in the functional-unit library.
    """

    ADD = "+"
    SUB = "-"
    MUL = "*"
    GT = ">"
    LT = "<"
    SHL = "<<"
    SHR = ">>"
    INPUT = "in"
    OUTPUT = "out"
    CONST = "const"
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_io(self) -> bool:
        """True for input/output operations."""
        return self in (OpType.INPUT, OpType.OUTPUT)

    @property
    def is_arithmetic(self) -> bool:
        """True for operations executed on arithmetic functional units."""
        return self in (
            OpType.ADD,
            OpType.SUB,
            OpType.MUL,
            OpType.GT,
            OpType.LT,
            OpType.SHL,
            OpType.SHR,
        )

    @property
    def is_virtual(self) -> bool:
        """True for pseudo operations (constants and no-ops).

        Virtual operations take no functional unit, zero cycles and zero
        power.  They exist so graphs can carry constants and structural
        source/sink nodes without perturbing scheduling.
        """
        return self in (OpType.CONST, OpType.NOP)

    @classmethod
    def from_mnemonic(cls, text: str) -> "OpType":
        """Parse an operation type from its textual mnemonic.

        Accepts both the enum value (``"+"``) and the enum name
        (``"ADD"``, case-insensitive).

        Raises:
            ValueError: if the mnemonic is unknown.
        """
        for member in cls:
            if member.value == text:
                return member
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown operation mnemonic: {text!r}") from None


#: Operation types that commutative-input optimizations may reorder.
COMMUTATIVE_TYPES = frozenset({OpType.ADD, OpType.MUL})


@dataclass(frozen=True)
class Operation:
    """A single operation (node) of a CDFG.

    Attributes:
        name: Unique identifier within its CDFG.
        optype: The operation kind.
        label: Optional human-readable label (defaults to ``name``).
        attrs: Free-form metadata (bit-width, source expression, ...).
    """

    name: str
    optype: OpType
    label: str = ""
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be a non-empty string")
        if not isinstance(self.optype, OpType):
            raise TypeError("optype must be an OpType")
        if not self.label:
            object.__setattr__(self, "label", self.name)

    @property
    def is_io(self) -> bool:
        return self.optype.is_io

    @property
    def is_arithmetic(self) -> bool:
        return self.optype.is_arithmetic

    @property
    def is_virtual(self) -> bool:
        return self.optype.is_virtual

    def with_attrs(self, **attrs: Any) -> "Operation":
        """Return a copy of this operation with additional attributes."""
        merged = dict(self.attrs)
        merged.update(attrs)
        return replace(self, attrs=merged)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}:{self.optype.value}"
