"""The HTTP surface of the synthesis service (stdlib-only).

A thin, dependency-free JSON-over-HTTP layer on top of
:class:`~repro.serve.service.SynthesisService`, built on
``http.server.ThreadingHTTPServer`` — one OS thread per connection for
I/O, while the actual synthesis concurrency stays in the service's own
worker pool.

Endpoints:

* ``POST /tasks`` — submit work.  The body is a single task spec object,
  a JSON list of specs, or a full batch file (``{"tasks": [...],
  "sweeps": [...]}``, the same format ``repro batch`` reads).  Returns
  ``202`` with one ``{id, key, state}`` entry per accepted job.
* ``GET /jobs/<id>`` — a job's full status/progress record.
* ``GET /results/<key>`` — the certified result record stored under a
  content address (the ``key`` echoed at submission); ``404`` until the
  synthesis finishes.
* ``GET /jobs`` — every job, in submission order (small-fleet admin).
* ``GET /healthz`` — liveness: worker status, queue depth, uptime.
* ``GET /stats`` — queue/cache/strategy counters plus the same
  :class:`~repro.api.batch.BatchSummary` numbers ``repro batch`` prints.

Start one with :func:`start_server` (in-process, ephemeral port — what
the tests and :mod:`examples.serve_quickstart` do) or via the ``repro
serve`` CLI command.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..api.task import TaskError, SynthesisTask, tasks_from_json
from ..registries import UnknownStrategyError
from .service import SynthesisService

#: Largest accepted request body (a batch file of inline CDFGs is big;
#: an unbounded read is a denial-of-service hazard).
MAX_BODY_BYTES = 16 * 1024 * 1024


def parse_submission(text: str) -> List[SynthesisTask]:
    """Parse a ``POST /tasks`` body into tasks.

    Accepts the single-spec object form (``{"graph": "hal", ...}``) as
    sugar on top of everything :func:`~repro.api.task.tasks_from_json`
    reads (a list of specs, or ``{"tasks": [...], "sweeps": [...]}``).
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise TaskError(f"request body is not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and "graph" in payload:
        return [SynthesisTask.from_dict(payload)]
    return tasks_from_json(text)


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection; the service is on ``self.server.service``."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        # rejected requests may carry an unread body; on a keep-alive
        # (HTTP/1.1) connection those bytes would be parsed as the *next*
        # request — classic request smuggling through a multiplexing
        # proxy.  Closing the connection on every error discards them.
        self.close_connection = True
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[str]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length).decode("utf-8")

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path.rstrip("/") != "/tasks":
            self._error(404, f"unknown endpoint {self.path!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            tasks = parse_submission(body)
        except (TaskError, UnknownStrategyError) as exc:
            self._error(400, f"bad task submission: {exc}")
            return
        try:
            jobs = self.service.submit_many(tasks)
        except Exception as exc:  # closed queue during shutdown
            self._error(503, str(exc))
            return
        self._send_json(
            202,
            {
                "jobs": [
                    {"id": job.id, "key": job.key, "state": job.state}
                    for job in jobs
                ]
            },
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        elif path == "/jobs":
            self._send_json(
                200, {"jobs": [job.to_dict() for job in self.service.queue.jobs()]}
            )
        elif path.startswith("/jobs/"):
            job = self.service.job(path[len("/jobs/"):])
            if job is None:
                self._error(404, f"unknown job {path[len('/jobs/'):]!r}")
            else:
                self._send_json(200, job.to_dict())
        elif path.startswith("/results/"):
            key = path[len("/results/"):]
            payload = self.service.result(key)
            if payload is None:
                self._error(404, f"no result stored under key {key!r}")
            else:
                self._send_json(200, payload)
        else:
            self._error(404, f"unknown endpoint {self.path!r}")


class SynthesisServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`SynthesisService`.

    Connection threads are daemonic so a hung client never blocks
    process exit; synthesis work itself runs in the service's worker
    pool, not in connection threads.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SynthesisService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        """Base URL of the bound socket (the ephemeral port resolved)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServerHandle:
    """A started server + its thread; what :func:`start_server` returns.

    Use as a context manager::

        with start_server(workers=2) as handle:
            client = Client(handle.url)
            ...

    ``close()`` shuts the HTTP listener down first (no new work can
    arrive), then the service (``drain=True`` waits for accepted jobs).
    """

    def __init__(self, server: SynthesisServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def service(self) -> SynthesisService:
        return self.server.service

    def close(self, *, drain: bool = True) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.shutdown(drain=drain)
        self.thread.join(5.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    service: Optional[SynthesisService] = None,
    state_dir=None,
    workers: int = 2,
    verbose: bool = False,
) -> ServerHandle:
    """Boot a synthesis server in-process and return its handle.

    ``port=0`` binds an ephemeral port — read the resolved address from
    ``handle.url``.  Builds (and starts) a default
    :class:`SynthesisService` unless one is passed in.
    """
    if service is None:
        service = SynthesisService(state_dir, workers=workers)
    service.start()
    server = SynthesisServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return ServerHandle(server, thread)
