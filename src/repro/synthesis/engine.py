"""The combined power-constrained synthesis engine (the paper's contribution).

The engine solves scheduling, allocation and binding *simultaneously*
under a latency bound ``T`` and a per-cycle power budget ``P``, minimizing
datapath area.  It follows the structure described in Section 2 of the
paper:

1. Choose an initial (tentative) module per operation and verify that a
   power-feasible pasap/palap schedule exists under ``(T, P)``; the
   tentative selection is adapted (critical-path operations upgraded to
   faster modules) until the latency bound is reachable.
2. Greedy partial clique partitioning: repeatedly evaluate the candidate
   decisions offered by the power-aware time-extended compatibility
   relation — bind one ready operation either onto an existing compatible
   FU instance (sharing it) or onto a new instance of some module — pick
   the *best* decision (least area increase, then least interconnect,
   then earliest start), commit it (schedule + allocate + bind), and
   recompute the pasap/palap windows of the remaining operations.
3. If a committed decision makes the remaining schedule infeasible, apply
   the paper's **backtrack-and-lock** rule: undo the decision, lock every
   unbound operation to the last valid pasap start time, and finish the
   binding with those start times fixed.

The result is a :class:`~repro.synthesis.result.SynthesisResult` whose
schedule respects precedence, ``T`` and ``P`` and whose datapath has no
FU-sharing conflicts (verified by the test-suite on every benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..binding.intervals import Interval
from ..binding.interconnect import sharing_penalty
from ..binding.merge import BindingDecision
from ..datapath.rtl import Datapath
from ..ir.analysis import critical_path, critical_path_length
from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.module import FUModule
from ..library.selection import MinPowerSelection, Selection
from ..scheduling.constraints import (
    PowerConstraint,
    SynthesisConstraints,
    TimeConstraint,
)
from ..scheduling.mobility import WindowCache, WindowSet, compute_windows
from ..scheduling.pasap import PowerInfeasibleError
from ..scheduling.schedule import Schedule, add_to_profile, profile_allows
from .result import (
    PowerInfeasibleSynthesisError,
    SynthesisResult,
    TimingInfeasibleError,
)


@dataclass
class EngineOptions:
    """Tunable knobs of the synthesis engine.

    Attributes:
        trace: Record a human-readable line per committed decision.
        allow_module_upgrade: Let individual decisions pick a module other
            than the tentative one (e.g. a parallel multiplier for one
            operation while the rest stay serial).
        interconnect_weight: Weight of the interconnect penalty when
            comparing decisions of equal area increase (kept at 1 — the
            penalty is already secondary in the lexicographic key).
        delay_area_weight: Area-unit penalty per cycle an operation is
            started later than its data-ready time.  Sharing a unit by
            delaying an operation shrinks the slack of everything
            downstream, which often costs area later; pricing the delay
            keeps the greedy from trading a 16-area input port against
            three extra multipliers.  Set to 0 to recover the purely
            area-lexicographic greedy.
        exact_max_operations: Size cap for the exhaustive ``exact``
            scheduler.  Raising it trades exponential runtime for
            coverage; the differential harness reads this instead of
            assuming the module default.
        ilp_memory_model: Register-pressure linearization the ``ilp``
            scheduler uses when a task carries a ``register_budget``
            (``"optimistic"`` or ``"pessimistic"``).
        ilp_node_limit: Branch-and-bound node budget for the ``ilp``
            scheduler.  ``None`` means unlimited; when the budget is
            exhausted the scheduler raises the *inconclusive*
            ``ILPLimitError``, never a fake infeasibility verdict.
    """

    trace: bool = True
    allow_module_upgrade: bool = True
    interconnect_weight: int = 1
    delay_area_weight: float = 4.0
    exact_max_operations: int = 12
    ilp_memory_model: str = "optimistic"
    ilp_node_limit: Optional[int] = 20_000


@dataclass
class _EngineState:
    """Mutable synthesis state threaded through the greedy loop."""

    locked: Dict[str, int] = field(default_factory=dict)
    delays: Dict[str, int] = field(default_factory=dict)
    powers: Dict[str, float] = field(default_factory=dict)
    bound_module: Dict[str, FUModule] = field(default_factory=dict)
    lock_all_mode: bool = False
    # Carries the locked power profiles between window recomputations so
    # each call only commits the newly locked operation (see WindowCache).
    window_cache: WindowCache = field(default_factory=WindowCache)


class PowerConstrainedSynthesizer:
    """Combined scheduling/allocation/binding under (T, P) constraints."""

    def __init__(
        self,
        library: FULibrary,
        constraints: SynthesisConstraints,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.library = library
        self.constraints = constraints
        self.options = options or EngineOptions()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def synthesize(self, cdfg: CDFG) -> SynthesisResult:
        """Run the full combined synthesis on ``cdfg``.

        Raises:
            TimingInfeasibleError: no module selection meets the latency
                bound.
            PowerInfeasibleSynthesisError: the power budget is too tight
                for the latency bound (even after stretching).
        """
        trace: List[str] = []
        selection = self._initial_selection(cdfg)
        state = _EngineState(
            delays=self._delays_from_selection(cdfg, selection),
            powers=self._powers_from_selection(cdfg, selection),
        )

        windows = self._windows_or_fail(cdfg, state)
        last_valid_pasap = dict(windows.pasap_starts)

        datapath = Datapath(cdfg=cdfg, schedule=None)  # schedule attached later
        profile: List[float] = []
        backtracks = 0

        unbound = set(cdfg.schedulable_operations())
        # Virtual operations are placed at data-ready time at the very end.

        while unbound:
            ready = sorted(
                op
                for op in unbound
                if all(
                    cdfg.operation(pred).is_virtual or pred in state.locked
                    for pred in cdfg.predecessors(op)
                )
            )
            if not ready:
                raise PowerInfeasibleSynthesisError(
                    "no ready operations; dependence deadlock in synthesis loop"
                )

            decision = self._best_decision(
                cdfg, state, datapath, profile, windows, ready, sorted(unbound)
            )
            if decision is None:
                raise PowerInfeasibleSynthesisError(
                    f"no feasible binding decision for ready operations {ready} "
                    f"under T={self.constraints.time.latency}, "
                    f"P={self.constraints.power.max_power:g}"
                )

            # Tentatively commit and check that the remaining operations
            # are still schedulable; otherwise backtrack-and-lock.
            snapshot = self._commit(cdfg, state, datapath, profile, decision)
            unbound.discard(decision.op_name)

            if not state.lock_all_mode and unbound:
                try:
                    windows = self._windows_or_fail(cdfg, state)
                    last_valid_pasap = dict(windows.pasap_starts)
                except PowerInfeasibleSynthesisError:
                    # Paper's rule: backtrack one step, lock every
                    # unscheduled operation to the last valid pasap start.
                    self._rollback(state, datapath, profile, decision, snapshot)
                    unbound.add(decision.op_name)
                    backtracks += 1
                    for op in unbound:
                        state.locked[op] = last_valid_pasap[op]
                    state.lock_all_mode = True
                    if self.options.trace:
                        trace.append(
                            f"backtrack: undo {decision.op_name}; lock {len(unbound)} "
                            "operations to the last valid pasap schedule"
                        )
                    continue

            if self.options.trace:
                trace.append(decision.describe())

        schedule = self._final_schedule(cdfg, state)
        datapath.schedule = schedule
        datapath.finalize()
        result = SynthesisResult(
            datapath=datapath,
            schedule=schedule,
            constraints=self.constraints,
            area=datapath.area(),
            trace=trace,
            backtracks=backtracks,
            metadata={"library": self.library.name},
        )
        result.verify()
        return result

    # ------------------------------------------------------------------ #
    # Initial selection
    # ------------------------------------------------------------------ #
    def _initial_selection(self, cdfg: CDFG) -> Selection:
        """Min-power selection, upgraded along the critical path to meet T.

        Raises:
            TimingInfeasibleError: when even the all-fastest selection
                misses the latency bound.
        """
        latency = self.constraints.time.latency
        selection = MinPowerSelection().select(cdfg, self.library)
        delays = self._delays_from_selection(cdfg, selection)

        guard = len(cdfg) * len(self.library.modules()) + 8
        while critical_path_length(cdfg, delays) > latency and guard > 0:
            guard -= 1
            path = critical_path(cdfg, delays)
            upgraded = False
            # Upgrade the critical-path operation with the best
            # cycles-saved-per-area ratio.
            best: Optional[Tuple[float, str, FUModule]] = None
            for op_name in path:
                op = cdfg.operation(op_name)
                if op.is_virtual:
                    continue
                current = selection[op_name]
                for module in self.library.candidates(op.optype):
                    saved = current.latency - module.latency
                    if saved <= 0:
                        continue
                    cost = max(module.area - current.area, 1e-6)
                    key = (-saved / cost, op_name, module.name)
                    if best is None or key < (best[0], best[1], best[2].name):
                        best = (-saved / cost, op_name, module)
            if best is not None:
                _, op_name, module = best
                selection[op_name] = module
                delays[op_name] = module.latency
                upgraded = True
            if not upgraded:
                break

        if critical_path_length(cdfg, delays) > latency:
            raise TimingInfeasibleError(
                f"latency bound {latency} is below the best achievable critical "
                f"path {critical_path_length(cdfg, delays)} for {cdfg.name!r}"
            )
        return selection

    # ------------------------------------------------------------------ #
    # Windows / feasibility
    # ------------------------------------------------------------------ #
    def _windows_or_fail(self, cdfg: CDFG, state: _EngineState) -> WindowSet:
        try:
            windows = compute_windows(
                cdfg,
                state.delays,
                state.powers,
                self.constraints.power,
                self.constraints.time,
                locked=state.locked,
                cache=state.window_cache,
            )
        except PowerInfeasibleError as exc:
            raise PowerInfeasibleSynthesisError(str(exc)) from exc
        if not windows.all_feasible:
            raise PowerInfeasibleSynthesisError(
                f"infeasible windows for operations {windows.infeasible_operations()}"
            )
        horizon = max(
            windows.pasap_starts[n] + state.delays[n] for n in cdfg.operation_names()
        )
        if horizon > self.constraints.time.latency:
            raise PowerInfeasibleSynthesisError(
                f"power-feasible schedule needs {horizon} cycles, exceeding "
                f"the latency bound {self.constraints.time.latency}"
            )
        return windows

    # ------------------------------------------------------------------ #
    # Decision generation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_virtual(cdfg: CDFG, name: str) -> bool:
        return cdfg.operation(name).is_virtual

    def _data_ready(self, cdfg: CDFG, state: _EngineState, op_name: str) -> int:
        ready = 0
        for pred in cdfg.predecessors(op_name):
            if cdfg.operation(pred).is_virtual:
                continue
            ready = max(ready, state.locked[pred] + state.delays[pred])
        return ready

    def _candidate_modules(self, cdfg: CDFG, op_name: str, state: _EngineState) -> List[FUModule]:
        optype = cdfg.operation(op_name).optype
        candidates = self.library.candidates(optype)
        if not self.options.allow_module_upgrade:
            tentative_power = state.powers[op_name]
            tentative_delay = state.delays[op_name]
            candidates = [
                m
                for m in candidates
                if m.power <= tentative_power + 1e-9 and m.latency <= tentative_delay
            ] or candidates
        if state.lock_all_mode:
            # With start times locked to the last valid pasap schedule, a
            # decision must not lengthen the operation (successor start
            # times assume the tentative delay) nor raise its power (the
            # pasap profile was only proven feasible for the tentative
            # powers).
            candidates = [
                m
                for m in candidates
                if m.latency <= state.delays[op_name]
                and m.power <= state.powers[op_name] + 1e-9
            ]
        return candidates

    def _earliest_feasible_start(
        self,
        op_name: str,
        module: FUModule,
        data_ready: int,
        latest: int,
        profile: List[float],
        busy: List[Interval],
    ) -> Optional[int]:
        """Earliest start in [data_ready, latest] that fits power and the instance."""
        power = self.constraints.power
        for start in range(data_ready, latest + 1):
            if start + module.latency > self.constraints.time.latency:
                return None
            candidate = Interval(start, start + module.latency)
            if any(candidate.overlaps(existing) for existing in busy):
                continue
            if not profile_allows(profile, start, module.latency, module.power, power):
                continue
            return start
        return None

    def _estimate_capacity(
        self,
        cdfg: CDFG,
        state: _EngineState,
        windows: WindowSet,
        module: FUModule,
        op_name: str,
        start: int,
        unbound: List[str],
        shareable_order: Optional[Dict[str, List[str]]] = None,
    ) -> int:
        """Estimate how many unbound operations a new instance could host.

        Greedily packs the remaining unbound operations that the module
        supports into non-overlapping slots after ``op_name``'s execution,
        respecting each operation's current pasap/palap window and the
        latency bound.  The estimate amortizes the area of a big,
        shareable module (e.g. the parallel multiplier) over the
        operations it is likely to serve, which is what lets the engine
        trade operator implementations as the paper describes.

        ``shareable_order`` memoizes the sorted shareable-operation list
        per module name across the candidates of one decision round (the
        list only depends on the module and the current windows, not on
        ``op_name``, which is skipped during packing instead).
        """
        latency_bound = self.constraints.time.latency
        busy_end = start + module.latency
        count = 1
        others = None if shareable_order is None else shareable_order.get(module.name)
        if others is None:
            others = [
                v
                for v in unbound
                if module.supports(cdfg.operation(v).optype) and v in windows
            ]
            others.sort(key=lambda v: (windows[v].latest, windows[v].earliest, v))
            if shareable_order is not None:
                shareable_order[module.name] = others
        for other in others:
            if other == op_name:
                continue
            earliest = max(windows[other].earliest, busy_end)
            if earliest > windows[other].latest:
                continue
            if earliest + module.latency > latency_bound:
                continue
            count += 1
            busy_end = earliest + module.latency
        return count

    def _best_decision(
        self,
        cdfg: CDFG,
        state: _EngineState,
        datapath: Datapath,
        profile: List[float],
        windows: WindowSet,
        ready: List[str],
        unbound: List[str],
    ) -> Optional[BindingDecision]:
        best: Optional[BindingDecision] = None
        # Busy intervals and shareable-operation orderings do not depend
        # on which ready operation is being evaluated; build them once
        # per decision round instead of once per candidate.
        busy_by_instance = {
            instance.name: [
                Interval(state.locked[o], state.locked[o] + instance.module.latency)
                for o in instance.bound_ops
            ]
            for instance in datapath.instances.values()
        }
        shareable_order: Dict[str, List[str]] = {}
        for op_name in ready:
            data_ready = self._data_ready(cdfg, state, op_name)
            if state.lock_all_mode:
                window_latest = state.locked[op_name]
                data_ready = state.locked[op_name]
            else:
                window_latest = max(windows[op_name].latest, data_ready)

            candidates = self._candidate_modules(cdfg, op_name, state)
            for module in candidates:
                # (a) share an existing instance of this module
                for instance in datapath.instances.values():
                    if instance.module.name != module.name:
                        continue
                    busy = busy_by_instance[instance.name]
                    start = self._earliest_feasible_start(
                        op_name, module, data_ready, window_latest, profile, busy
                    )
                    if start is None:
                        continue
                    decision = BindingDecision(
                        op_name=op_name,
                        module=module,
                        instance_name=instance.name,
                        start_time=start,
                        area_increase=0.0,
                        interconnect_penalty=self.options.interconnect_weight
                        * sharing_penalty(cdfg, instance.bound_ops, op_name),
                        mobility_loss=start - data_ready,
                        effective_area=self.options.delay_area_weight * (start - data_ready),
                    )
                    if best is None or decision.sort_key() < best.sort_key():
                        best = decision
                # (b) allocate a new instance of this module
                start = self._earliest_feasible_start(
                    op_name, module, data_ready, window_latest, profile, []
                )
                if start is None:
                    continue
                if state.lock_all_mode:
                    effective_area: Optional[float] = None
                else:
                    capacity = self._estimate_capacity(
                        cdfg, state, windows, module, op_name, start, unbound,
                        shareable_order=shareable_order,
                    )
                    effective_area = (
                        module.area / capacity
                        + self.options.delay_area_weight * (start - data_ready)
                    )
                decision = BindingDecision(
                    op_name=op_name,
                    module=module,
                    instance_name=None,
                    start_time=start,
                    area_increase=module.area,
                    interconnect_penalty=0,
                    mobility_loss=start - data_ready,
                    effective_area=effective_area,
                )
                if best is None or decision.sort_key() < best.sort_key():
                    best = decision
        return best

    # ------------------------------------------------------------------ #
    # Commit / rollback
    # ------------------------------------------------------------------ #
    def _commit(
        self,
        cdfg: CDFG,
        state: _EngineState,
        datapath: Datapath,
        profile: List[float],
        decision: BindingDecision,
    ) -> Dict[str, object]:
        """Apply a decision; return a snapshot sufficient to roll it back."""
        snapshot = {
            "delay": state.delays[decision.op_name],
            "power": state.powers[decision.op_name],
            "was_locked": decision.op_name in state.locked,
            "locked_value": state.locked.get(decision.op_name),
            "new_instance": decision.instance_name is None,
        }
        if decision.instance_name is None:
            instance = datapath.add_instance(decision.module)
        else:
            instance = datapath.instances[decision.instance_name]
        datapath.bind(decision.op_name, instance.name)
        snapshot["instance_name"] = instance.name

        state.locked[decision.op_name] = decision.start_time
        state.delays[decision.op_name] = decision.module.latency
        state.powers[decision.op_name] = decision.module.power
        state.bound_module[decision.op_name] = decision.module
        add_to_profile(profile, decision.start_time, decision.module.latency, decision.module.power)
        return snapshot

    def _rollback(
        self,
        state: _EngineState,
        datapath: Datapath,
        profile: List[float],
        decision: BindingDecision,
        snapshot: Dict[str, object],
    ) -> None:
        """Undo a committed decision using its snapshot."""
        instance_name = snapshot["instance_name"]
        instance = datapath.instances[instance_name]
        instance.unbind(decision.op_name)
        del datapath.binding[decision.op_name]
        if snapshot["new_instance"]:
            del datapath.instances[instance_name]

        for cycle in range(decision.start_time, decision.start_time + decision.module.latency):
            profile[cycle] -= decision.module.power

        state.delays[decision.op_name] = snapshot["delay"]  # type: ignore[assignment]
        state.powers[decision.op_name] = snapshot["power"]  # type: ignore[assignment]
        if snapshot["was_locked"]:
            state.locked[decision.op_name] = snapshot["locked_value"]  # type: ignore[assignment]
        else:
            state.locked.pop(decision.op_name, None)
        state.bound_module.pop(decision.op_name, None)

    # ------------------------------------------------------------------ #
    # Final schedule
    # ------------------------------------------------------------------ #
    def _final_schedule(self, cdfg: CDFG, state: _EngineState) -> Schedule:
        start: Dict[str, int] = {}
        for name in cdfg.topological_order():
            if name in state.locked:
                start[name] = state.locked[name]
            else:
                # Virtual operation: data-ready placement.
                ready = 0
                for pred in cdfg.predecessors(name):
                    ready = max(ready, start[pred] + state.delays[pred])
                start[name] = ready
        return Schedule(
            cdfg=cdfg,
            start_times=start,
            delays=dict(state.delays),
            powers=dict(state.powers),
            label=f"synthesis[{cdfg.name}]",
            metadata={
                "latency_bound": self.constraints.time.latency,
                "power_budget": self.constraints.power.max_power,
            },
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _delays_from_selection(cdfg: CDFG, selection: Selection) -> Dict[str, int]:
        delays: Dict[str, int] = {}
        for name in cdfg.operation_names():
            op = cdfg.operation(name)
            delays[name] = 0 if op.is_virtual else selection[name].latency
        return delays

    @staticmethod
    def _powers_from_selection(cdfg: CDFG, selection: Selection) -> Dict[str, float]:
        powers: Dict[str, float] = {}
        for name in cdfg.operation_names():
            op = cdfg.operation(name)
            powers[name] = 0.0 if op.is_virtual else selection[name].power
        return powers


from ..registries import SCHEDULERS as _SCHEDULERS


@_SCHEDULERS.register("engine")
def _engine_strategy(ctx) -> None:
    """The paper's combined scheduling/allocation/binding algorithm.

    Unlike the classical strategies this one binds while scheduling, so it
    sets ``ctx.datapath`` and ``ctx.result`` as well — the pipeline's
    ``bind`` and ``finalize`` passes then have nothing left to do.
    """
    synthesizer = PowerConstrainedSynthesizer(ctx.library, ctx.constraints, ctx.options)
    result = synthesizer.synthesize(ctx.cdfg)
    ctx.schedule = result.schedule
    ctx.datapath = result.datapath
    ctx.result = result


# The engine selects (and adapts) its own modules; the pipeline's select
# pass would be dead work before it.
_engine_strategy.needs_selection = False


def synthesize(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    max_power: Optional[float] = None,
    options: Optional[EngineOptions] = None,
) -> SynthesisResult:
    """One-call convenience wrapper; routes through the task/pipeline API."""
    from ..api.pipeline import Pipeline  # local import: api depends on this module
    from ..api.task import SynthesisTask

    # The graph/library fields are nominal records only: the live objects
    # are handed straight to the pipeline, so nothing is serialized here.
    task = SynthesisTask.of(
        cdfg.name,
        library=library.name,
        latency=latency,
        power_budget=max_power,
        options=options,
    )
    return Pipeline.default().run(task, cdfg=cdfg, library=library)
