"""Unit tests for the baseline synthesis flows."""

import pytest

from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.synthesis.baseline import naive_synthesis, time_constrained_synthesis
from repro.synthesis.engine import synthesize


class TestNaive:
    def test_one_instance_per_operation(self, hal, library):
        result = naive_synthesis(hal, library)
        assert result.datapath.instance_count() == len(hal.schedulable_operations())

    def test_largest_area_of_all_flows(self, hal, library):
        naive = naive_synthesis(hal, library)
        shared = time_constrained_synthesis(hal, library, latency=17)
        assert naive.total_area > shared.total_area

    def test_asap_schedule_attached(self, hal, library):
        result = naive_synthesis(hal, library)
        assert result.schedule.respects_precedence()
        assert result.schedule.makespan == result.latency

    def test_spiky_power_profile(self, cosine, library):
        """The 'undesired' schedule of Figure 1: unconstrained peak power."""
        naive = naive_synthesis(cosine, library)
        constrained = synthesize(cosine, library, latency=15, max_power=30.0)
        assert naive.peak_power > constrained.peak_power

    def test_no_conflicts_by_construction(self, elliptic, library):
        assert naive_synthesis(elliptic, library).datapath.check_no_conflicts() == []


class TestTimeConstrained:
    def test_meets_latency(self, cosine, library):
        result = time_constrained_synthesis(cosine, library, latency=15)
        result.verify()
        assert result.latency <= 15

    def test_constraint_is_unbounded_power(self, cosine, library):
        result = time_constrained_synthesis(cosine, library, latency=15)
        assert result.constraints.power.is_unbounded

    def test_is_the_loose_power_asymptote(self, hal, library):
        """Figure 2's curves flatten to the power-unconstrained area."""
        unconstrained = time_constrained_synthesis(hal, library, latency=17)
        loose = synthesize(hal, library, latency=17, max_power=500.0)
        assert loose.total_area == pytest.approx(unconstrained.total_area)

    def test_shares_functional_units(self, elliptic, library):
        result = time_constrained_synthesis(elliptic, library, latency=30)
        assert result.datapath.instance_count() < len(elliptic.schedulable_operations())
