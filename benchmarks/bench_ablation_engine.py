"""Ablation D — engine design choices (reproduction-added).

The greedy engine adds two scoring refinements on top of the paper's
plain "least area, least interconnect" rule (documented in DESIGN.md §6):

* **delay pricing** — a sharing decision that starts an operation later
  than its data-ready time pays `delay_area_weight` area units per cycle
  of delay, so the greedy does not trade a 16-area input port for three
  extra multipliers downstream;
* **capacity-amortized new-instance cost** — a new module instance is
  scored by `area / estimated future occupancy`, which is what lets the
  engine pick one shareable parallel multiplier over several single-use
  serial ones when the schedule is tight.

This ablation synthesizes the paper's cases with the delay pricing
disabled and reports the area difference.  Like any greedy tie-breaking
rule the refinement is not uniformly better — it buys large savings on the
hal cases and costs a few percent on elliptic — so the assertions check
that it helps in aggregate and never degrades a case by more than 10 %.
"""

from __future__ import annotations

from repro.reporting.table import render_table
from repro.scheduling.constraints import SynthesisConstraints
from repro.suite.registry import build_benchmark
from repro.synthesis.engine import EngineOptions, PowerConstrainedSynthesizer

CASES = [
    ("hal", 17, 12.0),
    ("hal", 10, 30.0),
    ("cosine", 15, 30.0),
    ("elliptic", 22, 25.0),
]


def run_variant(library, delay_weight: float) -> dict:
    areas = {}
    for name, latency, budget in CASES:
        cdfg = build_benchmark(name)
        options = EngineOptions(trace=False, delay_area_weight=delay_weight)
        constraints = SynthesisConstraints.of(latency, budget)
        result = PowerConstrainedSynthesizer(library, constraints, options).synthesize(cdfg)
        result.verify()
        areas[(name, latency)] = result.total_area
    return areas


def run_comparison(library):
    with_pricing = run_variant(library, delay_weight=4.0)
    without_pricing = run_variant(library, delay_weight=0.0)
    rows = []
    for key in with_pricing:
        name, latency = key
        rows.append(
            [
                name,
                latency,
                with_pricing[key],
                without_pricing[key],
                without_pricing[key] - with_pricing[key],
            ]
        )
    return rows


def test_engine_design_choices(benchmark, library):
    rows = benchmark(run_comparison, library)

    print()
    print(
        render_table(
            ["benchmark", "T", "area (delay priced)", "area (unpriced)", "saving"],
            rows,
            title="Ablation D: engine scoring refinements",
        )
    )

    # Per case the refinement may cost a little (greedy noise), but never
    # more than 10 %, and across the paper's cases it must pay for itself.
    for name, latency, priced, unpriced, saving in rows:
        assert priced <= 1.10 * unpriced, f"{name} T={latency}: delay pricing hurt badly"
    assert any(saving > 1e-6 for *_, saving in rows)
    assert sum(saving for *_, saving in rows) > 0.0
