"""Tests for the seeded differential fuzzer."""

import json

import pytest

from repro.explore import ResultCache
from repro.suite.generators import family_names
from repro.verify import FuzzConfig, fuzz_case_tasks, run_fuzz

SMALL = FuzzConfig(families=("chain", "tree"), seeds=2)


class TestConfig:
    def test_defaults_cover_every_family(self):
        assert FuzzConfig().family_names() == family_names()

    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(seeds=0)
        with pytest.raises(ValueError):
            FuzzConfig(max_slack=-1)
        with pytest.raises(ValueError):
            FuzzConfig(unbounded_fraction=0.9, tight_fraction=0.9)

    def test_unknown_family_fails_fast(self):
        with pytest.raises(KeyError):
            list(fuzz_case_tasks(FuzzConfig(families=("bogus",))))


class TestCaseGeneration:
    def test_cases_are_deterministic(self):
        first = list(fuzz_case_tasks(SMALL))
        second = list(fuzz_case_tasks(SMALL))
        assert [c.task.cache_key() for c in first] == [
            c.task.cache_key() for c in second
        ]
        assert [(c.family, c.seed) for c in first] == [
            (c.family, c.seed) for c in second
        ]

    def test_case_count_and_labels(self):
        cases = list(fuzz_case_tasks(SMALL))
        assert len(cases) == 2 * 2
        for case in cases:
            assert case.task.label == f"{case.family}/s{case.seed}"
            assert case.task.latency is not None
            assert case.power_floor > 0

    def test_budget_mix_includes_tight_and_unbounded(self):
        cases = list(fuzz_case_tasks(FuzzConfig(seeds=25)))
        budgets = [case.task.power_budget for case in cases]
        assert any(budget is None for budget in budgets)
        assert any(case.below_floor for case in cases)
        assert any(
            budget is not None and budget >= case.power_floor
            for budget, case in zip(budgets, cases)
        )


class TestRunFuzz:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fuzz(SMALL)

    def test_zero_violations_on_stock_strategies(self, report):
        assert report.ok, report.describe()
        assert report.violations() == []

    def test_counters_are_consistent(self, report):
        assert len(report.cases) == 4
        assert report.runs > 0
        assert 0 < report.feasible_runs <= report.runs
        summary = report.family_summary()
        assert set(summary) == {"chain", "tree"}
        assert sum(row["runs"] for row in summary.values()) == report.runs

    def test_report_serializes_with_schema(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        for key in (
            "config",
            "ok",
            "cases",
            "runs",
            "feasible",
            "cached",
            "disagreements",
            "families",
            "violations",
        ):
            assert key in payload
        assert payload["ok"] is True and payload["violations"] == []
        assert payload["config"]["families"] == ["chain", "tree"]

    def test_below_floor_cases_skip_the_exact_scheduler(self):
        config = FuzzConfig(seeds=25, families=("layered",))
        below = {
            case.seed for case in fuzz_case_tasks(config) if case.below_floor
        }
        assert below, "expected at least one analytically infeasible draw"
        report = run_fuzz(config)
        for family, seed, case_report in report.cases:
            schedulers = {outcome.scheduler for outcome in case_report.outcomes}
            if seed in below:
                assert "exact" not in schedulers
            else:
                assert "exact" in schedulers

    def test_below_floor_with_only_exact_configured_runs_no_pairs(self):
        # The case-level filter may empty the configured scheduler set;
        # that must mean "no runs", never "fall back to every scheduler".
        config = FuzzConfig(seeds=25, families=("layered",), schedulers=("exact",))
        below = {
            case.seed for case in fuzz_case_tasks(config) if case.below_floor
        }
        assert below
        report = run_fuzz(config)
        assert report.ok
        for _, seed, case_report in report.cases:
            schedulers = {outcome.scheduler for outcome in case_report.outcomes}
            if seed in below:
                assert schedulers == set()
            else:
                assert schedulers == {"exact"}

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_fuzz(SMALL, progress=lambda family, seed, _: seen.append((family, seed)))
        assert len(seen) == 4

    def test_resume_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", read=True)
        first = run_fuzz(SMALL, cache=cache)
        assert first.cached_runs == 0
        second = run_fuzz(SMALL, cache=cache)
        assert second.ok
        assert second.cached_runs == second.runs
