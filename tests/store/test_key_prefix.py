"""Key-prefix queries: correctness on both backends, shard pruning on columnar.

``StoreQuery.key_prefix`` narrows a scan to content addresses under one
hex prefix.  On the columnar backend that is more than a row filter: the
scan must skip entire shard directories whose prefix is incompatible
with the requested one — these tests count ``_Shard.refresh`` calls to
prove the skipped shards are never even opened.
"""

import pytest

from repro.store import ColumnarStore, LegacyStore, StoreQuery
from repro.store.base import StoreError

from .conftest import fill, make_payload


def scanned_keys(store, query):
    return {row.key for row in store.scan(query)}


class TestKeyPrefixValidation:
    def test_lowercases_hex(self):
        assert StoreQuery(key_prefix="AB12").key_prefix == "ab12"

    @pytest.mark.parametrize("bad", ["", "xyz", "12g4", "0" * 65, "a b"])
    def test_rejects_non_hex_and_oversized(self, bad):
        with pytest.raises(StoreError):
            StoreQuery(key_prefix=bad)

    def test_rejects_non_string(self):
        with pytest.raises(StoreError):
            StoreQuery(key_prefix=123)

    def test_matches_filters_rows_by_key(self, columnar):
        expected = fill(columnar, 8)
        some_key = sorted(expected)[0]
        query = StoreQuery(key_prefix=some_key[:6])
        for row in columnar.scan():
            assert query.matches(row) == row.key.startswith(some_key[:6])


@pytest.mark.parametrize("backend", ["columnar", "legacy"])
class TestKeyPrefixCorrectness:
    @pytest.fixture
    def store(self, backend, tmp_path):
        cls = ColumnarStore if backend == "columnar" else LegacyStore
        return cls(tmp_path / backend)

    def test_exact_prefix_subset(self, store):
        expected = fill(store, 48)
        prefix = sorted(expected)[0][:1]
        want = {key for key in expected if key.startswith(prefix)}
        assert want  # the chosen prefix matches at least one record
        assert scanned_keys(store, StoreQuery(key_prefix=prefix)) == want

    def test_full_key_as_prefix_matches_one(self, store):
        expected = fill(store, 12)
        target = sorted(expected)[3]
        assert scanned_keys(store, StoreQuery(key_prefix=target)) == {target}

    def test_no_match_is_empty_not_error(self, store):
        fill(store, 6)
        present = {key[:8] for key in scanned_keys(store, StoreQuery())}
        probe = next(
            f"{value:08x}" for value in range(1 << 16) if f"{value:08x}" not in present
        )
        assert scanned_keys(store, StoreQuery(key_prefix=probe)) == set()

    def test_composes_with_column_filters(self, store):
        for index in range(24):
            family = "hal" if index % 2 else "cosine"
            key, payload = make_payload(index, family=family)
            store.put(key, payload)
        prefix = sorted(scanned_keys(store, StoreQuery()))[0][:1]
        combined = StoreQuery(family="hal", key_prefix=prefix)
        rows = list(store.scan(combined))
        assert all(row.family == "hal" for row in rows)
        assert all(row.key.startswith(prefix) for row in rows)
        assert {row.key for row in rows} == (
            scanned_keys(store, StoreQuery(family="hal"))
            & scanned_keys(store, StoreQuery(key_prefix=prefix))
        )


class TestColumnarShardPruning:
    """The columnar scan must skip shards no matching address can live in."""

    @pytest.fixture
    def counted_refresh(self, monkeypatch):
        from repro.store.columnar import _Shard

        opened = []
        original = _Shard.refresh

        def counting(self, force=False):
            opened.append(self.root.name)
            return original(self, force)

        monkeypatch.setattr(_Shard, "refresh", counting)
        return opened

    def test_unfiltered_scan_opens_every_shard(self, columnar, counted_refresh):
        fill(columnar, 48)
        shard_count = len(columnar._all_prefixes())
        assert shard_count > 1  # 48 sha256 keys spread over >1 of 16 shards
        counted_refresh.clear()
        list(columnar.scan())
        assert sorted(set(counted_refresh)) == columnar._all_prefixes()

    def test_one_char_prefix_opens_one_shard(self, columnar, counted_refresh):
        expected = fill(columnar, 48)
        prefix = sorted(expected)[0][:1]
        counted_refresh.clear()
        keys = scanned_keys(columnar, StoreQuery(key_prefix=prefix))
        assert keys == {key for key in expected if key.startswith(prefix)}
        assert set(counted_refresh) == {prefix}  # shard_width=1: exactly one

    def test_long_prefix_still_opens_one_shard(self, columnar, counted_refresh):
        expected = fill(columnar, 48)
        target = sorted(expected)[0]
        counted_refresh.clear()
        assert scanned_keys(columnar, StoreQuery(key_prefix=target[:12])) == {target} | {
            key for key in expected if key.startswith(target[:12])
        }
        assert set(counted_refresh) == {target[:1]}

    def test_short_prefix_on_wide_shards_opens_the_subtree(self, tmp_path, counted_refresh):
        store = ColumnarStore(tmp_path / "wide", shard_width=2)
        expected = fill(store, 64)
        prefix = sorted(expected)[0][:1]
        counted_refresh.clear()
        keys = scanned_keys(store, StoreQuery(key_prefix=prefix))
        assert keys == {key for key in expected if key.startswith(prefix)}
        compatible = [p for p in store._all_prefixes() if p.startswith(prefix)]
        assert sorted(set(counted_refresh)) == compatible
        assert len(compatible) < len(store._all_prefixes())

    def test_pruning_survives_compaction(self, columnar, counted_refresh):
        expected = fill(columnar, 32)
        columnar.compact()
        late = {}
        for index in range(32, 48):  # a fresh uncompacted overlay on top
            key, payload = make_payload(index)
            columnar.put(key, payload)
            late[key] = payload
        expected.update(late)
        prefix = sorted(expected)[0][:1]
        counted_refresh.clear()
        keys = scanned_keys(columnar, StoreQuery(key_prefix=prefix))
        assert keys == {key for key in expected if key.startswith(prefix)}
        assert set(counted_refresh) == {prefix}
