"""Unit tests for the random CDFG generator and the scenario families."""

import pytest

from repro.ir.operation import OpType
from repro.ir.validate import is_valid
from repro.suite.generators import (
    FAMILIES,
    GeneratorConfig,
    butterfly_cdfg,
    chain_cdfg,
    family_cdfg,
    family_names,
    mesh_cdfg,
    random_cdfg,
    random_cdfg_batch,
    tree_cdfg,
)


def _arithmetic(graph):
    return [n for n in graph.operation_names() if graph.operation(n).is_arithmetic]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(operations=0)
        with pytest.raises(ValueError):
            GeneratorConfig(inputs=0)
        with pytest.raises(ValueError):
            GeneratorConfig(levels=0)
        with pytest.raises(ValueError):
            GeneratorConfig(mul_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(mul_fraction=0.7, sub_fraction=0.7)


class TestGeneration:
    def test_graph_is_valid_and_sized(self):
        config = GeneratorConfig(operations=15, inputs=3, outputs=2, seed=7)
        graph = random_cdfg(config)
        assert is_valid(graph)
        arithmetic = [n for n in graph.operation_names() if graph.operation(n).is_arithmetic]
        assert len(arithmetic) == 15
        assert len(graph.operations_of_type(OpType.INPUT)) == 3
        assert len(graph.operations_of_type(OpType.OUTPUT)) <= 2

    def test_deterministic_for_same_seed(self):
        a = random_cdfg(GeneratorConfig(seed=42))
        b = random_cdfg(GeneratorConfig(seed=42))
        assert a.operation_names() == b.operation_names()
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_cdfg(GeneratorConfig(operations=20, seed=1))
        b = random_cdfg(GeneratorConfig(operations=20, seed=2))
        assert sorted(a.edges()) != sorted(b.edges())

    def test_type_mix_follows_fractions(self):
        config = GeneratorConfig(operations=60, mul_fraction=1.0, sub_fraction=0.0, seed=3)
        graph = random_cdfg(config)
        assert len(graph.operations_of_type(OpType.MUL)) == 60

        config = GeneratorConfig(operations=60, mul_fraction=0.0, sub_fraction=0.0, seed=3)
        graph = random_cdfg(config)
        assert len(graph.operations_of_type(OpType.ADD)) == 60

    def test_custom_name(self):
        assert random_cdfg(GeneratorConfig(seed=1), name="custom").name == "custom"

    def test_batch(self):
        graphs = random_cdfg_batch(4, base_seed=10, operations=8)
        assert len(graphs) == 4
        assert len({g.name for g in graphs}) == 4
        assert all(is_valid(g) for g in graphs)


class TestChainFamily:
    def test_shape(self):
        graph = chain_cdfg(7, seed=3)
        assert is_valid(graph)
        assert len(_arithmetic(graph)) == 7
        # Serial dependence: each chain op consumes its predecessor.
        for index in range(1, 7):
            assert f"c{index - 1}" in graph.predecessors(f"c{index}")
        # The whole chain is the critical path: unit delays give length+io.
        from repro.ir.analysis import critical_path_length

        delays = {n: 1 for n in graph.operation_names()}
        assert critical_path_length(graph, delays) == 7 + 2  # + input + output

    def test_deterministic_and_seed_sensitive(self):
        a, b = chain_cdfg(8, seed=5), chain_cdfg(8, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        assert [a.operation(n).optype for n in a.operation_names()] == [
            b.operation(n).optype for n in b.operation_names()
        ]
        c = chain_cdfg(8, seed=6)
        assert sorted(a.edges()) != sorted(c.edges()) or [
            a.operation(n).optype for n in a.operation_names()
        ] != [c.operation(n).optype for n in c.operation_names()]

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_cdfg(0)
        with pytest.raises(ValueError):
            chain_cdfg(5, mul_fraction=0.8, sub_fraction=0.5)


class TestTreeFamily:
    def test_shape(self):
        graph = tree_cdfg(8, seed=1)
        assert is_valid(graph)
        assert len(_arithmetic(graph)) == 7  # leaves - 1 combines
        assert len(graph.operations_of_type(OpType.INPUT)) == 8
        # Exactly one arithmetic sink feeds the single output.
        outputs = graph.operations_of_type(OpType.OUTPUT)
        assert len(outputs) == 1
        # Level structure: each level's ops consume strictly earlier ones.
        for name in _arithmetic(graph):
            assert len(graph.predecessors(name)) == 2

    def test_odd_leaf_carry_over(self):
        graph = tree_cdfg(5, seed=0)
        assert len(_arithmetic(graph)) == 4

    def test_deterministic(self):
        assert sorted(tree_cdfg(6, seed=9).edges()) == sorted(
            tree_cdfg(6, seed=9).edges()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_cdfg(1)


class TestButterflyFamily:
    def test_shape(self):
        graph = butterfly_cdfg(4, 2, seed=2)
        assert is_valid(graph)
        assert len(_arithmetic(graph)) == 4 * 2  # lanes × stages
        assert len(graph.operations_of_type(OpType.INPUT)) == 4
        assert len(graph.operations_of_type(OpType.OUTPUT)) == 4
        # Stage 1 ops consume two distinct stage-0 ops (XOR partners).
        for lane in range(4):
            preds = graph.predecessors(f"b1_{lane}")
            assert set(preds) == {f"b0_{lane}", f"b0_{lane ^ 2}"}

    def test_stages_default_to_log2_lanes(self):
        graph = butterfly_cdfg(8, seed=0)
        assert len(_arithmetic(graph)) == 8 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            butterfly_cdfg(3)  # not a power of two
        with pytest.raises(ValueError):
            butterfly_cdfg(4, 0)

    def test_deterministic(self):
        assert sorted(butterfly_cdfg(4, 2, seed=7).edges()) == sorted(
            butterfly_cdfg(4, 2, seed=7).edges()
        )


class TestMeshFamily:
    def test_shape(self):
        graph = mesh_cdfg(3, 4, seed=4)
        assert is_valid(graph)
        assert len(_arithmetic(graph)) == 3 * 4
        assert len(graph.operations_of_type(OpType.INPUT)) == 3
        assert len(graph.operations_of_type(OpType.OUTPUT)) == 3
        # Diamond structure: row 2 lane 0 consumes row 1 lanes 0 and 1.
        assert set(graph.predecessors("m2_0")) == {"m1_0", "m1_1"}

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_cdfg(1, 3)
        with pytest.raises(ValueError):
            mesh_cdfg(3, 0)

    def test_deterministic(self):
        assert sorted(mesh_cdfg(2, 3, seed=11).edges()) == sorted(
            mesh_cdfg(2, 3, seed=11).edges()
        )


class TestFamilyRegistry:
    def test_all_families_registered(self):
        assert set(family_names()) >= {"chain", "tree", "butterfly", "mesh", "layered"}

    def test_family_cdfg_is_deterministic_per_seed(self):
        for family in family_names():
            a, b = family_cdfg(family, 13), family_cdfg(family, 13)
            assert a.operation_names() == b.operation_names()
            assert sorted(a.edges()) == sorted(b.edges())

    def test_family_graphs_are_valid_and_small(self):
        # Shapes stay near the exact scheduler's 12-operation cap so the
        # fuzzer exercises it on a useful share of cases.
        for family in family_names():
            for seed in range(5):
                graph = family_cdfg(family, seed)
                assert is_valid(graph)
                assert len(graph.schedulable_operations()) <= 16

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            family_cdfg("bogus", 0)

    def test_family_benchmarks_are_registered(self):
        from repro.suite.registry import get_benchmark

        for name in ("chain", "tree", "butterfly", "mesh"):
            spec = get_benchmark(name)
            graph = spec.build()
            assert graph.name == name
            assert spec.latencies
            assert is_valid(graph)
