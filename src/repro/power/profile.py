"""Per-cycle power profiles.

A *power profile* is the sequence of total power values drawn in each
clock cycle of a schedule — the quantity plotted in Figure 1 of the paper
and the quantity the power constraint bounds.  The profile can be derived
either from a bare :class:`~repro.scheduling.schedule.Schedule` (which
carries per-operation powers) or from a bound datapath where the module
choice of each FU instance determines the power of the operations bound
to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..scheduling.schedule import Schedule


@dataclass(frozen=True)
class PowerProfile:
    """An immutable per-cycle power series with convenience statistics."""

    values: tuple
    label: str = ""

    @staticmethod
    def of(values: Sequence[float], label: str = "") -> "PowerProfile":
        return PowerProfile(tuple(float(v) for v in values), label)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, cycle: int) -> float:
        return self.values[cycle]

    def __iter__(self):
        return iter(self.values)

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def average(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def total_energy(self) -> float:
        return float(sum(self.values))

    @property
    def peak_to_average(self) -> float:
        """Peak-to-average ratio; 0 for an empty or all-zero profile."""
        return self.peak / self.average if self.average > 0 else 0.0

    def cycles_above(self, threshold: float) -> List[int]:
        """Cycle indices whose power strictly exceeds ``threshold``."""
        return [cycle for cycle, value in enumerate(self.values) if value > threshold]

    def exceeds(self, threshold: float, tolerance: float = 1e-9) -> bool:
        """True if any cycle draws more than ``threshold`` (with tolerance)."""
        return any(value > threshold + tolerance for value in self.values)

    def padded(self, length: int) -> "PowerProfile":
        """Extend with zero cycles up to ``length`` (no-op when longer)."""
        if length <= len(self.values):
            return self
        return PowerProfile(self.values + (0.0,) * (length - len(self.values)), self.label)

    def describe(self, width: int = 40) -> str:
        """ASCII bar rendering of the profile (used in example output)."""
        if not self.values:
            return "(empty profile)"
        scale = width / self.peak if self.peak > 0 else 0.0
        lines = [f"power profile {self.label!r}: peak={self.peak:.2f} avg={self.average:.2f}"]
        for cycle, value in enumerate(self.values):
            bar = "#" * int(round(value * scale))
            lines.append(f"  {cycle:3d} | {bar} {value:.1f}")
        return "\n".join(lines)


def profile_from_schedule(schedule: Schedule, horizon: Optional[int] = None) -> PowerProfile:
    """Power profile of a schedule using its per-operation power values."""
    return PowerProfile.of(schedule.power_profile(horizon), label=schedule.label)


def profile_from_binding(
    schedule: Schedule,
    op_powers: Mapping[str, float],
    op_delays: Optional[Mapping[str, int]] = None,
    horizon: Optional[int] = None,
    label: str = "",
) -> PowerProfile:
    """Power profile with per-operation powers/delays overridden by a binding.

    After binding, an operation's power is the power of the module its FU
    instance implements, which may differ from the tentative value used by
    the scheduler.  ``op_delays`` may likewise override the delays.
    """
    delays = dict(op_delays) if op_delays is not None else schedule.delays
    horizon_cycles = horizon if horizon is not None else 0
    for name in schedule.start_times:
        horizon_cycles = max(horizon_cycles, schedule.start(name) + delays[name])
    values = [0.0] * horizon_cycles
    for name in schedule.start_times:
        power = op_powers.get(name, schedule.powers.get(name, 0.0))
        if power == 0:
            continue
        for cycle in range(schedule.start(name), schedule.start(name) + delays[name]):
            values[cycle] += power
    return PowerProfile.of(values, label=label or schedule.label)


def combine_profiles(profiles: Sequence[PowerProfile], label: str = "combined") -> PowerProfile:
    """Cycle-wise sum of several profiles (e.g. datapath + controller)."""
    length = max((len(p) for p in profiles), default=0)
    values = [0.0] * length
    for profile in profiles:
        for cycle, value in enumerate(profile):
            values[cycle] += value
    return PowerProfile.of(values, label=label)


def current_profile(profile: PowerProfile, supply_voltage: float = 1.0) -> List[float]:
    """Convert a power profile to a current profile at a supply voltage.

    The battery models operate on current; with the paper's unit-less
    power numbers we default to a 1 V supply so power and current
    coincide numerically.
    """
    if supply_voltage <= 0:
        raise ValueError("supply voltage must be positive")
    return [value / supply_voltage for value in profile]
