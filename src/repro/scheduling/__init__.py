"""Schedulers: classical baselines and the paper's power-constrained pasap/palap."""

from .constraints import (
    ConstraintError,
    PowerConstraint,
    ResourceConstraint,
    SynthesisConstraints,
    TimeConstraint,
    UnsupportedConstraintError,
    feasible_power_floor,
    minimum_feasible_power,
)
from .schedule import Schedule, ScheduleError, add_to_profile, profile_allows
from .asap import asap_schedule, asap_schedule_with_library
from .alap import alap_schedule, alap_schedule_with_library
from .pasap import (
    LockedProfileCache,
    PowerInfeasibleError,
    default_priority,
    pasap_core,
    pasap_schedule,
    pasap_schedule_with_library,
    pasap_start_times,
)
from .palap import palap_core, palap_schedule, palap_schedule_with_library, palap_start_times
from .mobility import Window, WindowCache, WindowSet, compute_windows, windows_feasible
from .list_scheduler import (
    ResourceInfeasibleError,
    greedy_allocation_for_latency,
    list_schedule,
    minimal_allocation,
)
from .force_directed import force_directed_schedule
from .two_step import TwoStepResult, two_step_schedule
from .exact import (
    ExactSchedulerError,
    ExactSizeError,
    exact_schedule,
    exists_schedule,
    minimum_latency_under_power,
    optimality_gap,
)

__all__ = [
    "ConstraintError",
    "UnsupportedConstraintError",
    "PowerConstraint",
    "ResourceConstraint",
    "SynthesisConstraints",
    "TimeConstraint",
    "feasible_power_floor",
    "minimum_feasible_power",
    "Schedule",
    "ScheduleError",
    "add_to_profile",
    "profile_allows",
    "asap_schedule",
    "asap_schedule_with_library",
    "alap_schedule",
    "alap_schedule_with_library",
    "PowerInfeasibleError",
    "default_priority",
    "LockedProfileCache",
    "pasap_core",
    "pasap_schedule",
    "pasap_schedule_with_library",
    "pasap_start_times",
    "palap_core",
    "palap_schedule",
    "palap_schedule_with_library",
    "palap_start_times",
    "Window",
    "WindowSet",
    "WindowCache",
    "compute_windows",
    "windows_feasible",
    "ResourceInfeasibleError",
    "greedy_allocation_for_latency",
    "list_schedule",
    "minimal_allocation",
    "force_directed_schedule",
    "TwoStepResult",
    "two_step_schedule",
    "ExactSchedulerError",
    "ExactSizeError",
    "exact_schedule",
    "exists_schedule",
    "minimum_latency_under_power",
    "optimality_gap",
]


# --------------------------------------------------------------------------- #
# Strategy registrations
#
# Each adapter bridges a scheduler's native signature to the pipeline
# contract: read what it needs from the PipelineContext (duck-typed, so
# this package never imports repro.api), write ctx.schedule.  New
# schedulers plug in the same way — decorate an adapter and a task can
# name it; no new top-level entry point required.
# --------------------------------------------------------------------------- #
from ..registries import SCHEDULERS as _SCHEDULERS


@_SCHEDULERS.register("asap")
def _asap_strategy(ctx) -> None:
    """Earliest data-ready start for every operation (no constraints)."""
    ctx.schedule = asap_schedule(
        ctx.cdfg, ctx.delays, ctx.powers, label=ctx.strategy_label("asap")
    )


@_SCHEDULERS.register("alap")
def _alap_strategy(ctx) -> None:
    """Latest start under the latency bound."""
    ctx.schedule = alap_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.require_latency("alap"),
        label=ctx.strategy_label("alap"),
    )


@_SCHEDULERS.register("list")
def _list_strategy(ctx) -> None:
    """Resource-constrained list scheduling with a greedy minimal allocation."""
    latency = ctx.require_latency("list")
    module_of = {
        name: ctx.selection[name] for name in ctx.cdfg.schedulable_operations()
    }
    allocation = greedy_allocation_for_latency(
        ctx.cdfg, ctx.delays, ctx.powers, module_of, latency
    )
    ctx.schedule = list_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        module_of,
        allocation,
        latency_hint=latency,
        label=ctx.strategy_label("list"),
    )
    ctx.metrics["allocation"] = dict(allocation)


@_SCHEDULERS.register("force_directed")
def _force_directed_strategy(ctx) -> None:
    """Paulin/Knight force-directed scheduling under the latency bound."""
    ctx.schedule = force_directed_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.require_latency("force_directed"),
        label=ctx.strategy_label("force_directed"),
    )


@_SCHEDULERS.register("pasap")
def _pasap_strategy(ctx) -> None:
    """The paper's power-constrained ASAP (no latency bound needed)."""
    ctx.schedule = pasap_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.power_constraint,
        label=ctx.strategy_label("pasap"),
    )


@_SCHEDULERS.register("palap")
def _palap_strategy(ctx) -> None:
    """The paper's power-constrained ALAP under the latency bound."""
    ctx.schedule = palap_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.power_constraint,
        ctx.require_latency("palap"),
        label=ctx.strategy_label("palap"),
    )


@_SCHEDULERS.register("two_step")
def _two_step_strategy(ctx) -> None:
    """Schedule-then-repair baseline; records whether the repair met P."""
    outcome = two_step_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.power_constraint,
        TimeConstraint(ctx.require_latency("two_step")),
        label=ctx.strategy_label("two_step"),
    )
    ctx.schedule = outcome.schedule
    ctx.metrics["met_power"] = outcome.met_power
    ctx.metrics["repair_moves"] = outcome.moves


@_SCHEDULERS.register("exact")
def _exact_strategy(ctx) -> None:
    """Exhaustive makespan-optimal scheduling (tiny graphs only)."""
    ctx.schedule = exact_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.power_constraint,
        ctx.require_latency("exact"),
        label=ctx.strategy_label("exact"),
        max_operations=ctx.options.exact_max_operations,
    )
