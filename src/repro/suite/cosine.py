"""Cosine (8-point fast DCT) benchmark.

The "cosine" benchmark of the HLS literature is the data-flow graph of an
8-point fast discrete cosine transform: three butterfly stages of
additions/subtractions followed by rotations implemented with constant
multiplications.  We reconstruct the standard structure (the authors'
exact node list is not published):

* stage 1 — 4 additions and 4 subtractions (input butterflies),
* stage 2 — 2 additions and 2 subtractions on the even half,
* even outputs — 6 constant multiplications with 1 addition and
  1 subtraction feeding ``y0/y4`` and ``y2/y6``,
* odd outputs — 8 constant multiplications combined by 8
  additions/subtractions feeding ``y1/y3/y5/y7``.

The resulting graph has 14 multiplications and 24 additions/subtractions,
comparable to the published FDCT benchmark mixes, and a serial-multiplier
critical path of 10 cycles (including I/O), which keeps the paper's
latency bounds T = 12, 15 and 19 all feasible while exercising very
different amounts of scheduling slack.
"""

from __future__ import annotations

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG


def cosine_cdfg(include_io: bool = True) -> CDFG:
    """Build the 8-point fast-DCT ("cosine") CDFG.

    Args:
        include_io: Include explicit input/output operations (default).

    Returns:
        A validated :class:`~repro.ir.cdfg.CDFG` named ``"cosine"``.
    """
    b = CDFGBuilder("cosine")

    if include_io:
        x = [b.input(f"in_x{i}") for i in range(8)]
    else:
        x = [b.const(f"x{i}") for i in range(8)]
    # Cosine coefficients (virtual constants: held in ROM, no FU needed).
    c1 = b.const("c1")
    c2 = b.const("c2")
    c3 = b.const("c3")
    c4 = b.const("c4")
    c5 = b.const("c5")
    c6 = b.const("c6")
    c7 = b.const("c7")

    # Stage 1: input butterflies.
    s0 = b.add("s0", x[0], x[7])
    s1 = b.add("s1", x[1], x[6])
    s2 = b.add("s2", x[2], x[5])
    s3 = b.add("s3", x[3], x[4])
    d0 = b.sub("d0", x[0], x[7])
    d1 = b.sub("d1", x[1], x[6])
    d2 = b.sub("d2", x[2], x[5])
    d3 = b.sub("d3", x[3], x[4])

    # Stage 2: even half butterflies.
    e0 = b.add("e0", s0, s3)
    e1 = b.add("e1", s1, s2)
    e2 = b.sub("e2", s0, s3)
    e3 = b.sub("e3", s1, s2)

    # Even outputs.
    t_sum = b.add("t_sum", e0, e1)
    t_diff = b.sub("t_diff", e0, e1)
    y0 = b.mul("y0", t_sum, c4)
    y4 = b.mul("y4", t_diff, c4)

    p2a = b.mul("p2a", e2, c2)
    p2b = b.mul("p2b", e3, c6)
    p6a = b.mul("p6a", e2, c6)
    p6b = b.mul("p6b", e3, c2)
    y2 = b.add("y2", p2a, p2b)
    y6 = b.sub("y6", p6a, p6b)

    # Odd outputs: two rotations followed by a combination stage.
    q0a = b.mul("q0a", d0, c1)
    q0b = b.mul("q0b", d3, c7)
    q1a = b.mul("q1a", d0, c7)
    q1b = b.mul("q1b", d3, c1)
    q2a = b.mul("q2a", d1, c3)
    q2b = b.mul("q2b", d2, c5)
    q3a = b.mul("q3a", d1, c5)
    q3b = b.mul("q3b", d2, c3)

    t0 = b.add("t0", q0a, q0b)
    t1 = b.sub("t1", q1a, q1b)
    t2 = b.add("t2", q2a, q2b)
    t3 = b.sub("t3", q3a, q3b)

    y1 = b.add("y1", t0, t2)
    y3 = b.sub("y3", t0, t2)
    y5 = b.add("y5", t1, t3)
    y7 = b.sub("y7", t1, t3)

    if include_io:
        for name, value in (
            ("out_y0", y0),
            ("out_y1", y1),
            ("out_y2", y2),
            ("out_y3", y3),
            ("out_y4", y4),
            ("out_y5", y5),
            ("out_y6", y6),
            ("out_y7", y7),
        ):
            b.output(name, value)

    return b.build()


#: Latency bounds the paper uses for the cosine benchmark in Figure 2.
COSINE_LATENCIES = (12, 15, 19)
