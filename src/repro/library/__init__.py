"""Functional-unit library: modules, instances, registries, selection policies."""

from .module import FUInstance, FUModule, LibraryError, busy_intervals
from .library import (
    FULibrary,
    TABLE1_ROWS,
    default_library,
    single_implementation_library,
)
from .selection import (
    MinAreaSelection,
    MinLatencySelection,
    MinPowerSelection,
    Selection,
    SelectionPolicy,
    check_selection,
    selection_delays,
    selection_powers,
    total_energy,
)

__all__ = [
    "FUInstance",
    "FUModule",
    "LibraryError",
    "busy_intervals",
    "FULibrary",
    "TABLE1_ROWS",
    "default_library",
    "single_implementation_library",
    "MinAreaSelection",
    "MinLatencySelection",
    "MinPowerSelection",
    "Selection",
    "SelectionPolicy",
    "check_selection",
    "selection_delays",
    "selection_powers",
    "total_energy",
]


# --------------------------------------------------------------------------- #
# Strategy registrations: technology libraries and selection policies are
# addressable by name so SynthesisTask specs stay pure data.
# --------------------------------------------------------------------------- #
from ..registries import LIBRARIES as _LIBRARIES
from ..registries import SELECTORS as _SELECTORS

_LIBRARIES.register("table1", default_library)
_LIBRARIES.register("default", default_library)
_LIBRARIES.register("single", single_implementation_library)

_SELECTORS.register("min_power", MinPowerSelection)
_SELECTORS.register("min_area", MinAreaSelection)
_SELECTORS.register("min_latency", MinLatencySelection)
