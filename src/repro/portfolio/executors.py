"""Execution seams for portfolio races.

The :class:`~repro.portfolio.runner.PortfolioRunner` never talks to
processes, threads or clocks directly — it drives a :class:`RaceExecutor`
(launch / poll / cancel) and an injectable monotonic clock.  Three
executors implement the seam:

* :class:`ProcessExecutor` — the real one: one
  :class:`~repro.serve.workers.ProcessWorker` child per contender,
  multiplexed with :func:`multiprocessing.connection.wait`, losers
  killed mid-job.  The default whenever a readable+writable cache
  directory is available and the current process may fork children.
* :class:`InlineExecutor` — sequential in-process execution, one
  contender per :meth:`poll` in launch order.  Deterministic and
  sleep-free; the fallback inside daemonic serve workers (which may not
  spawn children) and for cacheless calls.
* :class:`ScriptedExecutor` — the test seam: completions, crashes and
  clock advances replay from a script, so every race ordering — A-wins,
  B-wins, ties, deadline expiry mid-flight, crashed contenders — is
  drivable with zero wall-clock sleeps.

Outcomes use one currency throughout: the record dict a finished
:class:`~repro.api.batch.TaskResult` serializes to, or the
``{"error": …, "error_type": …}`` dict of
:func:`~repro.serve.workers.run_claimed_task` — a crashed child arrives
as ``error_type="WorkerCrash"`` exactly like a serve worker's death.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.batch import run_task
from ..api.task import SynthesisTask

__all__ = [
    "Contender",
    "InlineExecutor",
    "ManualClock",
    "ProcessExecutor",
    "RaceExecutor",
    "ScriptedExecutor",
    "default_executor",
]

#: One delivered completion: (contender index, outcome dict).
Completion = Tuple[int, Dict[str, Any]]


@dataclass(frozen=True)
class Contender:
    """One entrant of a race: canonical index, pair label, concrete task."""

    index: int
    label: str
    scheduler: str
    binder: str
    task: SynthesisTask


class RaceExecutor(ABC):
    """The injectable execution seam of a portfolio race.

    The runner launches contenders (possibly slot-limited), then polls
    for completions until its decision rule resolves; losers get
    cancelled.  ``poll`` returns the next ``(index, outcome)`` pair, or
    ``None`` when the timeout elapsed (deadline bookkeeping) or the
    executor has nothing left to deliver.
    """

    @abstractmethod
    def launch(self, contender: Contender) -> None:
        """Start one contender (non-blocking)."""

    @abstractmethod
    def poll(self, timeout: Optional[float] = None) -> Optional[Completion]:
        """The next completion, or ``None`` on timeout / exhaustion."""

    @abstractmethod
    def cancel(self, contender: Contender) -> None:
        """Stop a loser; its completion must never be delivered."""

    def close(self) -> None:
        """Release resources (kill remaining children, drop queues)."""


class ManualClock:
    """A hand-advanced monotonic clock for deterministic deadline tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward (never backward)."""
        if seconds < 0:
            raise ValueError(f"a monotonic clock cannot go back {seconds}s")
        self.now += float(seconds)


class InlineExecutor(RaceExecutor):
    """Sequential in-process executor: one contender per poll, launch order.

    Each :meth:`poll` synthesizes the next launched-and-not-cancelled
    contender via :func:`~repro.api.batch.run_task` with the caller-side
    certificate gate (``verify=True``) and returns its record dict;
    exceptions become ``{"error", "error_type"}`` outcomes.  Cancelled
    contenders are simply never run — inline cancellation is free.
    """

    def __init__(self, cache=None) -> None:
        self._cache = cache
        self._queue: List[Contender] = []
        self._cancelled: set = set()
        #: Pair labels actually synthesized, in order (test/bench hook).
        self.ran: List[str] = []
        #: Pair labels cancelled before running (test/bench hook).
        self.cancelled: List[str] = []

    def launch(self, contender: Contender) -> None:
        self._queue.append(contender)

    def cancel(self, contender: Contender) -> None:
        self._cancelled.add(contender.index)
        self.cancelled.append(contender.label)

    def poll(self, timeout: Optional[float] = None) -> Optional[Completion]:
        while self._queue:
            contender = self._queue.pop(0)
            if contender.index in self._cancelled:
                continue
            self.ran.append(contender.label)
            try:
                record = run_task(
                    contender.task, keep_result=False, cache=self._cache, verify=True
                )
                return (contender.index, record.to_dict())
            except Exception as exc:  # noqa: BLE001 - outcomes, not raises
                return (
                    contender.index,
                    {"error": str(exc), "error_type": type(exc).__name__},
                )
        return None


class ProcessExecutor(RaceExecutor):
    """The real race executor: one worker child per contender.

    Contenders run in :class:`~repro.serve.workers.ProcessWorker`
    children against a shared cache directory (the store-level claim
    protocol keeps concurrent races from synthesizing one address
    twice); :meth:`poll` multiplexes every live pipe through
    :func:`multiprocessing.connection.wait` and returns whichever
    contender answers first.  A child that dies mid-job surfaces as a
    ``WorkerCrash``-typed outcome; :meth:`cancel` kills the loser's
    child outright — its result is no longer wanted.
    """

    def __init__(
        self,
        cache_dir: str,
        *,
        cache_backend: Optional[str] = None,
        verify: bool = True,
        owner: str = "portfolio",
    ) -> None:
        self.cache_dir = str(cache_dir)
        self.cache_backend = cache_backend
        self.verify = verify
        self.owner = owner
        self._active: Dict[int, Any] = {}
        self._ready: List[Completion] = []

    def launch(self, contender: Contender) -> None:
        from ..serve.workers import ProcessWorker, WorkerCrash

        worker = ProcessWorker(
            self.cache_dir,
            cache_backend=self.cache_backend,
            verify=self.verify,
            name=f"repro-portfolio-{contender.label}",
        )
        try:
            worker.submit(contender.task, owner=f"{self.owner}:{contender.label}")
        except WorkerCrash:
            self._ready.append((contender.index, worker.crash_outcome()))
            return
        self._active[contender.index] = worker

    def poll(self, timeout: Optional[float] = None) -> Optional[Completion]:
        from multiprocessing.connection import wait

        if self._ready:
            return self._ready.pop(0)
        if not self._active:
            return None
        by_conn = {worker.connection: index for index, worker in self._active.items()}
        ready = wait(list(by_conn), timeout)
        if not ready:
            return None
        conn = ready[0]
        index = by_conn[conn]
        worker = self._active.pop(index)
        try:
            outcome = conn.recv()
        except (EOFError, OSError):
            outcome = worker.crash_outcome()
        else:
            worker.stop(timeout=0.2)
        return (index, outcome)

    def cancel(self, contender: Contender) -> None:
        worker = self._active.pop(contender.index, None)
        if worker is not None:
            worker.kill()

    def close(self) -> None:
        for worker in self._active.values():
            worker.kill()
        self._active.clear()
        self._ready.clear()


class ScriptedExecutor(RaceExecutor):
    """Deterministic replay executor — the race-test seam.

    The script is a sequence of events, consumed by :meth:`poll`:

    * ``("complete", label, outcome_dict)`` — deliver an outcome for a
      launched contender,
    * ``("crash", label)`` — deliver a ``WorkerCrash``-typed outcome,
    * ``("advance", seconds)`` — advance the :class:`ManualClock`; when
      the advances consumed within one poll reach its ``timeout``, the
      poll returns ``None`` (exactly how a real deadline expiry looks).

    Events for cancelled contenders are discarded (a killed child never
    answers); events for contenders not yet launched stay in the script
    until their launch.  ``launched`` / ``cancelled`` / ``delivered``
    record the orders tests assert on.  No sleeps anywhere.
    """

    def __init__(
        self,
        script: Sequence[Tuple[Any, ...]],
        clock: Optional[ManualClock] = None,
    ) -> None:
        self._script: List[Tuple[Any, ...]] = list(script)
        self.clock = clock if clock is not None else ManualClock()
        self._by_label: Dict[str, Contender] = {}
        self._cancelled: set = set()
        self.launched: List[str] = []
        self.cancelled: List[str] = []
        self.delivered: List[str] = []

    def launch(self, contender: Contender) -> None:
        self._by_label[contender.label] = contender
        self.launched.append(contender.label)

    def cancel(self, contender: Contender) -> None:
        self._cancelled.add(contender.label)
        self.cancelled.append(contender.label)

    def poll(self, timeout: Optional[float] = None) -> Optional[Completion]:
        spent = 0.0
        index = 0
        while index < len(self._script):
            event = self._script[index]
            kind = event[0]
            if kind == "advance":
                del self._script[index]
                self.clock.advance(float(event[1]))
                spent += float(event[1])
                if timeout is not None and spent >= timeout:
                    return None
                continue
            if kind in ("complete", "crash"):
                label = event[1]
                if label in self._cancelled:
                    del self._script[index]  # a killed loser never answers
                    continue
                contender = self._by_label.get(label)
                if contender is None:  # not launched yet; maybe deliverable later
                    index += 1
                    continue
                del self._script[index]
                if kind == "crash":
                    outcome: Dict[str, Any] = {
                        "error": f"worker process for {label} died (scripted crash)",
                        "error_type": "WorkerCrash",
                    }
                else:
                    outcome = event[2]
                self.delivered.append(label)
                return (contender.index, outcome)
            raise ValueError(f"unknown scripted event {event!r}")
        return None


def default_executor(cache=None) -> RaceExecutor:
    """The production executor choice for one race.

    Child processes need a shared cache directory to report through and
    are forbidden inside daemonic processes (a serve worker child), so:
    a readable *and* writable on-disk cache in a non-daemonic process
    gets the :class:`ProcessExecutor`; everything else falls back to the
    deterministic :class:`InlineExecutor`.
    """
    can_fork = not multiprocessing.current_process().daemon
    if (
        cache is not None
        and can_fork
        and getattr(cache, "read", False)
        and getattr(cache, "write", False)
        and getattr(cache, "root", None) is not None
    ):
        return ProcessExecutor(
            str(cache.root), cache_backend=getattr(cache, "backend", None)
        )
    return InlineExecutor(cache)
