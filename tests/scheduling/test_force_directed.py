"""Unit tests for the force-directed scheduling baseline."""

import pytest

from repro.ir.analysis import concurrency_profile, critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule
from repro.scheduling.constraints import TimeConstraint
from repro.scheduling.force_directed import force_directed_schedule


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestForceDirected:
    def test_respects_precedence_and_latency(self, hal, library):
        delays, powers = maps_for(hal, library)
        latency = critical_path_length(hal, delays) + 4
        schedule = force_directed_schedule(hal, delays, powers, latency)
        schedule.verify(time=TimeConstraint(latency))

    def test_at_critical_path_matches_asap_makespan(self, diamond, library):
        delays, powers = maps_for(diamond, library)
        latency = critical_path_length(diamond, delays)
        schedule = force_directed_schedule(diamond, delays, powers, latency)
        assert schedule.makespan == latency

    def test_balances_concurrency(self, wide, library):
        """With slack, FDS must not stack all multiplications in one cycle."""
        delays, powers = maps_for(wide, library)
        asap = asap_schedule(wide, delays, powers)
        latency = asap.makespan + 12
        balanced = force_directed_schedule(wide, delays, powers, latency)
        asap_conc = max(concurrency_profile(wide, asap.start_times, delays))
        fds_conc = max(concurrency_profile(wide, balanced.start_times, delays))
        assert fds_conc < asap_conc

    def test_lowers_peak_power_with_slack(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        asap = asap_schedule(cosine, delays, powers)
        balanced = force_directed_schedule(cosine, delays, powers, asap.makespan + 8)
        assert balanced.peak_power <= asap.peak_power

    def test_deterministic(self, hal, library):
        delays, powers = maps_for(hal, library)
        first = force_directed_schedule(hal, delays, powers, 20)
        second = force_directed_schedule(hal, delays, powers, 20)
        assert first.start_times == second.start_times

    @pytest.mark.parametrize("extra", [0, 2, 6])
    def test_all_benchmarks_all_slacks(self, hal, cosine, fir, library, extra):
        for graph in (hal, cosine, fir):
            delays, powers = maps_for(graph, library)
            latency = critical_path_length(graph, delays) + extra
            schedule = force_directed_schedule(graph, delays, powers, latency)
            schedule.verify(time=TimeConstraint(latency))


class TestSelfForceReference:
    """_self_force is the reference formulation of the force the scheduler
    computes inline (with the average hoisted); keep them in lockstep."""

    def test_inline_hoisting_matches_reference(self):
        from repro.ir.operation import OpType
        from repro.scheduling.force_directed import _self_force, _window_average

        latency = 8
        series = [0.5, 1.25, 2.0, 0.75, 0.0, 1.0, 0.25, 0.5]
        distribution = {OpType.MUL: series}
        for window in ((0, 4), (2, 6), (1, 1)):
            for delay in (1, 2, 3):
                earliest, latest = window
                average = _window_average(series, delay, earliest, latest, latency)
                for candidate in range(earliest, latest + 1):
                    chosen = 0.0
                    for cycle in range(candidate, min(candidate + delay, latency)):
                        chosen += series[cycle]
                    assert chosen - average == _self_force(
                        OpType.MUL, delay, window, candidate, distribution, latency
                    )

    def test_empty_series_is_zero_force(self):
        from repro.ir.operation import OpType
        from repro.scheduling.force_directed import _self_force

        assert _self_force(OpType.ADD, 2, (0, 3), 1, {}, 8) == 0.0
