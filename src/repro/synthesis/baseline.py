"""Baseline synthesis flows used for comparison.

Two baselines bracket the paper's combined algorithm:

* :func:`time_constrained_synthesis` — the same greedy engine run with an
  *unbounded* power budget.  This is the classical partial-clique
  synthesis of Jou et al.; its schedule is free to stack power into early
  cycles, producing the "undesired" profile of Figure 1 (top).  Its area
  is also the asymptote the Figure-2 curves approach as ``P`` grows.
* :func:`naive_synthesis` — no sharing at all: every operation gets its
  own functional unit (the cheapest module for its type) and the plain
  ASAP schedule.  This is the fastest, largest and most power-spiky
  design; useful as an upper bound on area and peak power in tests and
  examples.
"""

from __future__ import annotations

from typing import Optional

from ..datapath.rtl import Datapath
from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import MinAreaSelection, selection_delays, selection_powers
from ..scheduling.asap import asap_schedule
from ..scheduling.constraints import SynthesisConstraints
from .engine import EngineOptions, PowerConstrainedSynthesizer
from .result import SynthesisResult


def time_constrained_synthesis(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    options: Optional[EngineOptions] = None,
) -> SynthesisResult:
    """Area-minimizing synthesis under a latency bound only (no power cap)."""
    constraints = SynthesisConstraints.of(latency, max_power=None)
    return PowerConstrainedSynthesizer(library, constraints, options).synthesize(cdfg)


def naive_synthesis(
    cdfg: CDFG,
    library: FULibrary,
    latency: Optional[int] = None,
) -> SynthesisResult:
    """One functional unit per operation, ASAP schedule, no sharing.

    Args:
        cdfg: Graph to synthesize.
        library: Technology library.
        latency: Optional latency bound recorded on the result (the ASAP
            makespan is used when omitted).  The bound is not enforced; a
            :class:`~repro.scheduling.schedule.ScheduleError` from
            ``result.verify()`` will flag a violation.

    Returns:
        A :class:`SynthesisResult` with maximal area and an unconstrained
        power profile.
    """
    selection = MinAreaSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    schedule = asap_schedule(cdfg, delays, powers, label=f"naive[{cdfg.name}]")

    datapath = Datapath(cdfg=cdfg, schedule=schedule)
    for op_name in cdfg.schedulable_operations():
        instance = datapath.add_instance(selection[op_name])
        datapath.bind(op_name, instance.name)
    datapath.finalize()

    bound = latency if latency is not None else schedule.makespan
    constraints = SynthesisConstraints.of(bound, max_power=None)
    return SynthesisResult(
        datapath=datapath,
        schedule=schedule,
        constraints=constraints,
        area=datapath.area(),
        trace=["naive: one instance per operation"],
        backtracks=0,
        metadata={"library": library.name, "flow": "naive"},
    )
