"""Record benchmark runs into the repository's BENCH_*.json history.

pytest-benchmark already measures everything we need; what it lacks is a
*trajectory*: one file, kept in the repository, that accumulates labelled
runs over time so a future session (or the CI perf job) can compare
today's numbers against any earlier state of the code.

This wrapper runs a benchmark module under ``pytest --benchmark-json``,
extracts the per-test statistics, and appends a run entry to the history
file at the repository root::

    python benchmarks/record.py                      # bench_scalability -> BENCH_scalability.json
    python benchmarks/record.py --label after-pr2    # custom run label
    python benchmarks/record.py --bench bench_batch_executor \
        --history BENCH_batch_executor.json          # any other bench module

Each history entry records the label, UTC timestamp, git revision and a
``benchmarks`` list of ``{name, params, mean, min, max, stddev, rounds}``
(seconds).  The file is human-diffable JSON, so the perf trajectory is
reviewed like any other artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


def git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.CalledProcessError):
        return None


def run_benchmark_json(bench_module: str, pytest_args: List[str]) -> Dict:
    """Run one benchmark module and return pytest-benchmark's JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "benchmark.json")
        command = [
            sys.executable,
            "-m",
            "pytest",
            os.path.join(BENCH_DIR, f"{bench_module}.py"),
            "-q",
            f"--benchmark-json={json_path}",
            *pytest_args,
        ]
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(
                f"benchmark run failed with exit code {completed.returncode}"
            )
        with open(json_path) as handle:
            return json.load(handle)


def summarize(report: Dict) -> List[Dict]:
    """Flatten pytest-benchmark's report into history entries."""
    summary = []
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        summary.append(
            {
                "name": bench.get("name"),
                "params": bench.get("params") or {},
                "mean": stats.get("mean"),
                "min": stats.get("min"),
                "max": stats.get("max"),
                "stddev": stats.get("stddev"),
                "rounds": stats.get("rounds"),
            }
        )
    summary.sort(key=lambda entry: str(entry["name"]))
    return summary


def append_history(history_path: str, entry: Dict) -> Dict:
    history: Dict = {"runs": []}
    if os.path.exists(history_path):
        with open(history_path) as handle:
            content = handle.read().strip()
        if content:
            history = json.loads(content)
            history.setdefault("runs", [])
    history["runs"].append(entry)
    with open(history_path, "w") as handle:
        json.dump(history, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return history


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        default="bench_scalability",
        help="benchmark module under benchmarks/ to run (default: bench_scalability)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="history file to append to (default: BENCH_<bench suffix>.json at the repo root)",
    )
    parser.add_argument(
        "--label",
        default="run",
        help="label stored with this run (e.g. 'before', 'after', 'ci')",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (e.g. -k 'not 120')",
    )
    args = parser.parse_args(argv)

    history_name = args.history or f"BENCH_{args.bench.removeprefix('bench_')}.json"
    history_path = (
        history_name
        if os.path.isabs(history_name)
        else os.path.join(REPO_ROOT, history_name)
    )

    report = run_benchmark_json(args.bench, args.pytest_args)
    entry = {
        "label": args.label,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_revision(),
        "machine": report.get("machine_info", {}).get("node"),
        "benchmarks": summarize(report),
    }
    history = append_history(history_path, entry)
    print(
        f"recorded {len(entry['benchmarks'])} benchmark(s) as {args.label!r} "
        f"in {history_path} ({len(history['runs'])} run(s) total)"
    )


if __name__ == "__main__":
    main()
