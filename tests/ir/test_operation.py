"""Unit tests for repro.ir.operation."""

import pytest

from repro.ir.operation import COMMUTATIVE_TYPES, Operation, OpType


class TestOpType:
    def test_mnemonic_round_trip(self):
        for optype in OpType:
            assert OpType.from_mnemonic(optype.value) is optype

    def test_from_mnemonic_accepts_names(self):
        assert OpType.from_mnemonic("ADD") is OpType.ADD
        assert OpType.from_mnemonic("mul") is OpType.MUL

    def test_from_mnemonic_rejects_unknown(self):
        with pytest.raises(ValueError):
            OpType.from_mnemonic("bogus")

    def test_io_classification(self):
        assert OpType.INPUT.is_io
        assert OpType.OUTPUT.is_io
        assert not OpType.ADD.is_io

    def test_arithmetic_classification(self):
        for optype in (OpType.ADD, OpType.SUB, OpType.MUL, OpType.GT, OpType.LT):
            assert optype.is_arithmetic
        assert not OpType.INPUT.is_arithmetic
        assert not OpType.CONST.is_arithmetic

    def test_virtual_classification(self):
        assert OpType.CONST.is_virtual
        assert OpType.NOP.is_virtual
        assert not OpType.MUL.is_virtual

    def test_classes_are_disjoint(self):
        for optype in OpType:
            assert sum([optype.is_io, optype.is_arithmetic, optype.is_virtual]) <= 1

    def test_commutative_types(self):
        assert OpType.ADD in COMMUTATIVE_TYPES
        assert OpType.MUL in COMMUTATIVE_TYPES
        assert OpType.SUB not in COMMUTATIVE_TYPES

    def test_str_is_mnemonic(self):
        assert str(OpType.MUL) == "*"


class TestOperation:
    def test_label_defaults_to_name(self):
        op = Operation("m1", OpType.MUL)
        assert op.label == "m1"

    def test_explicit_label_kept(self):
        op = Operation("m1", OpType.MUL, label="3*x")
        assert op.label == "3*x"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Operation("", OpType.ADD)

    def test_wrong_optype_rejected(self):
        with pytest.raises(TypeError):
            Operation("x", "+")  # type: ignore[arg-type]

    def test_with_attrs_merges(self):
        op = Operation("m1", OpType.MUL, attrs={"width": 16})
        extended = op.with_attrs(signed=True)
        assert extended.attrs == {"width": 16, "signed": True}
        # the original is unchanged (operations are immutable)
        assert op.attrs == {"width": 16}

    def test_classification_properties(self):
        assert Operation("i", OpType.INPUT).is_io
        assert Operation("m", OpType.MUL).is_arithmetic
        assert Operation("c", OpType.CONST).is_virtual

    def test_str_contains_name_and_type(self):
        assert str(Operation("m1", OpType.MUL)) == "m1:*"

    def test_frozen(self):
        op = Operation("m1", OpType.MUL)
        with pytest.raises(AttributeError):
            op.name = "other"  # type: ignore[misc]
