"""Unit tests for repro.ir.validate."""

import pytest

from repro.ir.cdfg import CDFG
from repro.ir.operation import Operation, OpType
from repro.ir.validate import ValidationError, collect_problems, is_valid, validate_cdfg


def test_valid_graph_passes(diamond):
    assert is_valid(diamond)
    assert validate_cdfg(diamond) is diamond
    assert collect_problems(diamond) == []


def test_input_with_predecessor_flagged():
    g = CDFG()
    g.add_operation(Operation("a", OpType.ADD))
    g.add_operation(Operation("x", OpType.INPUT))
    g.add_operation(Operation("b", OpType.INPUT))
    g.add_edge("b", "a")
    g.add_edge("a", "x")
    problems = collect_problems(g)
    assert any("input operation 'x'" in p for p in problems)


def test_const_with_predecessor_flagged():
    g = CDFG()
    g.add_operation(Operation("i", OpType.INPUT))
    g.add_operation(Operation("c", OpType.CONST))
    g.add_edge("i", "c")
    assert any("constant operation" in p for p in collect_problems(g))


def test_output_with_successor_flagged():
    g = CDFG()
    g.add_operation(Operation("i", OpType.INPUT))
    g.add_operation(Operation("o", OpType.OUTPUT))
    g.add_operation(Operation("a", OpType.ADD))
    g.add_operation(Operation("i2", OpType.INPUT))
    g.add_edge("i", "o")
    g.add_edge("o", "a")
    g.add_edge("i2", "a")
    assert any("output operation 'o' has successors" in p for p in collect_problems(g))


def test_output_needs_exactly_one_operand():
    g = CDFG()
    g.add_operation(Operation("i1", OpType.INPUT))
    g.add_operation(Operation("i2", OpType.INPUT))
    g.add_operation(Operation("o", OpType.OUTPUT))
    g.add_edge("i1", "o")
    g.add_edge("i2", "o")
    assert any("exactly one operand" in p for p in collect_problems(g))


def test_arithmetic_without_operands_flagged():
    g = CDFG()
    g.add_operation(Operation("a", OpType.ADD))
    assert any("no operands" in p for p in collect_problems(g))


def test_arithmetic_with_three_operands_flagged():
    g = CDFG()
    for name in ("i1", "i2", "i3"):
        g.add_operation(Operation(name, OpType.INPUT))
    g.add_operation(Operation("a", OpType.ADD))
    for name in ("i1", "i2", "i3"):
        g.add_edge(name, "a")
    assert any("3 operands" in p for p in collect_problems(g))


def test_validate_raises_with_all_problems():
    g = CDFG()
    g.add_operation(Operation("a", OpType.ADD))
    g.add_operation(Operation("o", OpType.OUTPUT))
    with pytest.raises(ValidationError) as excinfo:
        validate_cdfg(g)
    assert len(excinfo.value.problems) >= 2


def test_benchmarks_are_valid(hal, cosine, elliptic, fir, ar):
    for graph in (hal, cosine, elliptic, fir, ar):
        assert is_valid(graph), collect_problems(graph)
