"""Unit tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import EXIT_INFEASIBLE, build_parser, main
from repro.ir import save
from repro.suite import hal_cdfg


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "-b", "bogus", "-T", "17"])


class TestTable1AndBenchmarks:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Mult (ser.)" in out and "339" in out

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("hal", "cosine", "elliptic"):
            assert name in out


class TestSynthesize:
    def test_feasible_run(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "12", "--schedule", "--datapath"])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthesis of 'hal'" in out
        assert "cycle" in out          # schedule printed
        assert "datapath for" in out   # datapath printed

    def test_infeasible_run_exit_code(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "2"])
        assert code == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err

    def test_verilog_export(self, tmp_path, capsys):
        target = tmp_path / "hal.v"
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "12", "--verilog", str(target)])
        assert code == 0
        assert target.read_text().startswith("module")

    def test_cdfg_file_input(self, tmp_path, capsys):
        path = tmp_path / "hal.json"
        save(hal_cdfg(), path)
        code = main(["synthesize", "--cdfg", str(path), "-T", "17", "-P", "12"])
        assert code == 0
        assert "synthesis of 'hal'" in capsys.readouterr().out


class TestSweepAndProfile:
    def test_sweep(self, capsys):
        code = main(["sweep", "-b", "hal", "-T", "17", "--steps", "3", "--cap", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Power/area sweep" in out
        assert "hal (T=17)" in out

    def test_sweep_infeasible_latency(self, capsys):
        code = main(["sweep", "-b", "hal", "-T", "5", "--steps", "3"])
        assert code == EXIT_INFEASIBLE

    def test_profile_unconstrained(self, capsys):
        code = main(["profile", "-b", "hal"])
        assert code == 0
        assert "power profile" in capsys.readouterr().out

    def test_profile_figure1(self, capsys):
        code = main(["profile", "-b", "hal", "-T", "17", "-P", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "undesired" in out and "desired" in out
