"""Figure 1 — undesired vs. desired power schedule.

The paper's Figure 1 contrasts a schedule whose per-cycle power spikes
above the budget ``P`` (undesired) with one stretched to stay below it
(desired).  This benchmark regenerates both profiles for the HAL
benchmark at T = 17, P = 11:

* *undesired*: plain ASAP schedule with one functional unit per operation
  (no power awareness),
* *desired*: the output of the combined power-constrained synthesis.

The assertions check the defining properties: the undesired profile
exceeds ``P`` in at least one cycle, the desired profile never does, and
the desired schedule still meets the latency bound.
"""

from __future__ import annotations

from repro.power.analysis import flatness, spike_report
from repro.power.profile import PowerProfile
from repro.reporting.experiments import figure1_experiment

BENCHMARK = "hal"
LATENCY = 17
POWER_BUDGET = 11.0


def run_figure1():
    return figure1_experiment(
        benchmark=BENCHMARK, latency=LATENCY, power_budget=POWER_BUDGET
    )


def test_figure1_reproduction(benchmark):
    data = benchmark(run_figure1)

    undesired = PowerProfile.of(data.unconstrained_profile, label="undesired")
    desired = PowerProfile.of(data.constrained_profile, label="desired")

    # Undesired: at least one spike above the power budget.
    spikes = spike_report(undesired, POWER_BUDGET)
    assert spikes.has_spikes
    assert data.unconstrained_peak > POWER_BUDGET

    # Desired: every cycle within the budget, latency bound respected.
    assert not spike_report(desired, POWER_BUDGET).has_spikes
    assert data.constrained_peak <= POWER_BUDGET + 1e-9
    assert len(desired) <= LATENCY

    # Flattening: the desired profile uses the budget more evenly.
    assert flatness(desired) > flatness(undesired)

    print()
    print(data.report)
    print()
    print(f"undesired peak = {data.unconstrained_peak:.1f}  "
          f"(spikes in cycles {list(spikes.violating_cycles)})")
    print(f"desired   peak = {data.constrained_peak:.1f}  (budget {POWER_BUDGET})")
