"""repro.portfolio — race strategy subsets, learn launch order from the store.

No single strategy dominates power-constrained synthesis: the combined
engine is usually fast and good, the ILP is complete but slow, the
heuristics win on particular graph shapes.  A *portfolio* task
(``scheduler="portfolio"``) races a configured subset of concrete
(scheduler, binder) pairs and returns one record:

* **Race mode** (default) returns the canonically-first certified-
  feasible contender — canonical order being the configured strategies
  tuple, which is hashed into the task's content address.  Completion
  order, parallelism and launch order affect only time-to-answer, never
  the answer (see :mod:`repro.portfolio.runner`).
* **Deadline mode** (``portfolio_deadline_s``) collects certified
  results until the deadline and returns the best-area one.

Launch order is ranked by :mod:`repro.store.priors` — per-(family,
constraint-bucket) win/latency statistics mined from the very records
every run already files — so the historically-best contender starts
first and time-to-first-certified drops on warm corpora.

The pieces:

* :mod:`~repro.portfolio.config` — :class:`PortfolioConfig`, the
  reserved option keys, :func:`portfolio_task` / :func:`with_deadline`.
* :mod:`~repro.portfolio.executors` — the injectable execution seam:
  real process workers, inline fallback, and the scripted executor +
  manual clock that make every race ordering deterministic in tests.
* :mod:`~repro.portfolio.runner` — :class:`PortfolioRunner` /
  :func:`run_portfolio`, the decision rules and cache integration.

``portfolio`` also registers in the scheduler registry so tasks naming
it validate everywhere tasks are parsed; the registered callable only
redirects — portfolio tasks execute through
:func:`repro.api.batch.run_task`, which dispatches to the runner.
"""

from __future__ import annotations

from ..api.task import PORTFOLIO_SCHEDULER, TaskError
from ..registries import SCHEDULERS
from .config import (
    DEFAULT_STRATEGIES,
    PortfolioConfig,
    portfolio_task,
    with_deadline,
)
from .executors import (
    Contender,
    InlineExecutor,
    ManualClock,
    ProcessExecutor,
    RaceExecutor,
    ScriptedExecutor,
    default_executor,
)
from .runner import (
    DEADLINE_ERROR,
    EXECUTION_ERROR,
    ContenderResult,
    PortfolioOutcome,
    PortfolioRunner,
    run_portfolio,
)

__all__ = [
    "Contender",
    "ContenderResult",
    "DEADLINE_ERROR",
    "DEFAULT_STRATEGIES",
    "EXECUTION_ERROR",
    "InlineExecutor",
    "ManualClock",
    "PortfolioConfig",
    "PortfolioOutcome",
    "PortfolioRunner",
    "ProcessExecutor",
    "RaceExecutor",
    "ScriptedExecutor",
    "default_executor",
    "portfolio_task",
    "run_portfolio",
    "with_deadline",
]


@SCHEDULERS.register(PORTFOLIO_SCHEDULER)
def _portfolio_scheduler(ctx) -> None:
    """Registry placeholder: portfolio tasks run through ``run_task``.

    The registration makes ``scheduler="portfolio"`` a known name wherever
    tasks are validated (CLI, serve admission, fuzz samplers), but a race
    cannot run *inside* one pipeline pass — it spans several pipelines.
    Reaching this callable means someone built a Pipeline around a
    portfolio task directly.
    """
    raise TaskError(
        "the 'portfolio' scheduler is a meta-strategy: run the task through "
        "repro.api.run_task / run_batch (or repro.portfolio.run_portfolio), "
        "not through a Pipeline pass"
    )


# Pipeline pass gating: no module selection needed (contenders select for
# themselves) and register budgets are accepted (each contender decides
# whether it can honour them).
_portfolio_scheduler.needs_selection = False
_portfolio_scheduler.supports_register_budget = True
