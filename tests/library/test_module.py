"""Unit tests for repro.library.module."""

import pytest

from repro.ir.operation import OpType
from repro.library.module import FUInstance, FUModule, LibraryError, busy_intervals


def adder() -> FUModule:
    return FUModule.make("add", {OpType.ADD}, area=87, latency=1, power=2.5)


def serial_mult() -> FUModule:
    return FUModule.make("Mult (ser.)", {OpType.MUL}, area=103, latency=4, power=2.7)


class TestFUModule:
    def test_basic_attributes(self):
        m = serial_mult()
        assert m.area == 103
        assert m.latency == 4
        assert m.power == 2.7
        assert m.energy == pytest.approx(10.8)

    def test_supports(self):
        alu = FUModule.make("ALU", {OpType.ADD, OpType.SUB, OpType.GT}, 97, 1, 2.5)
        assert alu.supports(OpType.ADD)
        assert alu.supports(OpType.GT)
        assert not alu.supports(OpType.MUL)
        assert alu.is_multifunction
        assert not adder().is_multifunction

    def test_validation(self):
        with pytest.raises(LibraryError):
            FUModule.make("", {OpType.ADD}, 1, 1, 1)
        with pytest.raises(LibraryError):
            FUModule.make("x", set(), 1, 1, 1)
        with pytest.raises(LibraryError):
            FUModule.make("x", {OpType.ADD}, -1, 1, 1)
        with pytest.raises(LibraryError):
            FUModule.make("x", {OpType.ADD}, 1, 0, 1)
        with pytest.raises(LibraryError):
            FUModule.make("x", {OpType.ADD}, 1, 1, -1)

    def test_describe_mentions_everything(self):
        text = serial_mult().describe()
        assert "Mult (ser.)" in text
        assert "103" in text and "4" in text and "2.7" in text

    def test_frozen_and_hashable(self):
        assert len({adder(), adder()}) == 1


class TestFUInstance:
    def test_naming(self):
        inst = FUInstance(module=adder(), index=2)
        assert inst.name == "add#2"
        assert inst.area == 87

    def test_bind_and_unbind(self):
        inst = FUInstance(module=adder(), index=0)
        inst.bind("op1")
        inst.bind("op2")
        assert inst.bound_ops == ["op1", "op2"]
        inst.unbind("op1")
        assert inst.bound_ops == ["op2"]

    def test_double_bind_rejected(self):
        inst = FUInstance(module=adder(), index=0)
        inst.bind("op1")
        with pytest.raises(LibraryError):
            inst.bind("op1")

    def test_unbind_unknown_rejected(self):
        inst = FUInstance(module=adder(), index=0)
        with pytest.raises(LibraryError):
            inst.unbind("ghost")

    def test_busy_intervals(self):
        inst = FUInstance(module=serial_mult(), index=0)
        inst.bind("m1")
        inst.bind("m2")
        spans = busy_intervals(inst, {"m1": 0, "m2": 4})
        assert spans == [(0, 4), (4, 8)]

    def test_busy_intervals_skip_unscheduled(self):
        inst = FUInstance(module=serial_mult(), index=0)
        inst.bind("m1")
        inst.bind("m2")
        assert busy_intervals(inst, {"m1": 2}) == [(2, 6)]
