"""The original one-JSON-file-per-key store, behind the common interface.

This is the layout every cache directory used before the columnar
backend existed — ``<root>/objects/<key[:2]>/<key>.json``, one atomically
written object per content address — preserved byte-for-byte so existing
cache directories keep working untouched and so the columnar backend has
an exact semantic baseline to be measured against.

Range scans exist here too, honestly: a :meth:`LegacyStore.scan` opens
and parses every object file and filters in Python.  That is the cost
curve the columnar backend's indexed scans are benchmarked against in
``benchmarks/bench_store_scale.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .base import ResultStore, StoreError, StoreQuery, row_from_payload


class LegacyStore(ResultStore):
    """One-JSON-object-per-key :class:`ResultStore` backend."""

    backend = "legacy"

    def object_path(self, key: str) -> Path:
        """Where one content address is filed (``objects/<k[:2]>/<k>.json``)."""
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Point access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            payload = json.loads(self.object_path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("record"), dict
        ):
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, indent=1, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.write("\n")
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Scans / inventory
    # ------------------------------------------------------------------ #
    def _object_files(self) -> Iterator[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        yield from objects.glob("*/*.json")

    def scan(
        self,
        query: Optional[StoreQuery] = None,
        *,
        with_records: bool = False,
    ) -> Iterator[Any]:
        query = query or StoreQuery()
        for path in self._object_files():
            key = path.stem
            if query.key_prefix is not None and not key.startswith(query.key_prefix):
                continue  # pruned by filename — the object is never opened
            try:
                payload = json.loads(path.read_text())
                row = row_from_payload(key, payload)
            except (OSError, ValueError, StoreError):
                continue  # corrupt objects are absent, not fatal
            if query.matches(row):
                if with_records:
                    yield row, payload["record"]
                else:
                    yield row

    def count(self) -> int:
        return sum(1 for _ in self._object_files())

    def store_stats(self) -> Dict[str, Any]:
        files = 0
        total_bytes = 0
        for path in self._object_files():
            files += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
        return {
            "backend": self.backend,
            "root": str(self.root),
            "records": files,
            "bytes": total_bytes,
        }
