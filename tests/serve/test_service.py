"""Unit tests for the SynthesisService worker pool."""

import pytest

from repro.api.task import SynthesisTask
from repro.explore import ResultCache
from repro.serve.queue import DONE, FAILED
from repro.serve.service import ServiceError, SynthesisService
from repro.verify.certificate import CertificateError, CertificateReport, Violation


def task(power=12.0, graph="hal", latency=17):
    return SynthesisTask(graph=graph, latency=latency, power_budget=power)


class TestExecution:
    def test_submit_and_wait_produces_records(self, tmp_path):
        with SynthesisService(tmp_path, workers=2) as service:
            jobs = service.submit_many([task(10.0), task(12.0)])
            service.wait(jobs, timeout=60)
        assert all(job.state == DONE for job in jobs)
        assert jobs[0].record["feasible"] and jobs[0].record["area"] == 754.0
        assert jobs[1].record["area"] == 528.0

    def test_infeasible_task_is_done_with_infeasible_record(self, tmp_path):
        with SynthesisService(tmp_path, workers=1) as service:
            (job,) = service.submit_many([task(2.0)])
            service.wait([job], timeout=60)
        assert job.state == DONE
        assert job.record["feasible"] is False
        assert job.record["error"]

    def test_identical_jobs_synthesize_once(self, tmp_path):
        with SynthesisService(tmp_path, workers=4) as service:
            jobs = service.submit_many([task()] * 5)
            service.wait(jobs, timeout=60)
        cached = [job.record["cached"] for job in jobs]
        assert cached.count(False) == 1
        assert cached.count(True) == 4
        assert service.cache.stats.writes == 1

    def test_certificate_failure_marks_job_failed_and_uncached(self, tmp_path, monkeypatch):
        report = CertificateReport(
            graph="hal",
            violations=[Violation("latency", "t", "made up for the test")],
        )

        def rejecting_run_task(*_args, **_kwargs):
            raise CertificateError(report)

        import repro.serve.service as service_module

        monkeypatch.setattr(service_module, "run_task", rejecting_run_task)
        # thread mode: the monkeypatched run_task must be visible to the
        # executing worker, which a child process would not see
        with SynthesisService(tmp_path, workers=1, worker_mode="thread") as service:
            (job,) = service.submit_many([task()])
            service.wait([job], timeout=10)
        assert job.state == FAILED
        assert job.error_type == "CertificateError"
        assert service.cache.record_for_key(job.key) is None
        assert service.summary().certificate_errors == 1

    def test_shared_cache_serves_across_service_restarts(self, tmp_path):
        with SynthesisService(tmp_path, workers=1) as service:
            jobs = service.submit_many([task()])
            service.wait(jobs, timeout=60)
        with SynthesisService(tmp_path, workers=1) as service:
            (job,) = service.submit_many([task()])
            service.wait([job], timeout=60)
            assert job.record["cached"] is True


class TestLifecycle:
    def test_requires_at_least_one_worker(self):
        with pytest.raises(ServiceError):
            SynthesisService(workers=0)

    def test_submit_after_shutdown_raises(self, tmp_path):
        service = SynthesisService(tmp_path, workers=1).start()
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(task())

    def test_drain_completes_accepted_work(self, tmp_path):
        service = SynthesisService(tmp_path, workers=2).start()
        jobs = service.submit_many([task(p) for p in (9.0, 10.0, 11.0, 12.0)])
        service.shutdown(drain=True)
        assert all(job.state == DONE for job in jobs)
        assert not service.running

    def test_pending_jobs_resume_on_next_boot(self, tmp_path):
        # Never started: everything stays pending in the persistent queue.
        cold = SynthesisService(tmp_path, workers=1)
        cold.submit_many([task(10.0), task(12.0)])
        cold.queue.close()

        service = SynthesisService(tmp_path, workers=1)
        assert service.queue.depth == 2  # replayed, workers not started yet
        with service:
            service.wait(service.queue.jobs(), timeout=60)
        assert all(job.state == DONE for job in service.queue.jobs())


class TestIntrospection:
    def test_stats_shape_and_batch_summary_agreement(self, tmp_path):
        with SynthesisService(tmp_path, workers=2) as service:
            jobs = service.submit_many([task(10.0), task(10.0), task(2.0)])
            service.wait(jobs, timeout=60)
            stats = service.stats()
        assert stats["queue"]["jobs"]["done"] == 3
        assert stats["summary"]["total"] == 3
        assert stats["summary"]["feasible"] == 2
        assert stats["summary"]["cache_hits"] == 1
        assert stats["summary"]["computed"] == 2
        assert stats["cache"]["writes"] == 2
        engine = stats["per_strategy"]["engine"]
        assert engine["jobs"] == 3
        assert engine["cache_hits"] == 1
        assert engine["computed"] == 2
        assert engine["mean_computed_seconds"] > 0

    def test_healthz_reports_running_then_stopped(self, tmp_path):
        service = SynthesisService(tmp_path, workers=1).start()
        assert service.healthz()["status"] == "ok"
        service.shutdown()
        assert service.healthz()["status"] == "stopped"

    def test_result_lookup_by_content_address(self, tmp_path):
        with SynthesisService(tmp_path, workers=1) as service:
            (job,) = service.submit_many([task()])
            service.wait([job], timeout=60)
            payload = service.result(job.key)
        assert payload["key"] == job.key
        assert payload["record"]["feasible"] is True
        assert service.result("0" * 64) is None

    def test_unverifiable_foreign_cache_records_are_withheld(self, tmp_path):
        # Some other producer writes a feasible verify=False record into
        # the shared cache directory: its certification is unprovable, so
        # /results must not serve it as certified.
        from repro.api.batch import run_task

        foreign = SynthesisTask(
            graph="hal", latency=17, power_budget=12.0, verify=False
        )
        run_task(foreign, keep_result=False, cache=ResultCache(tmp_path / "cache"))

        service = SynthesisService(tmp_path, workers=1)
        assert service.cache.record_for_key(foreign.cache_key()) is not None
        assert service.result(foreign.cache_key()) is None

        # The same verify=False spec computed by the service itself *is*
        # served: workers run the run_task(verify=True) gate regardless.
        own = SynthesisTask(graph="hal", latency=17, power_budget=10.0, verify=False)
        with service:
            (job,) = service.submit_many([own])
            service.wait([job], timeout=60)
            assert service.result(job.key) is not None

            # Submitting the *foreign* spec yields a cache hit, which is
            # returned as-is without re-certification — it must not
            # launder the uncertified record into servability.
            (hit,) = service.submit_many([foreign])
            service.wait([hit], timeout=60)
            assert hit.record["cached"] is True
            assert service.result(foreign.cache_key()) is None

    def test_wait_timeout_raises(self, tmp_path):
        service = SynthesisService(tmp_path, workers=1)  # never started
        job = service.submit(task())
        with pytest.raises(ServiceError):
            service.wait([job], timeout=0.05)
