"""End-to-end serving test: the ISSUE-5 acceptance scenario.

Boots the full stack (HTTP server on an ephemeral port → service →
persistent queue → shared result cache), submits the *same* 20-task
batch from two concurrent clients, and proves:

* **single-synthesis semantics** — exactly 20 synthesis runs happen in
  total; every one of the second client's jobs is answered from the
  cache (``cached=True``),
* **certified results only** — every feasible record served over
  ``GET /results/<key>`` corresponds to a result that passes the
  independent certificate checker when recomputed in-process,
* **shared accounting** — ``/stats`` reports the same hit/computed
  split the records themselves show.
"""

import threading

import pytest

from repro.api.batch import run_task
from repro.serve import Client, start_server
from repro.verify import check_certificate

#: The 20-task batch: two benchmarks × ten power budgets, all fast.
BATCH = [
    {"graph": "hal", "latency": 17, "power_budget": float(p)}
    for p in (8, 9, 10, 11, 12, 14, 16, 20, 25, 30)
] + [
    {"graph": "tree", "latency": 12, "power_budget": float(p)}
    for p in (6, 8, 10, 12, 14, 16, 18, 20, 25, 30)
]


@pytest.fixture(scope="module")
def served_batches(tmp_path_factory):
    """Run the two-client scenario once; every test inspects the outcome."""
    state_dir = tmp_path_factory.mktemp("serve-e2e")
    with start_server(workers=4, state_dir=state_dir) as handle:
        first = Client(handle.url)
        second = Client(handle.url)

        # Client one submits the batch; while its jobs are still being
        # synthesized, client two concurrently submits the identical batch
        # and both poll to completion in parallel threads.
        first_jobs = first.submit(BATCH)
        second_jobs = second.submit(BATCH)

        outcomes = {}

        def drain(name, client, jobs):
            outcomes[name] = client.wait(jobs, timeout=300)

        threads = [
            threading.Thread(target=drain, args=("first", first, first_jobs)),
            threading.Thread(target=drain, args=("second", second, second_jobs)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)

        stats = first.stats()
        results = {
            job["key"]: first.result(job["key"])
            for job in first_jobs
            if first.job(job["id"])["record"]["feasible"]
        }
    return outcomes, stats, results


def test_all_forty_jobs_finish(served_batches):
    outcomes, _stats, _results = served_batches
    assert len(outcomes["first"]) == 20
    assert len(outcomes["second"]) == 20
    for jobs in outcomes.values():
        assert all(job["state"] == "done" for job in jobs)


def test_second_client_is_answered_entirely_from_cache(served_batches):
    outcomes, stats, _results = served_batches
    assert all(job["record"]["cached"] for job in outcomes["second"]), (
        "every job of the concurrently-submitted identical batch must be "
        "a cache hit"
    )
    # exactly one synthesis per distinct task across both clients
    flags = [job["record"]["cached"] for job in outcomes["first"]] + [
        job["record"]["cached"] for job in outcomes["second"]
    ]
    assert flags.count(False) == len(BATCH)
    assert stats["summary"]["computed"] == len(BATCH)
    assert stats["summary"]["cache_hits"] == len(BATCH)
    assert stats["cache"]["writes"] == len(BATCH)


def test_both_clients_see_identical_metrics(served_batches):
    outcomes, _stats, _results = served_batches
    first = {job["key"]: job["record"] for job in outcomes["first"]}
    second = {job["key"]: job["record"] for job in outcomes["second"]}
    assert set(first) == set(second)
    for key, record in first.items():
        twin = second[key]
        assert (record["feasible"], record["area"], record["peak_power"]) == (
            twin["feasible"],
            twin["area"],
            twin["peak_power"],
        )


def test_every_served_result_is_certificate_clean(served_batches):
    _outcomes, _stats, results = served_batches
    assert results, "the batch must contain feasible points"
    for key, served in results.items():
        # The server stores scalar metrics only; recompute the task
        # in-process and certify the full result independently, then
        # check the served scalars match the certified result.
        assert served.task.cache_key() == key
        record = run_task(served.task)
        report = check_certificate(record.result)
        assert report.ok, report.describe()
        assert served.area == record.area
        assert served.peak_power == record.peak_power
        assert served.latency == record.latency


def test_stats_expose_queue_and_strategy_counters(served_batches):
    _outcomes, stats, _results = served_batches
    assert stats["queue"]["depth"] == 0
    assert stats["queue"]["jobs"]["done"] == 2 * len(BATCH)
    engine = stats["per_strategy"]["engine"]
    assert engine["jobs"] == 2 * len(BATCH)
    assert engine["computed"] == len(BATCH)
    assert engine["cache_hits"] == len(BATCH)
