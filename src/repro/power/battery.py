"""Analytical battery model with rate-capacity and peak-current effects.

The paper's motivation is that the charge actually deliverable by a
battery depends strongly on the *current profile* of the load: drawing
current in high peaks wastes capacity, and once the peak current exceeds a
threshold the usable lifetime "starts dropping dramatically", especially
for low-cost batteries — with 20–30 % lifetime extension reported for
battery-aware designs ([1] Luo & Jha, [2] Lahiri et al.).

We do not have the proprietary battery traces used by those works, so —
per the reproduction's substitution rule — this module provides a small
analytical model that captures the two effects the paper relies on:

1. **Rate-capacity (Peukert) effect** — the effective charge drained in a
   cycle grows super-linearly with the instantaneous current:
   ``effective = current ** alpha`` with ``alpha >= 1``.
2. **Peak-current threshold** — current above ``threshold`` is penalized
   by an additional multiplicative factor, modelling the dramatic
   drop-off the paper describes.  Low-quality batteries have a lower
   threshold and a larger penalty.

The absolute numbers are synthetic; only *relative* comparisons between
schedules (spiky vs. flattened) are meaningful, which is exactly how the
lifetime benchmark uses the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


class BatteryError(Exception):
    """Raised for invalid battery configurations or operations."""


@dataclass(frozen=True)
class BatteryParameters:
    """Parameters of the analytical battery model.

    Attributes:
        capacity: Nominal charge capacity in (power units × cycles),
            matching the unit-less power numbers of the FU library.
        peukert_alpha: Rate-capacity exponent (1.0 disables the effect).
        peak_threshold: Current above which the penalty factor applies.
        peak_penalty: Multiplier applied to the *excess* current above the
            threshold (1.0 disables the effect).
        supply_voltage: Used to convert power to current (default 1.0, so
            power and current coincide).
    """

    capacity: float
    peukert_alpha: float = 1.15
    peak_threshold: float = 15.0
    peak_penalty: float = 3.0
    supply_voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise BatteryError("battery capacity must be positive")
        if self.peukert_alpha < 1.0:
            raise BatteryError("Peukert exponent must be >= 1")
        if self.peak_threshold <= 0:
            raise BatteryError("peak threshold must be positive")
        if self.peak_penalty < 1.0:
            raise BatteryError("peak penalty must be >= 1")
        if self.supply_voltage <= 0:
            raise BatteryError("supply voltage must be positive")


def low_quality_battery(capacity: float = 5000.0) -> BatteryParameters:
    """A cheap battery: strong rate-capacity effect, low peak threshold."""
    return BatteryParameters(
        capacity=capacity, peukert_alpha=1.3, peak_threshold=12.0, peak_penalty=4.0
    )


def high_quality_battery(capacity: float = 5000.0) -> BatteryParameters:
    """A good battery: mild rate-capacity effect, high peak threshold."""
    return BatteryParameters(
        capacity=capacity, peukert_alpha=1.05, peak_threshold=25.0, peak_penalty=1.5
    )


class Battery:
    """Stateful battery draining under a per-cycle current load."""

    def __init__(self, parameters: BatteryParameters) -> None:
        self.parameters = parameters
        self._remaining = parameters.capacity

    @property
    def remaining_charge(self) -> float:
        return max(0.0, self._remaining)

    @property
    def depleted(self) -> bool:
        return self._remaining <= 0.0

    @property
    def state_of_charge(self) -> float:
        """Remaining charge as a fraction of nominal capacity."""
        return self.remaining_charge / self.parameters.capacity

    def effective_drain(self, power: float) -> float:
        """Charge effectively removed by one cycle drawing ``power``.

        Combines the Peukert exponent with the peak-threshold penalty.
        """
        if power < 0:
            raise BatteryError("power draw cannot be negative")
        current = power / self.parameters.supply_voltage
        if current == 0:
            return 0.0
        drain = current ** self.parameters.peukert_alpha
        excess = current - self.parameters.peak_threshold
        if excess > 0:
            drain += excess * (self.parameters.peak_penalty - 1.0)
        return drain

    def drain_cycle(self, power: float) -> float:
        """Drain one cycle at ``power``; returns the effective charge removed."""
        removed = self.effective_drain(power)
        self._remaining -= removed
        return removed

    def drain_profile(self, profile: Iterable[float]) -> float:
        """Drain one pass of a per-cycle power profile; returns charge removed."""
        return sum(self.drain_cycle(power) for power in profile)

    def reset(self) -> None:
        self._remaining = self.parameters.capacity


def iterations_until_depleted(
    parameters: BatteryParameters,
    profile: Sequence[float],
    max_iterations: int = 10_000_000,
) -> int:
    """Number of complete profile repetitions the battery can sustain.

    The profile is treated as the power trace of one iteration of the
    synthesized design (one schedule period); the returned count is the
    paper's notion of *battery lifetime* in iterations.

    Raises:
        BatteryError: if the profile drains nothing (lifetime would be
            unbounded) or is empty.
    """
    if not profile:
        raise BatteryError("cannot estimate lifetime of an empty profile")
    battery = Battery(parameters)
    per_iteration = battery.drain_profile(profile)
    if per_iteration <= 0:
        raise BatteryError("profile drains no charge; lifetime is unbounded")
    # Fast path: the drain is identical every iteration, so divide.
    full_iterations = int(parameters.capacity // per_iteration)
    return min(full_iterations, max_iterations)


def lifetime_extension(
    parameters: BatteryParameters,
    reference_profile: Sequence[float],
    improved_profile: Sequence[float],
) -> float:
    """Relative lifetime gain of ``improved_profile`` over ``reference_profile``.

    Returns (improved - reference) / reference, e.g. 0.25 for a 25 %
    extension — directly comparable to the 20–30 % figure the paper cites.
    """
    reference = iterations_until_depleted(parameters, reference_profile)
    improved = iterations_until_depleted(parameters, improved_profile)
    if reference == 0:
        raise BatteryError("reference profile depletes the battery immediately")
    return (improved - reference) / reference
