"""Unit tests for the RTL datapath model."""

import pytest

from repro.datapath.rtl import Datapath, DatapathError
from repro.library.selection import MinAreaSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule


def build_datapath(cdfg, library, share=False):
    """One instance per operation (or shared per module when share=True)."""
    selection = MinAreaSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    schedule = asap_schedule(cdfg, delays, powers)
    datapath = Datapath(cdfg=cdfg, schedule=schedule)
    for op_name in cdfg.schedulable_operations():
        instance = datapath.add_instance(selection[op_name])
        datapath.bind(op_name, instance.name)
    _ = share
    return datapath


class TestConstruction:
    def test_add_instance_numbers_sequentially(self, diamond, library):
        datapath = Datapath(cdfg=diamond, schedule=None)
        first = datapath.add_instance(library.module("add"))
        second = datapath.add_instance(library.module("add"))
        other = datapath.add_instance(library.module("sub"))
        assert first.name == "add#0"
        assert second.name == "add#1"
        assert other.name == "sub#0"

    def test_bind_checks_everything(self, diamond, library):
        datapath = Datapath(cdfg=diamond, schedule=None)
        adder = datapath.add_instance(library.module("add"))
        datapath.bind("left", adder.name)
        with pytest.raises(DatapathError):
            datapath.bind("left", adder.name)          # double bind
        with pytest.raises(DatapathError):
            datapath.bind("bottom", "ghost#0")          # unknown instance
        with pytest.raises(DatapathError):
            datapath.bind("right", adder.name)          # adder cannot multiply

    def test_finalize_requires_full_binding(self, diamond, library):
        selection = MinAreaSelection().select(diamond, library)
        delays = selection_delays(selection, diamond)
        powers = selection_powers(selection, diamond)
        schedule = asap_schedule(diamond, delays, powers)
        datapath = Datapath(cdfg=diamond, schedule=schedule)
        with pytest.raises(DatapathError):
            datapath.finalize()


class TestDerived:
    def test_area_breakdown(self, hal, library):
        datapath = build_datapath(hal, library)
        datapath.finalize()
        area = datapath.area()
        expected_fu = sum(inst.area for inst in datapath.instances.values())
        assert area.functional_units == pytest.approx(expected_fu)
        assert area.registers > 0
        assert area.total >= area.functional_units

    def test_allocation_summary(self, hal, library):
        datapath = build_datapath(hal, library)
        summary = datapath.allocation_summary()
        assert summary["Mult (ser.)"] == 6
        assert summary["input"] == 5
        assert datapath.instance_count() == len(hal.schedulable_operations())
        assert datapath.instance_count("Mult (ser.)") == 6

    def test_instance_of_and_operations_on(self, diamond, library):
        datapath = build_datapath(diamond, library)
        instance = datapath.instance_of("left")
        assert "left" in datapath.operations_on(instance.name)
        with pytest.raises(DatapathError):
            datapath.operations_on("ghost#0")

    def test_operation_powers_follow_binding(self, hal, library):
        datapath = build_datapath(hal, library)
        powers = datapath.operation_powers()
        assert powers["m1_3x"] == pytest.approx(2.7)
        assert powers["const_3"] == 0.0

    def test_no_conflicts_for_private_instances(self, hal, library):
        datapath = build_datapath(hal, library)
        assert datapath.check_no_conflicts() == []

    def test_conflict_detected_for_overlapping_sharing(self, wide, library):
        selection = MinAreaSelection().select(wide, library)
        delays = selection_delays(selection, wide)
        powers = selection_powers(selection, wide)
        schedule = asap_schedule(wide, delays, powers)
        datapath = Datapath(cdfg=wide, schedule=schedule)
        shared = datapath.add_instance(library.module("Mult (ser.)"))
        datapath.bind("m0", shared.name)
        datapath.bind("m1", shared.name)  # both run in the same cycles under ASAP
        assert datapath.check_no_conflicts()


class TestReports:
    def test_describe(self, diamond, library):
        datapath = build_datapath(diamond, library)
        datapath.finalize()
        text = datapath.describe()
        assert "datapath for 'diamond'" in text
        assert "registers:" in text

    def test_structural_verilog(self, diamond, library):
        datapath = build_datapath(diamond, library)
        datapath.finalize()
        verilog = datapath.to_structural_verilog()
        assert verilog.startswith("module diamond_datapath")
        assert "endmodule" in verilog
        assert "Mult_ser" in verilog
