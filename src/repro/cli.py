"""Command-line interface.

``repro <command>`` (or ``python -m repro <command>``) exposes the main
flows without writing any Python:

* ``table1`` — print the functional-unit library (the paper's Table 1),
* ``benchmarks`` — list the registered benchmark CDFGs,
* ``synthesize`` — run synthesis on a benchmark (or a CDFG JSON file)
  with any registered scheduler/binder and print the result,
* ``sweep`` — the Figure-2 power/area sweep for one benchmark and latency,
* ``profile`` — print the per-cycle power profile of the unconstrained vs.
  the power-constrained design (Figure 1 for any benchmark),
* ``batch`` — run a JSON file of :class:`~repro.api.task.SynthesisTask`
  specs through the parallel batch executor and print a result table,
* ``fuzz`` — differential fuzzing: seeded tasks from every scenario
  family run through every scheduler × binder pair, every feasible
  result certified from scratch (see :mod:`repro.verify`),
* ``store`` — inspect and maintain a result-store directory: ``stats``,
  ``compact``, ``migrate`` (legacy ↔ columnar, verified bit-identical)
  and ``query`` (columnar range scans; see :mod:`repro.store`),
* ``priors`` — show the portfolio launch priors a result store mines
  (per-family, per-constraint-bucket win/latency statistics; see
  :mod:`repro.store.priors`),
* ``serve`` — run the long-lived HTTP synthesis service (persistent job
  queue + worker pool + shared result cache; see :mod:`repro.serve`),
* ``submit`` — send a batch file to a running server and (optionally)
  wait for the certified results.

Every command builds a ``SynthesisTask`` and routes it through the shared
:class:`~repro.api.pipeline.Pipeline`, so the CLI, the library API and
the experiment drivers are the same code path.  Commands return a process
exit code of 0 on success and 2 on infeasible constraint sets so they can
be scripted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .api.batch import Sweep, TaskResult, run_batch, run_task
from .api.task import SynthesisTask, TaskError, tasks_from_json
from .explore import ResultCache, adaptive_power_sweep
from .ir import load as load_cdfg
from .ir.serialize import to_dict as cdfg_to_dict
from .library import default_library
from .power.profile import profile_from_schedule
from .registries import BINDERS, SCHEDULERS, UnknownStrategyError
from .reporting.experiments import figure1_experiment, table1_report
from .reporting.series import Series, ascii_plot
from .reporting.table import render_table
from .suite.generators import family_names
from .suite.registry import benchmark_names, build_benchmark, get_benchmark
from .synthesis.explore import (
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
)
from .synthesis.result import SynthesisError
from .verify import FuzzConfig, check_certificate, run_fuzz

#: Exit code used for infeasible constraint combinations.
EXIT_INFEASIBLE = 2

#: Exit code used when certificate / differential violations are found.
EXIT_VIOLATIONS = 3


def _graph_spec(args: argparse.Namespace):
    """Resolve the --benchmark / --cdfg options into a task graph spec."""
    if args.cdfg is not None:
        return cdfg_to_dict(load_cdfg(Path(args.cdfg)))
    return args.benchmark


def _open_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """Build the result cache requested by ``--cache-dir`` / ``--resume``.

    ``--cache-dir`` alone records every computed point (write-only), so a
    later run *can* resume; adding ``--resume`` also consults the cache,
    turning previously computed points into instant hits.  ``--resume``
    without a cache directory is a usage error.
    """
    if getattr(args, "resume", False) and args.cache_dir is None:
        raise SystemExit("--resume requires --cache-dir (nowhere to resume from)")
    if args.cache_dir is None:
        return None
    backend = getattr(args, "cache_backend", "auto")
    return ResultCache(
        args.cache_dir,
        read=bool(getattr(args, "resume", False)),
        backend=None if backend == "auto" else backend,
    )


def _print_cache_summary(cache: Optional[ResultCache]) -> None:
    if cache is None:
        return
    stats = cache.stats
    # len(cache) counts the on-disk store, which parallel workers write
    # directly — the parent's own `writes` counter would undercount.
    print(
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.writes} new record(s) in this process; "
        f"{len(cache)} on disk in {cache.root} [{cache.backend}]"
    )


def _cmd_table1(_: argparse.Namespace) -> int:
    print(table1_report())
    return 0


def _cmd_benchmarks(_: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        spec = get_benchmark(name)
        graph = spec.build()
        rows.append(
            [
                name,
                len(graph),
                graph.num_edges(),
                ", ".join(str(t) for t in spec.latencies),
                spec.in_paper,
            ]
        )
    print(
        render_table(
            ["benchmark", "operations", "edges", "paper latencies", "in paper"],
            rows,
            title="Registered benchmark CDFGs",
        )
    )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    options = {}
    if args.scheduler == "portfolio":
        if args.contenders:
            options["portfolio_strategies"] = list(args.contenders)
        if args.deadline is not None:
            options["portfolio_deadline_s"] = args.deadline
    elif args.contenders or args.deadline is not None:
        raise SystemExit("--contenders/--deadline require --scheduler portfolio")
    task = SynthesisTask(
        graph=_graph_spec(args),
        latency=args.latency,
        power_budget=args.power,
        register_budget=args.registers,
        scheduler=args.scheduler,
        binder=args.binder,
        options=options,
    )
    cache = _open_cache(args)
    if args.scheduler == "portfolio":
        return _synthesize_portfolio(args, task, cache)
    record = run_task(task, cache=cache)
    if not record.feasible:
        print(f"infeasible: {record.error}", file=sys.stderr)
        return EXIT_INFEASIBLE
    result = record.result
    if result is None:
        # a --resume cache hit carries scalar metrics only
        print(
            f"{task.scheduler} (cached): area={record.area:g}  "
            f"peak={record.peak_power:g}  latency={record.latency}"
        )
        if args.schedule or args.datapath or args.verilog is not None or args.verify:
            raise SystemExit(
                "--schedule/--datapath/--verilog/--verify need a full "
                "synthesis result, but this point was answered from the "
                "cache (scalar metrics only); re-run without --resume"
            )
        return 0
    print(result.describe())
    if args.verify:
        report = check_certificate(result)
        print(report.describe())
        if not report.ok:
            return EXIT_VIOLATIONS
    if args.schedule:
        print()
        print(result.schedule.describe())
    if args.datapath:
        print()
        print(result.datapath.describe())
    if args.verilog is not None:
        Path(args.verilog).write_text(result.datapath.to_structural_verilog())
        print(f"\nwrote structural Verilog skeleton to {args.verilog}")
    return 0


def _synthesize_portfolio(
    args: argparse.Namespace,
    task: SynthesisTask,
    cache: Optional[ResultCache] = None,
) -> int:
    """Race a portfolio task and print who won (the ``--explain`` view).

    Portfolio records carry scalar metrics only (the full datapath lives
    with the winning concrete strategy), so the result-object options of
    the plain synthesize path do not apply here.  With ``--cache-dir``
    the race files its results for later runs; adding ``--resume`` also
    pre-answers warm contenders and launches in mined-prior order.
    """
    from .portfolio import run_portfolio

    if args.schedule or args.datapath or args.verilog is not None or args.verify:
        raise SystemExit(
            "--schedule/--datapath/--verilog/--verify need a full synthesis "
            "result; a portfolio race returns scalar metrics — re-run the "
            "winning strategy directly for those views"
        )
    try:
        outcome = run_portfolio(task, cache=cache)
    except TaskError as exc:
        raise SystemExit(f"bad portfolio task: {exc}")
    record = outcome.record
    if cache is not None and cache.write and outcome.cacheable:
        # file the portfolio-level verdict too (run_task does the same),
        # so a --resume re-race answers without launching anything
        cache.put(task, record)
    if not record.feasible:
        print(f"infeasible: {record.error}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print(
        f"portfolio winner: {outcome.winner}  "
        f"area={record.area:g}  peak={record.peak_power:g}  "
        f"latency={record.latency}  ({outcome.elapsed:.2f}s)"
    )
    print(f"launch order: {', '.join(outcome.launch_order)}"
          + ("  (prior-ranked)" if outcome.priors_ranked else ""))
    rows = [
        [
            entry["label"],
            entry["status"],
            f"{entry['area']:g}" if entry.get("area") is not None else "-",
            f"{entry['elapsed']:.2f}" if entry.get("elapsed") is not None else "-",
            entry.get("error_type") or "-",
            "yes" if entry.get("from_cache") else "no",
        ]
        for entry in outcome.contenders
    ]
    print(
        render_table(
            ["contender", "status", "area", "sec", "error", "cached"],
            rows,
            title="Race contenders (canonical order)",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    library = default_library()
    if args.cdfg is not None:
        cdfg = load_cdfg(Path(args.cdfg))
    else:
        cdfg = build_benchmark(args.benchmark)
    cache = _open_cache(args)
    if args.adaptive and (args.steps is not None or args.jobs > 1):
        raise SystemExit(
            "--adaptive probes budgets by bisection: it is grid-free and "
            "sequential, so --steps/--jobs do not apply"
        )
    if not args.adaptive and args.resolution is not None:
        raise SystemExit("--resolution only applies to --adaptive sweeps")
    try:
        if args.adaptive:
            sweep = adaptive_power_sweep(
                cdfg,
                library,
                args.latency,
                p_max=args.cap,
                resolution=args.resolution if args.resolution is not None else 1.0,
                cache=cache,
                cumulative_best=not args.raw,
            )
        else:
            p_min = minimum_feasible_power(cdfg, library, args.latency, cache=cache)
            steps = args.steps if args.steps is not None else 8
            budgets = default_power_grid(p_min, args.cap, steps)
            sweep = power_area_sweep(
                cdfg,
                library,
                args.latency,
                budgets,
                cumulative_best=not args.raw,
                jobs=args.jobs,
                cache=cache,
            )
    except SynthesisError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    rows = [
        [point.power_budget, point.feasible, point.area, point.peak_power]
        for point in sweep.points
    ]
    print(
        render_table(
            ["P budget", "feasible", "area", "peak power"],
            rows,
            title=f"Power/area sweep: {cdfg.name} (T={args.latency})",
        )
    )
    series = Series(f"{cdfg.name} (T={args.latency})")
    for point in sweep.feasible_points():
        series.add(point.power_budget, point.area)
    print()
    print(ascii_plot([series], x_label="power budget", y_label="area"))
    if args.adaptive:
        print(
            f"\nadaptive refinement: {sweep.probes} probe(s), "
            f"{sweep.synthesis_calls} synthesis run(s), "
            f"resolution {sweep.resolution:g}"
        )
    _print_cache_summary(cache)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.power is None:
        record = run_task(SynthesisTask.naive(_graph_spec(args)))
        print(profile_from_schedule(record.result.schedule).describe())
        return 0
    try:
        data = figure1_experiment(
            benchmark=args.benchmark, latency=args.latency, power_budget=args.power
        )
    except SynthesisError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print(data.report)
    return 0


def _batch_rows(records: List[TaskResult]) -> List[List[object]]:
    rows: List[List[object]] = []
    for index, record in enumerate(records):
        task = record.task
        rows.append(
            [
                index,
                task.label or task.graph_name,
                task.scheduler,
                task.latency if task.latency is not None else "-",
                f"{task.power_budget:g}" if task.power_budget is not None else "inf",
                "yes" if record.feasible else "no",
                f"{record.area:g}" if record.area is not None else "-",
                f"{record.peak_power:.2f}" if record.peak_power is not None else "-",
                record.latency if record.latency is not None else "-",
                f"{record.elapsed:.2f}",
            ]
        )
    return rows


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        tasks = tasks_from_json(Path(args.file).read_text())
    except (TaskError, ValueError, TypeError, OSError) as exc:
        # ValueError covers json.JSONDecodeError; TypeError catches
        # type-level spec mistakes (e.g. a scalar where a list belongs).
        print(f"bad batch file: {exc}", file=sys.stderr)
        return 1

    cache = _open_cache(args)
    try:
        records = run_batch(tasks, jobs=args.jobs, keep_results=False, cache=cache)
    except (TaskError, UnknownStrategyError) as exc:
        print(f"bad task: {exc}", file=sys.stderr)
        return 1
    summary = records.summary

    print(
        render_table(
            ["#", "task", "scheduler", "T", "P", "feasible", "area", "peak", "cycles", "sec"],
            _batch_rows(records),
            title=f"Batch results ({args.file})",
        )
    )
    print(
        f"\n{summary.feasible}/{summary.total} tasks feasible in "
        f"{summary.elapsed:.2f}s (jobs={args.jobs}); "
        f"{summary.cache_hits} cache hit(s), {summary.computed} computed"
    )
    _print_cache_summary(cache)
    for record in records:
        if not record.feasible:
            print(f"  task {record.task.describe()}: {record.error}")
    if args.output is not None:
        Path(args.output).write_text(
            json.dumps(
                {
                    "summary": summary.to_dict(),
                    "records": [record.to_dict() for record in records],
                },
                indent=2,
            )
        )
        print(f"wrote structured results to {args.output}")
    # A structural CertificateError is a bug (a produced result the
    # independent checker rejected), never sweep data — gate on it first.
    if summary.certificate_errors:
        print(
            f"{summary.certificate_errors} task(s) failed certificate "
            "verification (structural violations, not infeasibility)",
            file=sys.stderr,
        )
        return EXIT_VIOLATIONS
    # Partial infeasibility is normal sweep data; a batch where *nothing*
    # was feasible honours the scriptable infeasible exit code.
    return 0 if summary.feasible else EXIT_INFEASIBLE


def _cmd_fuzz(args: argparse.Namespace) -> int:
    config = FuzzConfig(
        families=tuple(args.families or ()),
        seeds=args.seeds,
        base_seed=args.base_seed,
        schedulers=tuple(args.schedulers or ()),
        binders=tuple(args.binders or ()),
        max_slack=args.max_slack,
        register_fraction=args.register_fraction,
        portfolio_fraction=args.portfolio_fraction,
    )
    cache = _open_cache(args)
    started = time.perf_counter()
    report = run_fuzz(config, cache=cache)
    elapsed = time.perf_counter() - started

    print(report.describe())
    print(f"\n{len(report.cases)} case(s) in {elapsed:.2f}s")
    _print_cache_summary(cache)
    if args.output is not None:
        payload = report.to_dict()
        payload["elapsed"] = elapsed
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"wrote structured fuzz report to {args.output}")
    return 0 if report.ok else EXIT_VIOLATIONS


def _parse_range(text: Optional[str], name: str):
    """Parse a ``repro store query`` range: ``X`` exact or ``LO:HI`` inclusive."""
    if text is None:
        return None
    if ":" not in text:
        try:
            return float(text)
        except ValueError:
            raise SystemExit(f"--{name} expects a number or LO:HI, got {text!r}")
    lo_text, _, hi_text = text.partition(":")
    try:
        lo = float(lo_text) if lo_text else None
        hi = float(hi_text) if hi_text else None
    except ValueError:
        raise SystemExit(f"--{name} expects a number or LO:HI, got {text!r}")
    return (lo, hi)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from .store import open_store

    stats = open_store(args.dir).store_stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store: {stats['root']}  backend={stats['backend']}")
    print(f"  records: {stats['records']}   bytes: {stats['bytes']}")
    for shard in stats.get("shards", []):
        print(
            f"  shard {shard['prefix']}: gen={shard['generation']} "
            f"compacted={shard['compacted_rows']} tail={shard['tail_rows']} "
            f"segments={shard['segments']} bytes={shard['bytes']}"
        )
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from .store import open_store

    store = open_store(args.dir)
    report = store.compact()
    if report.get("shards") is None:
        print(f"nothing to compact: {args.dir} is a {store.backend} store")
        return 0
    print(
        f"compacted {report['compacted']} record(s) across {report['shards']} "
        f"shard(s); {report['removed']} consumed segment(s) removed"
    )
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    from .store import migrate_store, open_store, verify_migration

    source = open_store(args.source)
    destination = open_store(args.destination, backend=args.to)
    report = migrate_store(source, destination)
    print(
        f"migrated {report['records']} record(s) "
        f"(+{report['replayed']} replayed from the journal) "
        f"{report['source_backend']} -> {report['destination_backend']}"
    )
    if not args.no_verify:
        verified = verify_migration(source, destination)
        print(f"verified: {verified['records']} record(s) bit-identical")
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    from .store import StoreQuery, open_store

    store = open_store(args.dir)
    query = StoreQuery(
        family=args.family,
        scheduler=args.scheduler,
        binder=args.binder,
        selector=args.selector,
        key_prefix=args.key_prefix,
        feasible=(
            True if args.feasible else False if args.infeasible else None
        ),
        latency=_parse_range(args.latency, "latency"),
        power=_parse_range(args.power, "power"),
        register=_parse_range(args.register, "register"),
    )
    rows = []
    matched = 0
    for row in store.scan(query):
        matched += 1
        if args.limit is not None and matched > args.limit:
            continue  # keep counting, stop collecting
        rows.append(row)
    if args.json:
        shown = (row.to_dict() for row in rows)
        print(json.dumps({"total": matched, "rows": list(shown)}, indent=2))
        return 0
    table_rows = [
        [
            row.key[:12],
            row.family or "<inline>",
            row.scheduler,
            row.binder,
            row.latency if row.latency is not None else "-",
            f"{row.power_budget:g}" if row.power_budget is not None else "-",
            row.register_budget if row.register_budget is not None else "-",
            "yes" if row.feasible else "no",
            f"{row.area:.2f}" if row.area is not None else "-",
            f"{row.peak_power:.2f}" if row.peak_power is not None else "-",
        ]
        for row in rows
    ]
    print(
        render_table(
            ["key", "family", "scheduler", "binder", "T", "P", "R", "feasible", "area", "peak"],
            table_rows,
            title=f"{matched} matching record(s) in {args.dir} [{store.backend}]",
        )
    )
    if args.limit is not None and matched > args.limit:
        print(f"(showing {args.limit} of {matched}; raise --limit)")
    return 0


def _cmd_priors_show(args: argparse.Namespace) -> int:
    from .store import mine_priors, open_store

    store = open_store(args.dir)
    priors = mine_priors(store, family=args.family)
    if args.json:
        print(json.dumps(priors.to_dict(), indent=2, sort_keys=True))
        return 0
    if priors.is_empty:
        print(f"no prior evidence in {args.dir} (store is empty or all-portfolio)")
        return 0
    rows = []
    for scope_label, stats in sorted(priors.to_dict().items()):
        family, _, bucket = scope_label.partition("|")
        ranked = sorted(
            stats.items(),
            key=lambda item: (-item[1]["win_rate"], item[1]["mean_elapsed"], item[0]),
        )
        for rank, (pair, prior) in enumerate(ranked, start=1):
            rows.append(
                [
                    family or "<global>",
                    bucket,
                    rank,
                    pair,
                    prior["races"],
                    prior["wins"],
                    f"{prior['win_rate']:.2f}",
                    f"{prior['mean_elapsed']:.3f}",
                ]
            )
    print(
        render_table(
            ["family", "bucket", "#", "pair", "races", "wins", "win rate", "mean sec"],
            rows,
            title=f"Portfolio launch priors mined from {args.dir} [{store.backend}]",
        )
    )
    print(
        "\npriors rank launch order only; the race's canonical decision "
        "rule never changes with them"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.http import SynthesisServer
    from .serve.service import SynthesisService

    cache = None
    if args.cache_dir is not None:
        backend = getattr(args, "cache_backend", "auto")
        cache = ResultCache(
            args.cache_dir, backend=None if backend == "auto" else backend
        )
    backend = getattr(args, "cache_backend", "auto")
    service = SynthesisService(
        args.state_dir,
        cache=cache,
        cache_backend=None if backend == "auto" else backend,
        workers=args.workers,
        worker_mode=args.worker_mode,
        max_queue_depth=args.max_queue_depth,
    ).start()
    server = SynthesisServer((args.host, args.port), service, verbose=args.verbose)
    print(f"repro serve: listening on {server.url}")
    print(
        f"  workers={args.workers} ({args.worker_mode})  "
        f"state_dir={args.state_dir or '<memory>'}  "
        f"cache={service.cache.root}"
    )
    pending = service.queue.depth
    if pending:
        print(f"  resumed {pending} pending job(s) from the queue log")
    print("  POST /tasks · GET /jobs/<id> · GET /results/<key> · /healthz · /stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (finishing in-flight jobs; pending jobs stay queued)")
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.client import Client, ClientError

    try:
        text = Path(args.file).read_text()
    except OSError as exc:
        print(f"bad batch file: {exc}", file=sys.stderr)
        return 1
    try:
        tasks = tasks_from_json(text)
    except (TaskError, ValueError, TypeError) as exc:
        print(f"bad batch file: {exc}", file=sys.stderr)
        return 1

    client = Client(args.url, timeout=args.timeout)
    try:
        accepted = client.submit(
            tasks, priority=args.priority, deadline_s=args.deadline
        )
        print(f"submitted {len(accepted)} job(s) to {args.url}")
        for entry in accepted:
            print(f"  {entry['id']}  key={entry['key'][:16]}…")
        if not args.wait:
            return 0
        records = client.records_from_states(
            client.wait(accepted, timeout=args.timeout)
        )
    except ClientError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    print(
        render_table(
            ["#", "task", "scheduler", "T", "P", "feasible", "area", "peak", "cycles", "sec"],
            _batch_rows(records),
            title=f"Served results ({args.url})",
        )
    )
    from .api.batch import BatchSummary

    summary = BatchSummary.from_records(records)
    print(
        f"\n{summary.feasible}/{summary.total} tasks feasible; "
        f"{summary.cache_hits} cache hit(s), {summary.computed} computed"
    )
    for record in records:
        if not record.feasible:
            print(f"  task {record.task.describe()}: {record.error}")
    if summary.certificate_errors:
        print(
            f"{summary.certificate_errors} task(s) failed certificate "
            "verification (structural violations, not infeasibility)",
            file=sys.stderr,
        )
        return EXIT_VIOLATIONS
    return 0 if summary.feasible else EXIT_INFEASIBLE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-constrained high-level synthesis (DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the functional-unit library").set_defaults(
        handler=_cmd_table1
    )
    sub.add_parser("benchmarks", help="list the registered benchmarks").set_defaults(
        handler=_cmd_benchmarks
    )

    def add_graph_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--benchmark", "-b", default="hal", choices=benchmark_names())
        p.add_argument("--cdfg", help="path to a CDFG JSON file (overrides --benchmark)")

    def add_cache_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=None,
            help="record every computed point in this content-addressed cache "
            "directory (JSONL journal included) so a later --resume run "
            "skips them",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="also consult --cache-dir before synthesizing: previously "
            "computed points (from any sweep, batch or killed run) return "
            "instantly",
        )
        p.add_argument(
            "--cache-backend",
            choices=["auto", "legacy", "columnar"],
            default="auto",
            help="storage backend for a fresh --cache-dir (an existing "
            "directory's layout is always autodetected; default: auto)",
        )

    synth = sub.add_parser("synthesize", help="run synthesis with any registered strategy")
    add_graph_options(synth)
    synth.add_argument("--latency", "-T", type=int, required=True)
    synth.add_argument("--power", "-P", type=float, default=None)
    synth.add_argument(
        "--registers",
        "-R",
        type=int,
        default=None,
        help="register budget (needs a register-aware scheduler, e.g. 'ilp')",
    )
    synth.add_argument(
        "--scheduler",
        default="engine",
        choices=SCHEDULERS.names(),
        help="scheduler strategy (default: the paper's combined engine)",
    )
    synth.add_argument(
        "--binder",
        default="greedy",
        choices=BINDERS.names(),
        help="binder strategy for non-engine schedulers",
    )
    synth.add_argument(
        "--contenders",
        nargs="+",
        default=None,
        metavar="PAIR",
        help="portfolio mode: contender subset as 'scheduler' or "
        "'scheduler+binder' entries in canonical decision order "
        "(default: the built-in spread); requires --scheduler portfolio",
    )
    synth.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="portfolio mode: collect certified results for this many "
        "seconds and return the best-area one instead of the "
        "canonically-first; requires --scheduler portfolio",
    )
    synth.add_argument("--schedule", action="store_true", help="print the schedule")
    synth.add_argument("--datapath", action="store_true", help="print the datapath")
    synth.add_argument(
        "--verify",
        action="store_true",
        help="re-run the independent certificate checker on the result and "
        "print the full report (the pipeline already verifies by default, so "
        "violations normally surface as 'infeasible' / exit 2; this prints "
        "the positive certificate, and exits 3 should a violation ever slip "
        "past the pipeline gate)",
    )
    synth.add_argument("--verilog", help="write a structural Verilog skeleton to this path")
    add_cache_options(synth)
    synth.set_defaults(handler=_cmd_synthesize)

    sweep = sub.add_parser("sweep", help="power/area sweep (one Figure-2 curve)")
    add_graph_options(sweep)
    sweep.add_argument("--latency", "-T", type=int, required=True)
    sweep.add_argument("--cap", type=float, default=150.0)
    sweep.add_argument(
        "--steps",
        type=int,
        default=None,
        help="fixed-grid mode: number of power budgets (default: 8); "
        "incompatible with --adaptive",
    )
    sweep.add_argument("--raw", action="store_true", help="disable the running-best convention")
    sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="parallel workers (fixed-grid mode only)",
    )
    sweep.add_argument(
        "--adaptive",
        action="store_true",
        help="replace the fixed power grid with adaptive frontier refinement "
        "(bisect only where the area changes)",
    )
    sweep.add_argument(
        "--resolution",
        type=float,
        default=None,
        help="adaptive mode: maximum width of a frontier step (default: 1.0); "
        "requires --adaptive",
    )
    add_cache_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    profile = sub.add_parser("profile", help="per-cycle power profile (Figure 1)")
    add_graph_options(profile)
    profile.add_argument("--latency", "-T", type=int, default=17)
    profile.add_argument("--power", "-P", type=float, default=None)
    profile.set_defaults(handler=_cmd_profile)

    batch = sub.add_parser(
        "batch", help="run a JSON file of SynthesisTask specs, optionally in parallel"
    )
    batch.add_argument("file", help="JSON: a list of task specs or {'tasks': [...], 'sweeps': [...]}")
    batch.add_argument("--jobs", "-j", type=int, default=1, help="parallel workers")
    batch.add_argument("--output", "-o", help="also write structured JSON results here")
    add_cache_options(batch)
    batch.set_defaults(handler=_cmd_batch)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: scenario families × every strategy pair, "
        "with from-scratch certification of each feasible result",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=10, help="seeds per family (default: 10)"
    )
    fuzz.add_argument("--base-seed", type=int, default=0, help="first seed")
    fuzz.add_argument(
        "--families",
        nargs="+",
        choices=family_names(),
        default=None,
        help="generator families to fuzz (default: all)",
    )
    fuzz.add_argument(
        "--schedulers",
        nargs="+",
        choices=SCHEDULERS.names(),
        default=None,
        help="scheduler strategies to cross-check (default: all)",
    )
    fuzz.add_argument(
        "--binders",
        nargs="+",
        choices=BINDERS.names(),
        default=None,
        help="binder strategies to cross-check (default: all)",
    )
    fuzz.add_argument(
        "--max-slack",
        type=int,
        default=6,
        help="largest latency slack above the critical path (default: 6)",
    )
    fuzz.add_argument(
        "--register-fraction",
        type=float,
        default=0.25,
        help="share of cases carrying a register budget (default: 0.25)",
    )
    fuzz.add_argument(
        "--portfolio-fraction",
        type=float,
        default=0.15,
        help="share of cases that also race the portfolio meta-strategy "
        "and hold its verdict to the agreement invariant (default: 0.15)",
    )
    fuzz.add_argument("--output", "-o", help="also write a structured JSON report here")
    add_cache_options(fuzz)
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP synthesis service (persistent queue + worker pool "
        "+ shared result cache)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", "-j", type=int, default=2, help="synthesis workers"
    )
    serve.add_argument(
        "--worker-mode",
        choices=["process", "thread"],
        default="process",
        help="run synthesis in child processes (scales past the GIL; "
        "default) or in threads (single-process debugging)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bound on queued-but-unstarted jobs; a full queue answers "
        "429 + Retry-After instead of buffering without limit",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="directory for the persistent job-queue log (and the default "
        "cache location); omitting it keeps the queue in memory",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="shared result-cache directory (default: <state-dir>/cache, or "
        "a private temp dir without --state-dir)",
    )
    serve.add_argument(
        "--cache-backend",
        choices=["auto", "legacy", "columnar"],
        default="auto",
        help="storage backend for a fresh --cache-dir (existing layouts "
        "are autodetected)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(handler=_cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect and maintain a result-store directory "
        "(stats, compact, migrate, query)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_stats = store_sub.add_parser(
        "stats", help="backend, record count and per-shard inventory"
    )
    store_stats.add_argument("dir", help="cache / store directory")
    store_stats.add_argument("--json", action="store_true", help="machine-readable output")
    store_stats.set_defaults(handler=_cmd_store_stats)

    store_compact = store_sub.add_parser(
        "compact",
        help="merge a columnar store's append segments into sorted, "
        "indexed column files",
    )
    store_compact.add_argument("dir", help="cache / store directory")
    store_compact.set_defaults(handler=_cmd_store_compact)

    store_migrate = store_sub.add_parser(
        "migrate",
        help="copy every record (and replay the journal) into a new "
        "directory with a different backend, then verify bit-identity",
    )
    store_migrate.add_argument("source", help="existing cache / store directory")
    store_migrate.add_argument("destination", help="fresh directory for the new store")
    store_migrate.add_argument(
        "--to",
        choices=["legacy", "columnar"],
        default="columnar",
        help="destination backend (default: columnar)",
    )
    store_migrate.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the record-by-record bit-identity check after copying",
    )
    store_migrate.set_defaults(handler=_cmd_store_migrate)

    store_query = store_sub.add_parser(
        "query",
        help="columnar range scan: filter stored records by family, "
        "strategy and the (T, P, R) constraint axes",
    )
    store_query.add_argument("dir", help="cache / store directory")
    store_query.add_argument("--family", help="scenario family / benchmark name")
    store_query.add_argument("--scheduler", choices=SCHEDULERS.names())
    store_query.add_argument("--binder", choices=BINDERS.names())
    store_query.add_argument("--selector", help="module-selection policy name")
    feasibility = store_query.add_mutually_exclusive_group()
    feasibility.add_argument("--feasible", action="store_true", help="feasible records only")
    feasibility.add_argument("--infeasible", action="store_true", help="infeasible records only")
    store_query.add_argument("--latency", "-T", help="latency bound: exact T or LO:HI")
    store_query.add_argument("--power", "-P", help="power budget: exact P or LO:HI")
    store_query.add_argument("--register", "-R", help="register budget: exact R or LO:HI")
    store_query.add_argument(
        "--key-prefix",
        help="content-address prefix (hex); shard-pruned, so a 1-char "
        "prefix opens roughly 1/16th of the shards",
    )
    store_query.add_argument(
        "--limit", type=int, default=40, help="rows to display (default: 40)"
    )
    store_query.add_argument("--json", action="store_true", help="machine-readable output")
    store_query.set_defaults(handler=_cmd_store_query)

    priors = sub.add_parser(
        "priors",
        help="portfolio launch priors mined from a result store "
        "(per-family, per-constraint-bucket win/latency statistics)",
    )
    priors_sub = priors.add_subparsers(dest="priors_command", required=True)
    priors_show = priors_sub.add_parser(
        "show", help="rank every strategy pair the store has evidence for"
    )
    priors_show.add_argument("dir", help="cache / store directory")
    priors_show.add_argument("--family", help="narrow the scan to one scenario family")
    priors_show.add_argument("--json", action="store_true", help="machine-readable output")
    priors_show.set_defaults(handler=_cmd_priors_show)

    submit = sub.add_parser(
        "submit",
        help="send a JSON batch file to a running repro serve instance",
    )
    submit.add_argument(
        "file", help="JSON: a list of task specs or {'tasks': [...], 'sweeps': [...]}"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="server base URL (default: http://127.0.0.1:8642)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until every job finishes and print the result table "
        "(otherwise just print the accepted job ids)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="overall wait/request timeout in seconds (default: 300)",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority for this batch (higher runs first; default 0)",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="portfolio job option: stamp portfolio_deadline_s onto every "
        "submitted task before admission (tasks must all be portfolio "
        "tasks; the server answers 400 otherwise)",
    )
    submit.set_defaults(handler=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
