"""Property-based tests (hypothesis) for the schedulers.

These check the invariants the paper's algorithm relies on over randomly
generated layered data-flow graphs:

* pasap schedules are precedence-legal and never exceed the power budget,
* pasap degenerates to ASAP when the budget is unbounded,
* stretching preserves total energy (power is moved, never created/lost),
* palap start times never precede pasap start times when both exist,
* the classical ASAP/ALAP sandwich brackets every legal schedule,
* every scheduler × binder pair from the registries — including
  ``two_step``, ``exact`` and the combined ``engine`` — either yields a
  result the independent certificate checker certifies or fails with a
  typed infeasibility error.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.api.batch import run_task
from repro.api.task import SynthesisTask
from repro.ir.analysis import critical_path_length
from repro.library.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.palap import palap_schedule
from repro.scheduling.pasap import PowerInfeasibleError, pasap_schedule
from repro.suite.generators import GeneratorConfig, random_cdfg
from repro.verify import check_certificate, strategy_pairs

LIBRARY = default_library()


@st.composite
def cdfg_and_maps(draw):
    """A random CDFG plus the delay/power maps of its min-power selection."""
    config = GeneratorConfig(
        operations=draw(st.integers(min_value=3, max_value=18)),
        inputs=draw(st.integers(min_value=1, max_value=4)),
        levels=draw(st.integers(min_value=1, max_value=6)),
        mul_fraction=draw(st.floats(min_value=0.0, max_value=0.6)),
        sub_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        outputs=draw(st.integers(min_value=0, max_value=3)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    cdfg = random_cdfg(config)
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return cdfg, delays, powers


@st.composite
def budget(draw):
    """A power budget large enough for any single Table-1 operation."""
    return PowerConstraint(draw(st.floats(min_value=8.2, max_value=60.0)))


@given(data=cdfg_and_maps(), power=budget())
@settings(max_examples=60, deadline=None)
def test_pasap_is_legal_and_within_budget(data, power):
    cdfg, delays, powers = data
    schedule = pasap_schedule(cdfg, delays, powers, power)
    assert schedule.respects_precedence()
    assert schedule.respects_power(power)


@given(data=cdfg_and_maps())
@settings(max_examples=40, deadline=None)
def test_pasap_unbounded_equals_asap(data):
    cdfg, delays, powers = data
    asap = asap_schedule(cdfg, delays, powers)
    pasap = pasap_schedule(cdfg, delays, powers, PowerConstraint.unbounded())
    assert pasap.start_times == asap.start_times


@given(data=cdfg_and_maps(), power=budget())
@settings(max_examples=40, deadline=None)
def test_stretching_preserves_energy(data, power):
    cdfg, delays, powers = data
    unconstrained = asap_schedule(cdfg, delays, powers)
    constrained = pasap_schedule(cdfg, delays, powers, power)
    assert abs(constrained.total_energy - unconstrained.total_energy) < 1e-6
    assert constrained.makespan >= unconstrained.makespan


@given(data=cdfg_and_maps(), power=budget(), slack=st.integers(min_value=0, max_value=10))
@settings(max_examples=40, deadline=None)
def test_palap_is_legal_when_it_succeeds(data, power, slack):
    """palap schedules must respect precedence, the latency bound and the budget.

    Note: the per-operation window [pasap start, palap start] is *heuristic*
    (the paper says so explicitly) — tie-breaking under power conflicts can
    produce a palap start earlier than the pasap start for individual
    operations, so only legality is asserted here.  Window inversion is
    handled by the synthesis engine's backtrack-and-lock rule.
    """
    cdfg, delays, powers = data
    early = pasap_schedule(cdfg, delays, powers, power)
    latency = early.makespan + slack
    try:
        late = palap_schedule(cdfg, delays, powers, power, latency)
    except PowerInfeasibleError:
        # The reversed stretching can need a couple of extra cycles compared
        # to the forward one; that is a legitimate heuristic outcome.
        return
    assert late.respects_precedence()
    assert late.respects_power(power)
    for name in cdfg.operation_names():
        # Any legal schedule starts at or after the unconstrained ASAP time.
        assert late.finish(name) <= latency
    asap = asap_schedule(cdfg, delays, powers)
    for name in cdfg.operation_names():
        assert late.start(name) >= asap.start(name)


@given(data=cdfg_and_maps(), power=budget())
@settings(max_examples=40, deadline=None)
def test_pasap_peak_no_worse_than_asap(data, power):
    cdfg, delays, powers = data
    asap = asap_schedule(cdfg, delays, powers)
    constrained = pasap_schedule(cdfg, delays, powers, power)
    assert constrained.peak_power <= max(asap.peak_power, power.max_power) + 1e-9


@given(data=cdfg_and_maps())
@settings(max_examples=40, deadline=None)
def test_asap_makespan_equals_critical_path(data):
    cdfg, delays, powers = data
    schedule = asap_schedule(cdfg, delays, powers)
    assert schedule.makespan == critical_path_length(cdfg, delays)


# --------------------------------------------------------------------------- #
# Cross-strategy certification (covers two_step, exact and engine, which
# the per-scheduler properties above do not touch)
# --------------------------------------------------------------------------- #
#: Every (scheduler, binder) pair the registries offer.
ALL_PAIRS = strategy_pairs()


@st.composite
def tiny_cdfg(draw):
    """A graph small enough for the exhaustive exact scheduler.

    The exact search is capped at 12 schedulable operations (inputs and
    outputs included), so sizes are kept under it.
    """
    config = GeneratorConfig(
        operations=draw(st.integers(min_value=3, max_value=7)),
        inputs=draw(st.integers(min_value=1, max_value=3)),
        levels=draw(st.integers(min_value=1, max_value=4)),
        mul_fraction=draw(st.floats(min_value=0.0, max_value=0.6)),
        sub_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        outputs=draw(st.integers(min_value=0, max_value=2)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_cdfg(config)


@given(
    cdfg=tiny_cdfg(),
    pair=st.sampled_from(ALL_PAIRS),
    slack=st.integers(min_value=0, max_value=4),
    budget=st.one_of(st.none(), st.floats(min_value=2.6, max_value=40.0)),
)
@settings(max_examples=60, deadline=None)
def test_every_strategy_pair_certifies_or_fails_typed(cdfg, pair, slack, budget):
    """SCHEDULERS × BINDERS: certified result or typed infeasibility.

    ``run_task`` converts every known infeasibility family into a typed
    record; anything else (an unexpected exception, an uncertified
    "feasible" result) is a bug in the strategy or the pipeline.
    """
    scheduler, binder = pair
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    delays = selection_delays(selection, cdfg)
    latency = critical_path_length(cdfg, delays) + slack
    task = SynthesisTask.of(
        cdfg,
        latency=latency,
        power_budget=round(budget, 3) if budget is not None else None,
        scheduler=scheduler,
        binder=binder,
    )
    record = run_task(task)
    if record.feasible:
        report = check_certificate(record.result)
        assert report.ok, f"{scheduler}+{binder}: {report.describe()}"
    else:
        assert record.error_type is not None
        assert record.error


@given(
    cdfg=tiny_cdfg(),
    binder=st.sampled_from(["greedy", "naive"]),
    slack=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_two_step_and_exact_agree_on_unbounded_feasibility(cdfg, binder, slack):
    """Without a power budget, two_step and exact must both be feasible at
    any latency at or above the critical path (and certify)."""
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    delays = selection_delays(selection, cdfg)
    latency = critical_path_length(cdfg, delays) + slack
    for scheduler in ("two_step", "exact"):
        record = run_task(
            SynthesisTask.of(
                cdfg, latency=latency, scheduler=scheduler, binder=binder
            )
        )
        assert record.feasible, f"{scheduler}: {record.error}"
        assert check_certificate(record.result).ok
