"""The synthesis service: a worker pool over the queue + cache stack.

:class:`SynthesisService` is the long-lived engine behind ``repro
serve``: it accepts :class:`~repro.api.task.SynthesisTask` submissions
into a persistent :class:`~repro.serve.queue.JobQueue`, and a pool of
worker threads executes them through the exact same
:func:`~repro.api.batch.run_task` path the CLI and the batch API use,
against one shared :class:`~repro.explore.cache.ResultCache`.

Two properties fall out of building on that stack rather than beside it:

* **Single-synthesis semantics.**  Content-identical jobs execute
  strictly in dequeue order (the queue's per-content-address claim,
  :meth:`~repro.serve.queue.JobQueue.wait_for_key_turn`), and
  ``run_task`` consults the shared cache before synthesizing.
  Identical requests — from one client or many, concurrent or not —
  therefore synthesize exactly once; every other copy waits for the
  first and returns as a warm cache hit (~0.2 ms), never as duplicate
  work.

* **Certified results only.**  Workers run with ``verify=True``, the
  same caller-side assertion as ``run_task(verify=True)``: a feasible
  result that fails the independent certificate checker marks the job
  ``failed`` (``error_type="CertificateError"``) and never enters the
  cache, so ``GET /results/<key>`` can only ever serve records that
  passed the gate.

Shutdown is graceful by construction: ``shutdown(drain=True)`` stops
accepting work and waits for the queue to empty; ``drain=False`` stops
after the jobs currently in flight (synthesis is not interruptible
mid-run) and leaves the rest pending in the persistent queue, where the
next boot's replay picks them up.  A process that dies mid-job instead
of shutting down is covered by the queue's requeue-on-replay.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..api.batch import BatchSummary, TaskResult, run_task
from ..api.task import SynthesisTask
from ..explore.cache import ResultCache
from .queue import Job, JobQueue, QueueError


class ServiceError(RuntimeError):
    """A service-level usage error (submitting to a stopped service, …)."""


#: Zero state of one per-strategy counter row in ``/stats``.
_STRATEGY_ZERO = {
    "jobs": 0,
    "cache_hits": 0,
    "computed": 0,
    "failed": 0,
    "computed_seconds": 0.0,
}


class SynthesisService:
    """A concurrent synthesis executor: queue in, certified records out.

    Args:
        state_dir: Directory for the persistent queue log and (unless
            ``cache`` is given) the shared result cache.  ``None`` keeps
            everything in memory / a private temp cache — fine for tests
            and examples, no crash tolerance.
        cache: A :class:`~repro.explore.cache.ResultCache` to share; by
            default one is opened at ``<state_dir>/cache``.
        cache_backend: Storage backend for a cache the service opens
            itself (``"legacy"`` / ``"columnar"``; existing directories
            autodetect).  Ignored when ``cache`` is given.
        workers: Worker threads executing jobs concurrently.
        verify: Re-certify every feasible result before it is recorded
            (the ``run_task(verify=True)`` gate).  On by default — a
            serving process is exactly the place where an uncertified
            result must not leak.

    The service is inert until :meth:`start` is called; use it as a
    context manager to pair start/shutdown.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        *,
        cache: Optional[ResultCache] = None,
        cache_backend: Optional[str] = None,
        workers: int = 2,
        verify: bool = True,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"a service needs at least one worker, got {workers}")
        self.queue = JobQueue(state_dir)
        self._owns_temp_cache = False
        if cache is None:
            if state_dir is not None:
                cache = ResultCache(
                    Path(state_dir).expanduser() / "cache", backend=cache_backend
                )
            else:
                import tempfile

                cache = ResultCache(
                    tempfile.mkdtemp(prefix="repro-serve-"), backend=cache_backend
                )
                self._owns_temp_cache = True
        self.cache = cache
        self.workers = int(workers)
        self.verify = verify
        self.started_at: Optional[float] = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._guard = threading.Lock()
        self._strategy_stats: Dict[str, Dict[str, float]] = {}
        self._summary = BatchSummary()
        self._certified_keys: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SynthesisService":
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return self
        self.started_at = time.time()
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def __enter__(self) -> "SynthesisService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown(drain=False)

    def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service gracefully.

        ``drain=True`` refuses new submissions and processes everything
        already accepted before returning; ``drain=False`` additionally
        stops dequeuing — jobs in flight complete (synthesis cannot be
        interrupted mid-run), the rest stay pending in the persistent
        queue for the next boot's replay to requeue.
        """
        self.queue.close()
        if not drain:
            self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        # a timed-out join leaves workers alive: keep their references so
        # running/healthz stay honest and a later start() cannot stack a
        # second pool on the same queue
        self._threads = [t for t in self._threads if t.is_alive()]
        if not self._threads:
            self._stop.set()
            if self._owns_temp_cache:
                # a private temp cache dies with the service; shared /
                # state-dir caches are durable by design and left alone
                import shutil

                shutil.rmtree(self.cache.root, ignore_errors=True)

    @property
    def running(self) -> bool:
        """True while worker threads are alive."""
        return any(thread.is_alive() for thread in self._threads)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, task: SynthesisTask) -> Job:
        """Accept one task; returns its :class:`~repro.serve.queue.Job`."""
        try:
            return self.queue.submit(task)
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc

    def submit_many(self, tasks: Iterable[SynthesisTask]) -> List[Job]:
        """Accept a batch of tasks in order; returns their jobs."""
        return [self.submit(task) for task in tasks]

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id."""
        return self.queue.get(job_id)

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """The finished record stored under a content address, or ``None``.

        Serves only records whose certification is provable: infeasible
        records (constraint data, nothing to certify), records whose task
        spec carries ``verify=True`` (the pipeline's own certificate gate
        ran before the result was recorded — and ``verify`` is part of
        the content address, so the spelling cannot lie), and records
        this service computed itself (workers run the
        ``run_task(verify=True)`` gate even for ``verify=False`` tasks).
        A feasible ``verify=False`` record written into a shared cache
        directory by some *other* producer is withheld — its
        certification cannot be established, and this endpoint promises
        certified results only.
        """
        record = self.cache.record_for_key(key)
        if record is None:
            return None
        if record.get("feasible"):
            task_spec = record.get("task") or {}
            with self._guard:
                certified = key in self._certified_keys
            if not certified and task_spec.get("verify", True) is not True:
                return None
        return {"key": key, "record": record}

    def wait(self, jobs: Iterable[Job], timeout: float = 60.0) -> List[Job]:
        """Block until every job finishes (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        jobs = list(jobs)
        for job in jobs:
            while not job.finished:
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"timed out waiting for job {job.id} (state {job.state!r})"
                    )
                time.sleep(0.005)
        return jobs

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.1)
            if job is None:
                if self.queue.closed and self.queue.depth == 0:
                    return
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        # Single-flight: content-identical jobs execute strictly in the
        # order they were taken — the first computes, every follower
        # unblocks here and exits run_task through the cache-hit path.
        self.queue.wait_for_key_turn(job)
        try:
            record = run_task(
                job.task,
                keep_result=False,
                cache=self.cache,
                verify=self.verify,
            )
        except Exception as exc:  # CertificateError and genuine bugs alike
            error_type = type(exc).__name__
            with self._guard:
                self._summary.total += 1
                self._summary.infeasible += 1
                self._summary.computed += 1
                if error_type == "CertificateError":
                    self._summary.certificate_errors += 1
                # failed jobs stay visible in per_strategy too, so its
                # "jobs" counts always sum to summary.total
                stats = self._strategy_stats.setdefault(
                    job.task.scheduler, dict(_STRATEGY_ZERO)
                )
                stats["jobs"] += 1
                stats["failed"] += 1
            self.queue.finish(job, error=str(exc), error_type=error_type)
            return
        self._note_record(job, record)
        self.queue.finish(job, record=record.to_dict())

    def _note_record(self, job: Job, record: TaskResult) -> None:
        """Fold one finished record into the running counters (O(1)).

        The summary fields follow the exact
        :meth:`~repro.api.batch.BatchSummary.from_records` semantics the
        CLI uses — accumulated at finish time rather than recounted per
        ``/stats`` request, so a long-lived server's monitoring polls
        stay O(1) in the number of jobs ever served.
        """
        with self._guard:
            self._summary.total += 1
            if record.feasible:
                self._summary.feasible += 1
                if not record.cached:
                    # only a record this service *computed* provably passed
                    # the worker's verify gate; a cache hit is returned
                    # as-is and must not launder a foreign uncertified
                    # record into servability
                    self._certified_keys.add(job.key)
            else:
                self._summary.infeasible += 1
                if record.error_type == "CertificateError":
                    self._summary.certificate_errors += 1
            if record.cached:
                self._summary.cache_hits += 1
            else:
                self._summary.computed += 1
            stats = self._strategy_stats.setdefault(
                job.task.scheduler, dict(_STRATEGY_ZERO)
            )
            stats["jobs"] += 1
            if record.cached:
                stats["cache_hits"] += 1
            else:
                stats["computed"] += 1
                stats["computed_seconds"] += record.elapsed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> BatchSummary:
        """A :class:`~repro.api.batch.BatchSummary` over jobs this
        service instance finished.

        Field semantics match :meth:`BatchSummary.from_records` — the
        counting ``repro batch`` prints — but the counters accumulate as
        jobs finish, so reading them costs O(1) regardless of how many
        jobs the server has ever served.  Jobs finished by a *previous*
        process (replayed from the queue log) are not re-counted: the
        summary describes this process's serving work, like ``uptime``.
        """
        with self._guard:
            return dataclasses.replace(self._summary)

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: queue, cache, batch and strategy counters."""
        counts = self.queue.counts()
        cache_stats = self.cache.stats
        per_strategy = {}
        with self._guard:
            for name, stats in sorted(self._strategy_stats.items()):
                entry = dict(stats)
                entry["mean_computed_seconds"] = (
                    stats["computed_seconds"] / stats["computed"]
                    if stats["computed"]
                    else 0.0
                )
                per_strategy[name] = entry
        return {
            "uptime": time.time() - self.started_at if self.started_at else 0.0,
            "workers": self.workers,
            "queue": {"depth": self.queue.depth, "jobs": counts},
            "cache": {
                "backend": self.cache.backend,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "writes": cache_stats.writes,
                "hit_rate": (
                    cache_stats.hits / cache_stats.lookups
                    if cache_stats.lookups
                    else 0.0
                ),
            },
            "summary": self.summary().to_dict(),
            "per_strategy": per_strategy,
        }

    def healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: liveness plus queue depth."""
        return {
            "status": "ok" if self.running else "stopped",
            "workers": self.workers,
            "queue_depth": self.queue.depth,
            "uptime": time.time() - self.started_at if self.started_at else 0.0,
        }
