"""Tests for the differential cross-checking harness."""

import json

import pytest

from repro.api.task import SynthesisTask
from repro.explore import ResultCache
from repro.registries import BINDERS, SCHEDULERS
from repro.verify import CrossCheckReport, StrategyOutcome, cross_check, strategy_pairs
from repro.verify.differential import (
    META_SCHEDULERS,
    _check_exact_soundness,
    _check_oracle_agreement,
)


class TestStrategyPairs:
    def test_covers_every_scheduler(self):
        # Every registered scheduler except the meta-strategies, which
        # race the others and only join when explicitly listed.
        pairs = strategy_pairs()
        schedulers = {scheduler for scheduler, _ in pairs}
        assert schedulers == set(SCHEDULERS.names()) - set(META_SCHEDULERS)

    def test_meta_schedulers_join_only_when_explicitly_listed(self):
        assert "portfolio" in META_SCHEDULERS
        assert all(scheduler != "portfolio" for scheduler, _ in strategy_pairs())
        explicit = strategy_pairs(["portfolio"], ["greedy"])
        assert explicit == [("portfolio", "greedy")]

    def test_engine_contributes_a_single_pair(self):
        pairs = strategy_pairs()
        assert sum(1 for scheduler, _ in pairs if scheduler == "engine") == 1

    def test_classical_schedulers_cross_every_binder(self):
        pairs = strategy_pairs()
        asap_binders = {binder for scheduler, binder in pairs if scheduler == "asap"}
        assert asap_binders == set(BINDERS.names())

    def test_without_latency_only_boundless_schedulers_remain(self):
        pairs = strategy_pairs(needs_latency=False)
        assert {scheduler for scheduler, _ in pairs} == {"asap", "pasap"}

    def test_explicit_subsets_are_honoured(self):
        pairs = strategy_pairs(["pasap", "engine"], ["greedy"])
        assert pairs == [("pasap", "greedy"), ("engine", "greedy")]

    def test_empty_list_means_none_not_all(self):
        # None = "all registered"; an explicit empty list = no pairs.
        assert strategy_pairs([], ["greedy"]) == []
        assert strategy_pairs(["asap"], []) == []
        # Self-binding schedulers still get their (inert) placeholder pair.
        engine_pairs = strategy_pairs(["engine"], [])
        assert len(engine_pairs) == 1 and engine_pairs[0][0] == "engine"


class TestCrossCheck:
    @pytest.fixture(scope="class")
    def report(self):
        return cross_check(SynthesisTask(graph="hal", latency=20, power_budget=15.0))

    def test_every_pair_ran(self, report):
        assert len(report.outcomes) == len(strategy_pairs())

    def test_no_violations_on_the_stock_strategies(self, report):
        assert report.ok, report.describe()

    def test_feasible_outcomes_are_certified(self, report):
        feasible = report.feasible_outcomes()
        assert feasible, "expected at least one feasible pair"
        assert all(outcome.certified for outcome in feasible)

    def test_infeasible_outcomes_carry_typed_errors(self, report):
        for outcome in report.outcomes:
            if not outcome.feasible:
                assert outcome.error_type is not None

    def test_feasibility_map_and_describe(self, report):
        assert set(report.feasibility) == {
            f"{s}+{b}" for s, b in strategy_pairs()
        }
        assert "cross-check" in report.describe()

    def test_report_serializes(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["outcomes"]) == len(report.outcomes)

    def test_power_split_is_informational(self):
        # A budget the power-aware strategies meet but the oblivious ones
        # violate: the report records a split without any violation.
        report = cross_check(
            SynthesisTask(graph="hal", latency=28, power_budget=8.2),
            ["asap", "pasap"],
            ["greedy"],
        )
        assert report.ok
        assert report.disagreement


class TestCrossCheckCache:
    def test_second_run_resumes_from_cache(self, tmp_path):
        task = SynthesisTask(graph="hal", latency=20, power_budget=15.0)
        cache = ResultCache(tmp_path / "cache", read=True)
        first = cross_check(task, ["pasap", "engine"], ["greedy"], cache=cache)
        assert first.ok and not any(o.cached for o in first.outcomes)
        second = cross_check(task, ["pasap", "engine"], ["greedy"], cache=cache)
        assert second.ok
        assert all(o.cached for o in second.outcomes)
        # Scalar cache hits cannot be re-certified.
        assert all(o.certified is None for o in second.outcomes if o.feasible)

    def test_warm_and_cold_reports_agree_on_feasibility(self, tmp_path):
        # Includes oblivious schedulers whose constraint misses are
        # reclassified: the scalar-hit path must reclassify identically.
        task = SynthesisTask(graph="hal", latency=20, power_budget=9.0)
        cache = ResultCache(tmp_path / "cache", read=True)
        cold = cross_check(task, ["asap", "pasap", "engine"], ["greedy"], cache=cache)
        warm = cross_check(task, ["asap", "pasap", "engine"], ["greedy"], cache=cache)
        assert cold.ok and warm.ok
        assert warm.feasibility == cold.feasibility
        assert all(o.cached for o in warm.outcomes)


class TestBuggyStrategyDetection:
    """The harness must see raw results — a buggy strategy's invalid
    'feasible' output has to surface as a violation, not be converted to
    a typed infeasibility by the pipeline's own verify gate."""

    def test_structurally_buggy_binder_is_flagged(self):
        def everything_shared_binder(ctx):
            # One instance per module, overlap ignored: resource conflicts.
            from repro.datapath.rtl import Datapath

            datapath = Datapath(cdfg=ctx.cdfg, schedule=ctx.schedule)
            instances = {}
            for op_name in ctx.cdfg.schedulable_operations():
                module = ctx.selection[op_name]
                if module.name not in instances:
                    instances[module.name] = datapath.add_instance(module)
                datapath.bind(op_name, instances[module.name].name)
            ctx.datapath = datapath

        BINDERS.register("buggy_shared", everything_shared_binder)
        try:
            report = cross_check(
                SynthesisTask(graph="hal", latency=30, power_budget=40.0),
                ["asap"],
                ["buggy_shared"],
            )
            assert not report.ok
            kinds = {v.details.get("kind") for v in report.violations}
            assert "resource-conflict" in kinds
            buggy = next(o for o in report.outcomes if o.binder == "buggy_shared")
            assert buggy.feasible and buggy.certified is False
        finally:
            BINDERS.unregister("buggy_shared")

    def test_buggy_result_is_never_cached(self, tmp_path):
        from repro.explore import ResultCache

        def broken_binder(ctx):
            from repro.datapath.rtl import Datapath

            datapath = Datapath(cdfg=ctx.cdfg, schedule=ctx.schedule)
            instances = {}
            for op_name in ctx.cdfg.schedulable_operations():
                module = ctx.selection[op_name]
                if module.name not in instances:
                    instances[module.name] = datapath.add_instance(module)
                datapath.bind(op_name, instances[module.name].name)
            ctx.datapath = datapath

        BINDERS.register("buggy_cached", broken_binder)
        try:
            cache = ResultCache(tmp_path / "cache", read=True)
            report = cross_check(
                SynthesisTask(graph="hal", latency=30, power_budget=40.0),
                ["asap"],
                ["buggy_cached"],
                cache=cache,
            )
            assert not report.ok
            assert len(cache) == 0
        finally:
            BINDERS.unregister("buggy_cached")

    def test_self_certification_failure_is_flagged(self):
        from repro.verify.certificate import (
            CertificateError,
            CertificateReport,
            Violation as CertViolation,
        )

        def lying_self_checker(ctx):
            bad = CertificateReport(graph=ctx.cdfg.name)
            bad.violations.append(
                CertViolation("binding", "op", "self-check failed")
            )
            raise CertificateError(bad)

        SCHEDULERS.register("buggy_selfcheck", lying_self_checker)
        try:
            report = cross_check(
                SynthesisTask(graph="hal", latency=17, power_budget=12.0),
                ["buggy_selfcheck"],
                ["greedy"],
            )
            assert not report.ok
            assert any(
                "failed its own certification" in v.message
                for v in report.violations
            )
        finally:
            SCHEDULERS.unregister("buggy_selfcheck")

    def test_constraint_miss_by_oblivious_scheduler_is_reclassified(self):
        # asap never promised to honour P: its over-budget result becomes
        # infeasibility data, not a violation.
        report = cross_check(
            SynthesisTask(graph="hal", latency=30, power_budget=8.2),
            ["asap"],
            ["greedy"],
        )
        assert report.ok
        outcome = report.outcomes[0]
        assert not outcome.feasible
        assert outcome.error_type == "CertificateError"
        assert "power" in outcome.error


class TestSoundnessSurvivesResume:
    def test_soundness_violation_is_not_masked_by_the_cache(self, tmp_path):
        # A lying exact scheduler claims infeasibility while pasap holds a
        # certified witness: the violation must fire on the cold run AND on
        # a warm (--resume) rerun — the witness record must stay uncached,
        # because a scalar hit cannot be re-certified and would silently
        # disqualify itself as a witness.
        from repro.scheduling.exact import ExactSchedulerError

        original = SCHEDULERS.get("exact")

        def lying_exact(ctx):
            raise ExactSchedulerError(
                f"no schedule for {ctx.cdfg.name!r} meets "
                f"T={ctx.require_latency('exact')} under the power budget"
            )

        SCHEDULERS.register("exact", lying_exact, replace=True)
        try:
            cache = ResultCache(tmp_path / "cache", read=True)
            task = SynthesisTask(graph="hal", latency=30, power_budget=40.0)
            cold = cross_check(task, ["exact", "pasap"], ["greedy"], cache=cache)
            assert any(
                v.kind == "differential-soundness" for v in cold.violations
            )
            warm = cross_check(task, ["exact", "pasap"], ["greedy"], cache=cache)
            assert any(
                v.kind == "differential-soundness" for v in warm.violations
            ), "resume masked the soundness violation"
        finally:
            SCHEDULERS.register("exact", original, replace=True)


class TestExactSoundness:
    @staticmethod
    def _report(
        exact_error,
        witness_scheduler="pasap",
        certified=True,
        error_type="ExactSchedulerError",
    ):
        report = CrossCheckReport(
            task=SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        )
        report.outcomes.append(
            StrategyOutcome(
                scheduler="exact",
                binder="greedy",
                feasible=False,
                error=exact_error,
                error_type=error_type,
            )
        )
        report.outcomes.append(
            StrategyOutcome(
                scheduler=witness_scheduler,
                binder="greedy",
                feasible=True,
                certified=certified,
                area=100.0,
            )
        )
        return report

    def test_certified_witness_against_exact_infeasibility_is_flagged(self):
        report = self._report("no schedule for 'hal' meets T=17 under the power budget")
        _check_exact_soundness(report)
        assert not report.ok
        assert report.violations[0].kind == "differential-soundness"

    def test_size_rejection_is_not_authoritative(self):
        # Capacity verdicts are recognised by exception *type*, not by
        # pattern-matching the error prose.
        report = self._report(
            "exact scheduling limited to 12 operations, got 20",
            error_type="ExactSizeError",
        )
        _check_exact_soundness(report)
        assert report.ok

    def test_engine_witness_is_exempt(self):
        # The engine upgrades modules, so it is no witness for the
        # selection the exact search explored.
        report = self._report(
            "no schedule for 'hal' meets T=17 under the power budget",
            witness_scheduler="engine",
        )
        _check_exact_soundness(report)
        assert report.ok

    def test_uncertified_witness_does_not_count(self):
        report = self._report(
            "no schedule for 'hal' meets T=17 under the power budget",
            certified=False,
        )
        _check_exact_soundness(report)
        assert report.ok


class TestOracleAgreement:
    """exact and ilp are independent exact engines: verdicts must match."""

    @staticmethod
    def _report(*outcomes):
        report = CrossCheckReport(
            task=SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        )
        report.outcomes.extend(outcomes)
        return report

    @staticmethod
    def _outcome(scheduler, feasible, optimal=None, error_type=None, binder="greedy"):
        return StrategyOutcome(
            scheduler=scheduler,
            binder=binder,
            feasible=feasible,
            certified=True if feasible else None,
            area=100.0 if feasible else None,
            optimal_latency=optimal,
            error=None if feasible else "no schedule meets the constraints",
            error_type=error_type,
        )

    def test_matching_verdicts_pass(self):
        report = self._report(
            self._outcome("exact", True, optimal=16),
            self._outcome("ilp", True, optimal=16),
        )
        assert _check_oracle_agreement(report) == []
        assert report.ok

    def test_feasibility_split_is_flagged(self):
        report = self._report(
            self._outcome("exact", False, error_type="ExactSchedulerError"),
            self._outcome("ilp", True, optimal=16),
        )
        implicated = _check_oracle_agreement(report)
        assert not report.ok
        assert report.violations[0].kind == "differential-oracle"
        # Both oracles' records must stay out of the cache.
        assert {o.scheduler for o in implicated} == {"exact", "ilp"}

    def test_optimal_makespan_mismatch_is_flagged(self):
        report = self._report(
            self._outcome("exact", True, optimal=16),
            self._outcome("ilp", True, optimal=17),
        )
        _check_oracle_agreement(report)
        assert not report.ok
        assert "optimal makespan" in report.violations[0].message

    def test_capacity_outcomes_abstain(self):
        report = self._report(
            self._outcome("exact", False, error_type="ExactSizeError"),
            self._outcome("ilp", True, optimal=16),
        )
        assert _check_oracle_agreement(report) == []
        assert report.ok

    def test_implication_covers_every_binder_pair(self):
        # Each binder pair has its own cache record; a disagreement must
        # implicate all of them, not just the representative outcome.
        report = self._report(
            self._outcome("exact", False, error_type="ExactSchedulerError"),
            self._outcome(
                "exact", False, error_type="ExactSchedulerError", binder="naive"
            ),
            self._outcome("ilp", True, optimal=16),
            self._outcome("ilp", True, optimal=16, binder="naive"),
        )
        implicated = _check_oracle_agreement(report)
        assert len(implicated) == 4
