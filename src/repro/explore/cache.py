"""Content-addressed, on-disk caching of synthesis results.

A :class:`ResultCache` stores one :class:`~repro.api.batch.TaskResult`
per *content address* — the SHA-256 of the task's canonical spec (see
:meth:`repro.api.task.SynthesisTask.cache_key`).  Because the address is
derived from what the task *means* (graph structure, library modules,
constraints, strategies, options) rather than how it is spelled, the same
(graph, library, T, P) point hits the cache whether it was issued by a
fixed-grid sweep, the adaptive frontier refiner, a bisection probe inside
:func:`~repro.synthesis.explore.minimum_feasible_power`, a different CLI
invocation, or a worker process of a parallel batch.

Layout on disk::

    <root>/objects/<key[:2]>/<key>.json   one record per content address
    <root>/journal.jsonl                  append-only log of computed records

Object files are written atomically (temp file + ``os.replace``) so
concurrent workers sharing one cache directory never observe a torn
record; the journal is the human-greppable trail of everything that was
actually *computed* (cache hits are not re-journaled), which is what lets
a killed grid restart without rework: re-running the same batch with the
same cache directory replays the journaled points as instant hits.

Only scalar metrics are cached — the heavyweight
:class:`~repro.synthesis.result.SynthesisResult` object is dropped, just
as it is for parallel workers.  Records loaded from the cache therefore
have ``result=None`` and ``cached=True``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..api.batch import TaskResult
from ..api.task import SynthesisTask

#: File name of the append-only JSONL journal inside a cache directory.
JOURNAL_NAME = "journal.jsonl"


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime.

    Attributes:
        hits: Lookups answered from the cache (memory or disk).
        misses: Lookups that found nothing (the caller then synthesizes).
        writes: Records stored.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ResultCache:
    """Content-addressed cache of :class:`TaskResult` records.

    Args:
        root: Cache directory (created on first write).
        read: Consult the cache on :meth:`get`.  ``read=False`` makes a
            write-only cache that records results for later runs without
            ever short-circuiting the current one (the CLI's plain
            ``--cache-dir`` without ``--resume``).
        write: Store computed records on :meth:`put`.
        journal: Also append every stored record to ``journal.jsonl``.

    An in-memory layer fronts the disk so repeated lookups of the same
    point within one process (e.g. bisection probes) cost one file read.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        read: bool = True,
        write: bool = True,
        journal: bool = True,
    ) -> None:
        self.root = Path(root).expanduser()
        self.read = read
        self.write = write
        self.journal = journal
        self.stats = CacheStats()
        self._memory: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def key_for(self, task: SynthesisTask) -> str:
        return task.cache_key()

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, task: SynthesisTask) -> Optional[TaskResult]:
        """The cached record for ``task``, or ``None``.

        Returned records carry ``cached=True``, ``result=None`` (only
        scalar metrics are stored) and the *caller's* ``task`` — the
        content address deliberately ignores spelling differences and the
        label, so the stored spec may be a differently-spelled twin and
        must not leak into the caller's reports.  Corrupt or unreadable
        object files count as misses — the point is simply recomputed.
        """
        if not self.read:
            return None
        key = self.key_for(task)
        payload = self._memory.get(key)
        if payload is None:
            try:
                payload = json.loads(self._object_path(key).read_text())
                payload["record"]
            except (OSError, ValueError, KeyError, TypeError):
                self.stats.misses += 1
                return None
            self._memory[key] = payload
        try:
            record = TaskResult.from_dict(dict(payload["record"]))
        except (TypeError, ValueError, KeyError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        record.cached = True
        record.result = None
        record.task = task
        return record

    def put(self, task: SynthesisTask, record: TaskResult) -> str:
        """Store ``record`` under the task's content address; return the key.

        Infeasible records are cached too — knowing a (T, P) point is
        below the feasibility frontier is exactly as reusable as knowing
        its area.
        """
        key = self.key_for(task)
        if not self.write:
            return key
        payload = {"key": key, "record": record.to_dict()}
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, indent=1, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.write("\n")
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.journal:
            line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            # one unbuffered write to an O_APPEND fd: concurrent workers
            # sharing the journal never interleave mid-line
            fd = os.open(
                self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        self._memory[key] = payload
        self.stats.writes += 1
        return key

    def record_for_key(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw stored record dict for a content address, or ``None``.

        Unlike :meth:`get` this looks up by the *key itself* (no task in
        hand to rebind), honours neither the ``read`` flag nor the stats
        counters, and returns the plain payload dict — it exists for the
        serving layer's ``GET /results/<key>`` endpoint, which addresses
        results the way the cache files them.
        """
        payload = self._memory.get(key)
        if payload is None:
            try:
                payload = json.loads(self._object_path(key).read_text())
            except (OSError, ValueError):
                return None
        record = payload.get("record") if isinstance(payload, dict) else None
        if not isinstance(record, dict):
            return None
        return dict(record)

    def __len__(self) -> int:
        """Number of records on disk (not just in this process's memory)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = ("r" if self.read else "") + ("w" if self.write else "")
        return f"ResultCache({str(self.root)!r}, mode={mode!r}, {self.stats})"


def load_journal(path: Union[str, Path]) -> List[TaskResult]:
    """Parse a cache journal (``journal.jsonl``) back into records.

    Malformed lines (e.g. a half-written tail from a killed process) are
    skipped, so a journal is always safe to load after a crash.
    """
    records: List[TaskResult] = []
    journal = Path(path)
    if journal.is_dir():
        journal = journal / JOURNAL_NAME
    if not journal.exists():
        return records
    with open(journal) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(TaskResult.from_dict(payload["record"]))
            except (ValueError, KeyError, TypeError):
                continue
    return records
