"""Unit tests for the paper's power-constrained ASAP scheduler (pasap)."""

import pytest

from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.pasap import (
    PowerInfeasibleError,
    pasap_schedule,
    pasap_schedule_with_library,
    pasap_start_times,
)


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestPasapCore:
    def test_unbounded_budget_reduces_to_asap(self, hal, library):
        delays, powers = maps_for(hal, library)
        asap = asap_schedule(hal, delays, powers)
        pasap = pasap_schedule(hal, delays, powers, PowerConstraint.unbounded())
        assert pasap.start_times == asap.start_times

    def test_respects_power_budget(self, hal, library):
        delays, powers = maps_for(hal, library)
        budget = PowerConstraint(8.0)
        schedule = pasap_schedule(hal, delays, powers, budget)
        schedule.verify(power=budget)

    def test_respects_precedence(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        schedule = pasap_schedule(cosine, delays, powers, PowerConstraint(10.0))
        assert schedule.respects_precedence()

    def test_stretches_the_schedule(self, wide, library):
        """Independent multiplications must be serialized by a tight budget."""
        delays, powers = maps_for(wide, library)
        loose = pasap_schedule(wide, delays, powers, PowerConstraint.unbounded())
        tight = pasap_schedule(wide, delays, powers, PowerConstraint(6.0))
        assert tight.makespan > loose.makespan
        assert tight.peak_power <= 6.0
        # stretching moves power around but never changes the total energy
        assert tight.total_energy == pytest.approx(loose.total_energy)

    def test_peak_monotone_in_budget(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        peaks = []
        for budget in (8.0, 12.0, 20.0, 40.0):
            schedule = pasap_schedule(cosine, delays, powers, PowerConstraint(budget))
            assert schedule.peak_power <= budget + 1e-9
            peaks.append(schedule.peak_power)
        assert peaks == sorted(peaks)

    def test_never_starts_before_data_ready(self, elliptic, library):
        delays, powers = maps_for(elliptic, library)
        schedule = pasap_schedule(elliptic, delays, powers, PowerConstraint(9.0))
        for name in elliptic.operation_names():
            ready = max(
                (schedule.finish(p) for p in elliptic.predecessors(name)), default=0
            )
            assert schedule.start(name) >= ready

    def test_single_operation_exceeding_budget_rejected(self, hal, library):
        delays, powers = maps_for(hal, library)
        with pytest.raises(PowerInfeasibleError):
            pasap_schedule(hal, delays, powers, PowerConstraint(2.0))

    def test_locked_operations_pre_committed(self, wide, library):
        delays, powers = maps_for(wide, library)
        budget = PowerConstraint(6.0)
        locked = {"m0": 3}  # later than its data-ready time; must be honoured verbatim
        schedule = pasap_schedule(wide, delays, powers, budget, locked=locked)
        assert schedule.start("m0") == 3
        schedule.verify(power=budget)

    def test_horizon_guard_raises_instead_of_spinning(self, wide, library):
        delays, powers = maps_for(wide, library)
        with pytest.raises(PowerInfeasibleError):
            pasap_schedule(
                wide, delays, powers, PowerConstraint(3.0), max_horizon=4
            )

    def test_virtual_operations_free(self, hal, library):
        delays, powers = maps_for(hal, library)
        schedule = pasap_schedule(hal, delays, powers, PowerConstraint(6.0))
        # The constant contributes nothing to any cycle.
        assert schedule.powers["const_3"] == 0.0


class TestPasapWrappers:
    def test_with_library(self, hal, library):
        budget = PowerConstraint(8.0)
        schedule = pasap_schedule_with_library(hal, library, budget)
        schedule.verify(power=budget)

    def test_start_times_helper(self, hal, library):
        delays, powers = maps_for(hal, library)
        starts = pasap_start_times(hal, delays, powers, PowerConstraint(8.0))
        assert set(starts) == set(hal.operation_names())


class TestFigure1Behaviour:
    """pasap is what turns the 'undesired' profile into the 'desired' one."""

    def test_flattens_spiky_profile(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        unconstrained = asap_schedule(cosine, delays, powers)
        budget = PowerConstraint(12.0)
        constrained = pasap_schedule(cosine, delays, powers, budget)
        assert unconstrained.peak_power > 12.0
        assert constrained.peak_power <= 12.0
        assert constrained.total_energy == pytest.approx(unconstrained.total_energy)
