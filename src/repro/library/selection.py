"""Module-selection policies.

Before any schedule exists, the power-constrained schedulers (pasap/palap)
and the compatibility-graph constructor need a *tentative* module choice
per operation to know its delay and per-cycle power.  The final binding
may later move an operation to a different (compatible) module, but the
tentative choice anchors the initial power-feasibility analysis.

Three stock policies are provided; the synthesis engine defaults to
:class:`MinPowerSelection`, matching the paper's goal of stretching the
schedule using the least power-hungry implementations and only paying for
faster/bigger modules when latency forces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from .library import FULibrary
from .module import FUModule, LibraryError

#: A selection maps each operation name to a library module.
Selection = Dict[str, FUModule]


@dataclass(frozen=True)
class SelectionPolicy:
    """Base policy: pick a module per operation according to ``chooser``."""

    name: str
    chooser: Callable[[FULibrary, OpType], FUModule]

    def select(self, cdfg: CDFG, library: FULibrary) -> Selection:
        """Choose a module for every non-virtual operation of ``cdfg``.

        Raises:
            LibraryError: if some operation type has no implementing module.
        """
        selection: Selection = {}
        for op_name in cdfg.schedulable_operations():
            optype = cdfg.operation(op_name).optype
            selection[op_name] = self.chooser(library, optype)
        return selection


def MinAreaSelection() -> SelectionPolicy:
    """Pick the smallest-area module for every operation."""
    return SelectionPolicy("min-area", lambda lib, t: lib.cheapest(t))


def MinLatencySelection() -> SelectionPolicy:
    """Pick the fastest module for every operation."""
    return SelectionPolicy("min-latency", lambda lib, t: lib.fastest(t))


def MinPowerSelection() -> SelectionPolicy:
    """Pick the lowest per-cycle-power module for every operation."""
    return SelectionPolicy("min-power", lambda lib, t: lib.lowest_power(t))


def selection_delays(selection: Mapping[str, FUModule], cdfg: CDFG) -> Dict[str, int]:
    """Per-operation delay map induced by a module selection.

    Virtual operations (constants, no-ops) get zero delay.
    """
    delays: Dict[str, int] = {}
    for op_name in cdfg.operation_names():
        op = cdfg.operation(op_name)
        if op.is_virtual:
            delays[op_name] = 0
        else:
            try:
                delays[op_name] = selection[op_name].latency
            except KeyError:
                raise LibraryError(f"no module selected for operation {op_name!r}") from None
    return delays


def selection_powers(selection: Mapping[str, FUModule], cdfg: CDFG) -> Dict[str, float]:
    """Per-operation per-cycle power map induced by a module selection."""
    powers: Dict[str, float] = {}
    for op_name in cdfg.operation_names():
        op = cdfg.operation(op_name)
        if op.is_virtual:
            powers[op_name] = 0.0
        else:
            try:
                powers[op_name] = selection[op_name].power
            except KeyError:
                raise LibraryError(f"no module selected for operation {op_name!r}") from None
    return powers


def total_energy(selection: Mapping[str, FUModule], cdfg: CDFG) -> float:
    """Total energy (Σ power × latency) over all non-virtual operations."""
    energy = 0.0
    for op_name in cdfg.schedulable_operations():
        module = selection.get(op_name)
        if module is None:
            raise LibraryError(f"no module selected for operation {op_name!r}")
        energy += module.energy
    return energy


def check_selection(selection: Mapping[str, FUModule], cdfg: CDFG) -> None:
    """Validate that a selection is complete and type-correct.

    Raises:
        LibraryError: on a missing operation or a module that cannot
            execute the operation's type.
    """
    for op_name in cdfg.schedulable_operations():
        module = selection.get(op_name)
        if module is None:
            raise LibraryError(f"selection missing operation {op_name!r}")
        optype = cdfg.operation(op_name).optype
        if not module.supports(optype):
            raise LibraryError(
                f"module {module.name!r} cannot execute {optype.value!r} "
                f"(operation {op_name!r})"
            )
