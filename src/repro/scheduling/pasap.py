"""Power-constrained ASAP scheduling (``pasap``) — Section 2 of the paper.

The algorithm "stretches" the classical ASAP schedule so that the total
power drawn in any clock cycle never exceeds the budget ``P``:

    Initialize: schedule the source start-time to zero and set the
    execution offset ``o_i`` to zero for all operators.

    step 1: pick an unscheduled operator ``v_i``
    step 2: if ``v_i`` has unscheduled predecessors, go to step 4
    step 3: if there is power available in the execution interval
            ``[(t_i + o_i) .. (t_i + o_i + d_i)]``, where ``d_i`` is the
            execution delay of ``v_i`` and ``t_i = max{t_j + d_j}`` over
            all predecessors ``v_j -> v_i``, schedule operation ``i`` at
            time ``t_i (+ o_i)``; otherwise increase ``o_i`` by one.
    step 4: if unscheduled operators remain, go to step 1.

Implementation notes
---------------------
* Operations are visited in a (deterministic) topological order; within a
  ready set the order is the priority function, by default
  *largest power first, then longest delay, then name* — greedy packing of
  the heavy operations first reduces the stretching needed later and is
  the natural reading of the paper's "pick an unscheduled operator".
* Already-bound operations can be *locked* at fixed start times; their
  power is pre-committed to the profile.  The combined synthesis engine
  relies on this to recompute pasap windows after every binding decision
  and to implement the paper's backtrack-and-lock rule.
* When a single operation's power already exceeds the budget the schedule
  is infeasible; :class:`PowerInfeasibleError` is raised.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import (
    MinPowerSelection,
    Selection,
    selection_delays,
    selection_powers,
)
from .constraints import PowerConstraint
from .schedule import Schedule, add_to_profile, profile_allows


class PowerInfeasibleError(Exception):
    """Raised when no start time can satisfy the power constraint."""


#: Priority function: maps (op name, delay, power) to a sortable key.
PriorityFn = Callable[[str, int, float], Tuple]


def default_priority(name: str, delay: int, power: float) -> Tuple:
    """Schedule power-hungry, long operations first (ties by name)."""
    return (-power, -delay, name)


def pasap_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    locked: Optional[Mapping[str, int]] = None,
    max_horizon: Optional[int] = None,
    priority: PriorityFn = default_priority,
    label: str = "pasap",
) -> Schedule:
    """Power-constrained ASAP schedule.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power.
        power: The per-cycle power budget ``P``.
        locked: Start times of operations that are already fixed (their
            power is committed to the profile before scheduling the rest).
        max_horizon: Safety bound on how far an operation may be delayed;
            defaults to a generous bound derived from the total work.
        priority: Ready-operation ordering (see :func:`default_priority`).
        label: Label stored on the resulting schedule.

    Returns:
        A schedule that respects precedence and the power budget.

    Raises:
        PowerInfeasibleError: if some operation's own power exceeds the
            budget, or the horizon safety bound is hit.
    """
    locked = dict(locked or {})
    schedulable = set(cdfg.schedulable_operations())

    if max_horizon is None:
        total_cycles = sum(delays[n] for n in cdfg.operation_names())
        max_horizon = max(total_cycles * 4 + 16, 64)

    # Single-operation feasibility: an operation drawing more than P in a
    # cycle can never be placed.
    if not power.is_unbounded:
        for name in schedulable:
            if not power.allows(powers[name]):
                raise PowerInfeasibleError(
                    f"operation {name!r} draws {powers[name]:.3f} per cycle, "
                    f"exceeding the budget {power.max_power:.3f}"
                )

    profile: List[float] = []
    start: Dict[str, int] = {}

    # Commit locked operations first.
    for name, fixed_start in locked.items():
        if name not in cdfg:
            continue
        start[name] = fixed_start
        add_to_profile(profile, fixed_start, delays[name], powers[name])

    # Process in topological waves; inside a wave, order by priority.
    remaining = [n for n in cdfg.topological_order() if n not in start]
    scheduled = set(start)

    while remaining:
        ready = [
            n
            for n in remaining
            if all(p in scheduled for p in cdfg.predecessors(n))
        ]
        if not ready:
            # Should not happen on a DAG; defensive.
            raise PowerInfeasibleError(
                f"no ready operations among {remaining!r}; dependence deadlock"
            )
        ready.sort(key=lambda n: priority(n, delays[n], powers[n]))
        for name in ready:
            data_ready = 0
            for pred in cdfg.predecessors(name):
                data_ready = max(data_ready, start[pred] + delays[pred])
            offset = 0
            op_delay = delays[name]
            op_power = powers[name]
            if cdfg.operation(name).is_virtual or op_power == 0.0:
                start[name] = data_ready
            else:
                while not profile_allows(profile, data_ready + offset, op_delay, op_power, power):
                    offset += 1
                    if data_ready + offset > max_horizon:
                        raise PowerInfeasibleError(
                            f"operation {name!r} cannot be placed within the "
                            f"horizon {max_horizon} under budget {power.max_power:.3f}"
                        )
                start[name] = data_ready + offset
                add_to_profile(profile, start[name], op_delay, op_power)
            scheduled.add(name)
        remaining = [n for n in remaining if n not in scheduled]

    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"power_budget": power.max_power},
    )


def pasap_schedule_with_library(
    cdfg: CDFG,
    library: FULibrary,
    power: PowerConstraint,
    selection: Optional[Selection] = None,
    locked: Optional[Mapping[str, int]] = None,
    label: str = "pasap",
) -> Schedule:
    """pasap using delays/powers from a library module selection."""
    if selection is None:
        selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return pasap_schedule(cdfg, delays, powers, power, locked=locked, label=label)


def pasap_start_times(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    locked: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Convenience wrapper returning only the start-time map."""
    return pasap_schedule(cdfg, delays, powers, power, locked=locked).start_times
