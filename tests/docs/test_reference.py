"""The documentation contracts: docstring coverage + a fresh reference.

Two promises keep the docs honest:

* every name exported from ``repro`` carries a non-empty docstring (the
  API-reference generator renders them, so an empty one would ship a
  blank reference entry), and
* ``docs/reference.md`` is exactly what the generator emits for the
  current tree — the same stale-docs gate CI enforces, here in tier 1 so
  it fails at development time, not review time.
"""

import importlib.util
import inspect
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[2]
GENERATOR = REPO_ROOT / "docs" / "generate_reference.py"
REFERENCE = REPO_ROOT / "docs" / "reference.md"


def load_generator():
    spec = importlib.util.spec_from_file_location("generate_reference", GENERATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [n for n in repro.__all__ if n != "__version__"])
def test_every_public_export_has_a_docstring(name):
    obj = getattr(repro, name)
    if inspect.isclass(obj) or inspect.isroutine(obj) or inspect.ismodule(obj):
        doc = obj.__doc__  # own docstring, not one inherited from a base
    else:
        doc = type(obj).__doc__  # registry instances document their type
    assert doc and doc.strip(), f"public export {name!r} has no docstring"


def test_reference_markdown_is_fresh():
    generator = load_generator()
    expected = generator.render()
    assert REFERENCE.exists(), (
        "docs/reference.md is missing — generate it with "
        "`PYTHONPATH=src python docs/generate_reference.py`"
    )
    assert REFERENCE.read_text() == expected, (
        "docs/reference.md is stale — regenerate it with "
        "`PYTHONPATH=src python docs/generate_reference.py`"
    )


def test_generator_is_deterministic():
    generator = load_generator()
    assert generator.render() == generator.render()


def test_check_mode_detects_staleness(tmp_path, capsys):
    generator = load_generator()
    target = tmp_path / "reference.md"
    assert generator.main(["--output", str(target)]) == 0
    assert generator.main(["--output", str(target), "--check"]) == 0
    target.write_text(target.read_text() + "\nstale edit\n")
    assert generator.main(["--output", str(target), "--check"]) == 1
    assert "stale" in capsys.readouterr().err


def test_reference_covers_the_whole_surface():
    text = REFERENCE.read_text()
    for name in repro.__all__:
        if name == "__version__":
            continue
        forms = (f"### `class {name}", f"### `{name}", f"- `{name}` = ")
        assert any(form in text for form in forms), (
            f"{name!r} missing from docs/reference.md"
        )
