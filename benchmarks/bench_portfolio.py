"""Portfolio racing — time-to-first-certified, cold vs. prior-warmed.

The portfolio meta-strategy's pitch (ISSUE 10) is that racing a strategy
subset gets the *first certified* answer sooner than committing to one
strategy up front, and that priors mined from the result store shrink
that time further by launching the historically-best pair first.  This
module builds one real mined corpus — every contender pair run standalone
over a small (benchmark, T, P) grid, filed into a result cache — then
measures, on a pessimally-ordered portfolio task:

* ``test_mine_priors`` — mining launch priors from the corpus store,
* ``test_race_cold`` — the race with empty priors (canonical launches),
* ``test_race_prior_warmed`` — the same race launched in mined order,
* ``test_priors_change_launch_order`` — asserts the ISSUE-10 contract:
  on a real mined corpus the priors permute the launch order, while the
  returned record (winner, area, verdict) is unchanged.

Record the numbers into the repository's benchmark history with::

    python benchmarks/record.py --bench bench_portfolio \
        --history BENCH_scalability.json --label portfolio

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile

import pytest

from repro import ResultCache, mine_priors, run_task
from repro.portfolio import portfolio_task, run_portfolio
from repro.portfolio.runner import PortfolioRunner
from repro.store.priors import Priors

#: The contender pool: every fast pair (the exact engines would dominate
#: the race clock without changing the launch-order story).
PAIRS = ["engine", "pasap", "palap", "force_directed"]

#: The mined corpus: each pair standalone at each constraint point.
GRID = [
    ("hal", 17, 12.0),
    ("hal", 20, 15.0),
    ("cosine", 19, 22.0),
]

#: The race under measurement (same family/bucket as two grid points).
TARGET = ("hal", 17, 12.0)


class Corpus:
    """Every contender run standalone over the grid, filed into one cache."""

    def __init__(self) -> None:
        self.root = tempfile.mkdtemp(prefix="repro-bench-portfolio-")
        self.cache = ResultCache(self.root)
        for graph, latency, power in GRID:
            probe = portfolio_task(
                graph, latency=latency, power_budget=power, strategies=PAIRS
            )
            for slot in PortfolioRunner(probe, priors=Priors()).slots:
                run_task(slot.contender.task, keep_result=False, cache=self.cache)
        self.priors = mine_priors(self.cache.store)

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


@pytest.fixture(scope="module")
def corpus():
    built = Corpus()
    yield built
    built.cleanup()


@pytest.fixture(scope="module")
def race_task(corpus):
    """A portfolio task whose canonical order is pessimal for its bucket.

    The canonical strategy order is the mined ranking *reversed* — the
    naive caller who happens to list the historically-worst pair first.
    Priors exist to fix exactly this launch order, and the canonical
    decision rule guarantees the fix cannot change the answer.
    """
    graph, latency, power = TARGET
    probe = portfolio_task(graph, latency=latency, power_budget=power, strategies=PAIRS)
    labels = [s.contender.label for s in PortfolioRunner(probe, priors=Priors()).slots]
    ranked = corpus.priors.rank(
        labels, family=graph, latency=latency, power_budget=power
    )
    return portfolio_task(
        graph,
        latency=latency,
        power_budget=power,
        strategies=list(reversed(ranked)),
    )


def test_mine_priors(benchmark, corpus):
    """Mining launch priors: one scalar-column scan over the corpus."""

    def mine():
        priors = mine_priors(corpus.cache.store)
        assert not priors.is_empty
        return priors

    benchmark.pedantic(mine, rounds=5, iterations=1)


def test_race_cold(benchmark, race_task):
    """The race with empty priors: contenders launch in canonical order."""
    certified = []

    def race():
        outcome = run_portfolio(race_task, priors=Priors())
        assert outcome.record.feasible is True
        assert outcome.priors_ranked is False
        certified.append(outcome.first_certified_s)
        return outcome.first_certified_s

    benchmark.pedantic(race, rounds=3, iterations=1)
    benchmark.extra_info["first_certified_s"] = sum(certified) / len(certified)


def test_race_prior_warmed(benchmark, corpus, race_task):
    """The same race launched in mined-prior order."""
    certified = []

    def race():
        outcome = run_portfolio(race_task, priors=corpus.priors)
        assert outcome.record.feasible is True
        certified.append(outcome.first_certified_s)
        return outcome.first_certified_s

    benchmark.pedantic(race, rounds=3, iterations=1)
    benchmark.extra_info["first_certified_s"] = sum(certified) / len(certified)


def test_priors_change_launch_order(corpus, race_task):
    """The ISSUE-10 contract: real mined priors permute launches only."""
    cold = run_portfolio(race_task, priors=Priors())
    warm = run_portfolio(race_task, priors=corpus.priors)

    # the mined priors actually reordered the pessimal canonical order
    assert warm.priors_ranked is True
    assert warm.launch_order != cold.launch_order
    assert sorted(warm.launch_order) == sorted(cold.launch_order)

    # ... and changed nothing about the answer
    assert warm.winner == cold.winner
    assert warm.record.feasible == cold.record.feasible
    assert warm.record.area == cold.record.area

    # the mined winner is historically the likeliest: it launches first
    # in the warmed race even though canonical order lists it last
    assert warm.launch_order[0] == cold.launch_order[-1]
