"""Controller (FSM) generation for synthesized datapaths.

A complete RTL design needs, besides the datapath, a controller that walks
through the schedule cycle by cycle and asserts the right control signals:
which functional unit starts which operation, which registers load, and
how the multiplexers are steered.  The paper focuses on the datapath, but
a downstream user of this reproduction needs the controller to judge the
overall design, so this module derives a simple Moore FSM from a
synthesis result:

* one state per clock cycle of the schedule (plus an idle state),
* per state: the set of operations started, the FU instances that are
  busy, and the registers loaded at the end of the cycle,
* an area/power estimate using a documented per-state / per-signal model
  so the controller contribution can be included in reports when desired.

The controller model is intentionally simple — states are not re-encoded
or minimized — but it is sufficient to expose the control cost of a
schedule and to emit a readable FSM table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..binding.register import RegisterAllocation
from ..scheduling.schedule import Schedule
from .rtl import Datapath, DatapathError

#: Area of one FSM state's worth of next-state/output logic (area units).
STATE_AREA = 4.0
#: Area of one distinct control signal driver.
CONTROL_SIGNAL_AREA = 0.5
#: Per-cycle power drawn by the controller while running.
CONTROLLER_POWER = 0.4


@dataclass(frozen=True)
class ControlStep:
    """Control activity of one clock cycle.

    Attributes:
        cycle: The schedule cycle this state corresponds to.
        started_ops: Operations that start executing in this cycle.
        busy_instances: FU instance names executing during this cycle.
        loaded_registers: Register indices that latch a new value at the
            end of this cycle (the producing operation finishes here).
    """

    cycle: int
    started_ops: tuple
    busy_instances: tuple
    loaded_registers: tuple


@dataclass
class Controller:
    """A Moore FSM driving a synthesized datapath through its schedule."""

    steps: List[ControlStep] = field(default_factory=list)
    control_signals: int = 0

    @property
    def num_states(self) -> int:
        """Schedule states plus the idle/reset state."""
        return len(self.steps) + 1

    @property
    def area(self) -> float:
        return self.num_states * STATE_AREA + self.control_signals * CONTROL_SIGNAL_AREA

    @property
    def power(self) -> float:
        """Per-cycle controller power (constant while the FSM is running)."""
        return CONTROLLER_POWER

    def step(self, cycle: int) -> ControlStep:
        try:
            return self.steps[cycle]
        except IndexError:
            raise DatapathError(f"controller has no state for cycle {cycle}") from None

    def describe(self) -> str:
        lines = [
            f"controller: {self.num_states} states, "
            f"{self.control_signals} control signals, area={self.area:.1f}"
        ]
        for step in self.steps:
            lines.append(
                f"  S{step.cycle:<3d} start=[{', '.join(step.started_ops) or '-'}] "
                f"busy=[{', '.join(step.busy_instances) or '-'}] "
                f"load regs={list(step.loaded_registers) or '-'}"
            )
        return "\n".join(lines)


def _loaded_registers(
    schedule: Schedule,
    registers: RegisterAllocation,
    cycle: int,
) -> List[int]:
    """Registers that latch a newly produced value at the end of ``cycle``."""
    loaded = []
    for index, producers in registers.registers.items():
        for producer in producers:
            if producer in schedule.start_times and schedule.finish(producer) == cycle + 1:
                loaded.append(index)
                break
    return sorted(loaded)


def build_controller(datapath: Datapath) -> Controller:
    """Derive the FSM controller for a finalized datapath.

    Raises:
        DatapathError: if the datapath has not been finalized (no register
            allocation available) or has no schedule attached.
    """
    if datapath.schedule is None:
        raise DatapathError("datapath has no schedule; run synthesis first")
    if datapath.registers is None:
        raise DatapathError("datapath is not finalized; call finalize() first")

    schedule = datapath.schedule
    steps: List[ControlStep] = []
    for cycle in range(schedule.makespan):
        started = tuple(
            sorted(
                op
                for op in datapath.binding
                if schedule.start(op) == cycle
            )
        )
        busy = tuple(
            sorted(
                {
                    datapath.binding[op]
                    for op in datapath.binding
                    if schedule.start(op) <= cycle < schedule.finish(op)
                }
            )
        )
        loaded = tuple(_loaded_registers(schedule, datapath.registers, cycle))
        steps.append(
            ControlStep(
                cycle=cycle,
                started_ops=started,
                busy_instances=busy,
                loaded_registers=loaded,
            )
        )

    # One start signal per (instance, distinct start cycle pattern) is a
    # reasonable proxy; we count one signal per instance plus one load
    # enable per register plus one select line per mux input.
    signal_count = len(datapath.instances) + datapath.registers.count
    if datapath.interconnect is not None:
        signal_count += datapath.interconnect.total_mux_inputs
    return Controller(steps=steps, control_signals=signal_count)


def controller_power_profile(controller: Controller) -> List[float]:
    """Constant controller power over the schedule (for combined profiles)."""
    return [controller.power] * len(controller.steps)
