"""Two-step "schedule then reorder" baseline.

The related work the paper positions itself against ([1] Luo & Jha,
[2] Lahiri et al.) first constructs a purely time-constrained schedule and
then, in a second pass, tries to repair the power profile by moving
operations out of over-budget cycles.  Because the second pass only sees
one fixed schedule it has far less freedom than the combined formulation,
and it can fail to meet the power budget even when a feasible schedule
exists.

This module implements that baseline so the ablation benchmark can compare
it with pasap:

1. **Step 1** — a time-constrained schedule via force-directed scheduling
   (or plain ASAP when the latency equals the critical path).
2. **Step 2** — greedy repair: visit cycles in order; whenever a cycle
   exceeds the budget, push the operation with the largest mobility (and
   smallest power contribution needed to fix the violation) one cycle
   later, provided precedence and the latency bound allow it.  Iterate to
   a fixed point or a retry limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.cdfg import CDFG
from .constraints import PowerConstraint, TimeConstraint
from .force_directed import force_directed_schedule
from .schedule import Schedule


@dataclass
class TwoStepResult:
    """Outcome of the two-step baseline.

    Attributes:
        schedule: The final (possibly still violating) schedule.
        met_power: True if the repair pass achieved the power budget.
        moves: Number of single-cycle moves the repair pass performed.
    """

    schedule: Schedule
    met_power: bool
    moves: int


def _can_delay(schedule: Schedule, name: str, latency: int) -> bool:
    """True if delaying ``name`` by one cycle keeps precedence and latency."""
    new_finish = schedule.finish(name) + 1
    if new_finish > latency:
        return False
    for succ in schedule.cdfg.successors(name):
        if succ in schedule.start_times and schedule.start(succ) < new_finish:
            return False
    return True


def two_step_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    time: TimeConstraint,
    max_passes: Optional[int] = None,
    label: str = "two-step",
) -> TwoStepResult:
    """Run the schedule-then-reorder baseline.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency.
        powers: Per-operation per-cycle power.
        power: Power budget the repair pass aims for.
        time: Latency bound the first step must meet.
        max_passes: Cap on repair sweeps (default: generous bound
            proportional to the problem size).
        label: Label stored on the resulting schedule.

    Returns:
        A :class:`TwoStepResult`; ``met_power`` may be False — that is the
        point of the baseline.
    """
    initial = force_directed_schedule(cdfg, delays, powers, time.latency, label=f"{label}.step1")
    start: Dict[str, int] = dict(initial.start_times)
    schedule = initial.copy_with(start_times=start, label=label)

    if max_passes is None:
        max_passes = 4 * len(cdfg) + 16

    moves = 0
    for _ in range(max_passes):
        profile = schedule.power_profile()
        over_budget = [
            cycle for cycle, draw in enumerate(profile) if not power.allows(draw)
        ]
        if not over_budget:
            return TwoStepResult(schedule=schedule, met_power=True, moves=moves)

        cycle = over_budget[0]
        # Candidates: operations active in the violating cycle that can be
        # delayed without breaking precedence or the latency bound.
        candidates = [
            n
            for n in schedule.operations_in_cycle(cycle)
            if schedule.powers[n] > 0 and _can_delay(schedule, n, time.latency)
        ]
        if not candidates:
            break
        # Prefer moving the operation that frees the most power in the
        # violating cycle (largest power first), ties by name.
        candidates.sort(key=lambda n: (-schedule.powers[n], n))
        chosen = candidates[0]
        start = dict(schedule.start_times)
        start[chosen] += 1
        schedule = schedule.copy_with(start_times=start)
        moves += 1

    met = schedule.respects_power(power)
    return TwoStepResult(schedule=schedule, met_power=met, moves=moves)
