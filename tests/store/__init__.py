"""Tests for the sharded columnar result store (repro.store)."""
