"""Differential cross-checking of every registered strategy pair.

:func:`cross_check` runs one :class:`~repro.api.task.SynthesisTask`
through every scheduler × binder combination from the registries and
certifies each result with
:func:`~repro.verify.certificate.check_certificate`.  Every pair runs
with the task's ``verify`` field forced **off**, so the pipeline never
pre-screens a result — this harness is the sole certification authority
and sees every raw outcome (with ``verify`` on, the pipeline's own deep
check would convert a buggy result into a typed infeasibility and mask
exactly the bugs this harness exists to catch).

Certificate violations are then *classified* per strategy:

* a ``power`` violation from a scheduler that never promised to honour
  the budget (``asap``/``alap``/``list``/``force_directed``, and the
  best-effort ``two_step``) — likewise a ``latency`` violation from a
  boundless scheduler (``asap``, ``pasap``) — is the documented
  incompleteness of that strategy: the outcome is *reclassified as
  infeasible* (matching the semantics of running the task with its
  ``verify`` gate on) and is not a harness violation;
* every other violation — structural kinds (binding, registers,
  interconnect, …) from anyone, or a constraint kind from a strategy in
  :data:`POWER_GUARANTEEING` / :data:`LATENCY_GUARANTEEING` — is a bug
  and fails the cross-check.  An *infeasible* outcome whose error is a
  ``CertificateError`` is flagged too: with the pipeline gate off, only
  a self-checking strategy (the engine verifies its own result) can
  produce one, and the engine guarantees every contract.

The second invariant is **soundness vs. the complete schedulers**:
``exact`` (exhaustive search) and ``ilp`` (exact integer programming)
both decide feasibility over the *same* module selection the other
classical schedulers use, so "a complete scheduler says infeasible"
while another classical strategy holds a certified witness means one of
the two is buggy.  Capacity verdicts (``ExactSizeError``,
``ILPLimitError``, ``UnsupportedConstraintError``) are recognised *by
type* and are never treated as infeasibility evidence.

The third invariant is **oracle agreement**: ``exact`` and ``ilp`` are
independent implementations of the same optimization problem, so when
both produce a verdict they must agree on feasibility — and on the
optimal makespan when both are feasible.  Any split is a bug in one of
the two exact engines.

The fourth invariant is **portfolio agreement**: when a ``portfolio``
meta-strategy participates (it must be listed explicitly — see
:data:`META_SCHEDULERS`), its verdict is cross-examined against the
standalone runs of the very strategies it raced.  A feasible portfolio
record must be reproducible by its named winner (same feasibility, same
area); an infeasible portfolio verdict must not be contradicted by a
certified witness from its own contender subset.  Disagreement is a
``differential-oracle`` violation.

What is deliberately **not** an invariant is feasibility agreement
between heuristics: pasap/palap/two_step are incomplete by design (the
paper says so), and the combined ``engine`` upgrades modules so it can be
feasible where every selection-bound scheduler is not.  Disagreements are
*recorded* on the report (``feasibility``/``disagreement``) for fuzzing
statistics, but only the invariants above produce violations.

Every run fans through :func:`repro.api.batch.run_batch` (sequential,
full results kept — certification needs the datapath).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.batch import run_batch
from ..api.task import SynthesisTask
from ..registries import BINDERS, SCHEDULERS
from .certificate import CertificateReport, Violation, check_certificate

#: Schedulers that bind while scheduling; the binder field is inert for
#: them, so only one pair per scheduler is generated.
SELF_BINDING_SCHEDULERS = ("engine",)

#: Meta-strategies that race *other* schedulers rather than scheduling
#: themselves.  Excluded from the default all-registered pair expansion
#: (a portfolio inside a cross-check would re-run the very pairs the
#: harness already runs); included only when explicitly listed — the
#: fuzzer does so for a sampled fraction of cases, and the portfolio
#: verdict is then cross-examined against its own winning strategy.
META_SCHEDULERS = ("portfolio",)

#: Schedulers that run without a latency bound (everything else is
#: skipped when the task has ``latency=None``).
BOUNDLESS_SCHEDULERS = ("asap", "pasap")

#: Schedulers whose infeasibility verdict is authoritative for the module
#: selection they were given (exhaustive search / exact optimization,
#: not a heuristic).
COMPLETE_SCHEDULERS = ("exact", "ilp")

#: Schedulers that *guarantee* the power budget when they succeed — a
#: power violation from one of these is a bug, not obliviousness.
#: (two_step is best-effort: it records whether the repair met P.)
POWER_GUARANTEEING = ("pasap", "palap", "exact", "ilp", "engine")

#: Schedulers that *guarantee* the latency bound when they succeed.
#: (pasap stretches without a bound; the list scheduler's latency is a
#: hint; asap simply ignores T.)
LATENCY_GUARANTEEING = ("alap", "force_directed", "palap", "exact", "ilp", "engine")

#: Schedulers that *guarantee* a task's register budget when they succeed.
#: (The pipeline rejects budgeted tasks for everyone else up front.)
REGISTER_GUARANTEEING = ("ilp",)

#: Error types that are *capacity* verdicts, not scheduling verdicts: the
#: strategy declined to decide (size cap, node budget, unsupported
#: constraint dimension).  Recognised structurally by exception type name
#: so the harness never has to pattern-match error prose.
NON_VERDICT_ERRORS = frozenset(
    {
        "ExactSizeError",
        "ILPLimitError",
        "UnsupportedConstraintError",
        # A portfolio that expired or whose contenders failed to produce
        # verdicts abstains: it never decided feasibility.
        "PortfolioDeadlineError",
        "PortfolioExecutionError",
    }
)

#: Portfolio abstentions are never cacheable (see repro.portfolio.runner)
#: — keep them out of the harness's deferred cache writes too.
_PORTFOLIO_ABSTENTIONS = frozenset(
    {"PortfolioDeadlineError", "PortfolioExecutionError"}
)

#: Violation kinds that express a missed (T, P, R) constraint rather
#: than a structurally broken result.
_CONSTRAINT_KINDS = frozenset({"latency", "power", "register-budget"})


def _tolerated_kinds(scheduler: str) -> frozenset:
    """Constraint kinds ``scheduler`` never promised to honour."""
    tolerated = set()
    if scheduler not in POWER_GUARANTEEING:
        tolerated.add("power")
    if scheduler not in LATENCY_GUARANTEEING:
        tolerated.add("latency")
    if scheduler not in REGISTER_GUARANTEEING:
        tolerated.add("register-budget")
    return frozenset(tolerated)


def strategy_pairs(
    schedulers: Optional[Sequence[str]] = None,
    binders: Optional[Sequence[str]] = None,
    *,
    needs_latency: bool = True,
) -> List[Tuple[str, str]]:
    """Every (scheduler, binder) pair the registries offer for one task.

    Self-binding schedulers (``engine``) contribute a single pair with
    the default binder name — the binder never runs for them.  With
    ``needs_latency=False`` (a task without a latency bound) only the
    boundless schedulers are kept.

    ``None`` means "all registered"; an explicit empty sequence means
    exactly that — no pairs (the fuzzer relies on the distinction when a
    case-level filter empties the configured scheduler set).
    """
    scheduler_names = SCHEDULERS.names() if schedulers is None else list(schedulers)
    binder_names = BINDERS.names() if binders is None else list(binders)
    pairs: List[Tuple[str, str]] = []
    for scheduler in scheduler_names:
        if schedulers is None and scheduler in META_SCHEDULERS:
            continue
        if not needs_latency and scheduler not in BOUNDLESS_SCHEDULERS:
            continue
        if scheduler in SELF_BINDING_SCHEDULERS:
            # The binder field is inert here; any registered name does.
            inert = binder_names[0] if binder_names else BINDERS.names()[0]
            pairs.append((scheduler, inert))
        else:
            pairs.extend((scheduler, binder) for binder in binder_names)
    return pairs


@dataclass
class StrategyOutcome:
    """What one (scheduler, binder) pair did with the task.

    Attributes:
        scheduler: Scheduler strategy name.
        binder: Binder strategy name (inert for self-binding schedulers).
        feasible: Whether the pair produced a result.
        certified: Certificate verdict for feasible outcomes (``None``
            when infeasible, or when served from a scalar cache record).
        certificate: The full report behind ``certified``.
        error: Failure message for infeasible outcomes.
        error_type: Exception class name for infeasible outcomes.
        area / peak_power / latency: Scalar metrics of feasible outcomes.
        optimal_latency: The provably optimal makespan claimed by an
            exact scheduler (``exact``/``ilp`` metadata; ``None``
            elsewhere) — what the oracle-agreement invariant compares.
        cached: The outcome was answered by a result cache (scalars only).
        elapsed: Wall-clock seconds of the underlying run.
        winner: For a ``portfolio`` outcome: the pair label of the
            contender whose certified result the race returned.
        portfolio_subset: For a ``portfolio`` outcome: the canonical pair
            labels of the contenders it raced — the scope of the
            portfolio-agreement invariant.
    """

    scheduler: str
    binder: str
    feasible: bool
    certified: Optional[bool] = None
    certificate: Optional[CertificateReport] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    area: Optional[float] = None
    peak_power: Optional[float] = None
    latency: Optional[int] = None
    optimal_latency: Optional[int] = None
    cached: bool = False
    elapsed: float = 0.0
    winner: Optional[str] = None
    portfolio_subset: Optional[List[str]] = None

    @property
    def is_verdict(self) -> bool:
        """True when this outcome decides feasibility (capacity errors don't)."""
        return self.feasible or self.error_type not in NON_VERDICT_ERRORS

    @property
    def pair(self) -> str:
        return f"{self.scheduler}+{self.binder}"

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scheduler": self.scheduler,
            "binder": self.binder,
            "feasible": self.feasible,
            "certified": self.certified,
            "error": self.error,
            "error_type": self.error_type,
            "area": self.area,
            "peak_power": self.peak_power,
            "latency": self.latency,
            "optimal_latency": self.optimal_latency,
            "cached": self.cached,
            "elapsed": self.elapsed,
        }
        if self.winner is not None:
            data["winner"] = self.winner
        if self.portfolio_subset is not None:
            data["portfolio_subset"] = list(self.portfolio_subset)
        if self.certificate is not None and not self.certificate.ok:
            data["certificate"] = self.certificate.to_dict()
        return data


@dataclass
class CrossCheckReport:
    """Differential outcome of one task across every strategy pair."""

    task: SynthesisTask
    outcomes: List[StrategyOutcome] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def feasibility(self) -> Dict[str, bool]:
        """Pair label → feasibility verdict."""
        return {outcome.pair: outcome.feasible for outcome in self.outcomes}

    @property
    def disagreement(self) -> bool:
        """True when the pairs split on feasibility (informational)."""
        verdicts = {outcome.feasible for outcome in self.outcomes}
        return len(verdicts) > 1

    def feasible_outcomes(self) -> List[StrategyOutcome]:
        return [outcome for outcome in self.outcomes if outcome.feasible]

    def describe(self) -> str:
        feasible = sum(1 for o in self.outcomes if o.feasible)
        lines = [
            f"cross-check {self.task.describe()}: "
            f"{feasible}/{len(self.outcomes)} pairs feasible"
            + (", split on feasibility" if self.disagreement else "")
        ]
        for outcome in self.outcomes:
            if outcome.feasible:
                verdict = {True: "certified", False: "VIOLATIONS", None: "cached"}[
                    outcome.certified
                ]
                lines.append(
                    f"  {outcome.pair}: area={outcome.area:g} ({verdict})"
                )
            else:
                lines.append(f"  {outcome.pair}: {outcome.error_type}")
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task.to_dict(),
            "ok": self.ok,
            "disagreement": self.disagreement,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "violations": [violation.to_dict() for violation in self.violations],
        }


def _pair_task(task: SynthesisTask, scheduler: str, binder: str) -> SynthesisTask:
    """The task re-spelled for one strategy pair, with ``verify`` forced OFF.

    The pipeline's internal gate runs the same certificate checker this
    harness runs; leaving it on would convert every buggy result into a
    typed infeasibility before the harness could see (and flag) it.
    Constraint misses by oblivious strategies are instead reclassified
    after certification (see the module docstring).
    """
    return dataclasses.replace(
        task, scheduler=scheduler, binder=binder, verify=False, options=dict(task.options)
    )


def cross_check(
    task: SynthesisTask,
    schedulers: Optional[Sequence[str]] = None,
    binders: Optional[Sequence[str]] = None,
    *,
    cache=None,
) -> CrossCheckReport:
    """Run ``task`` through every strategy pair; certify and cross-examine.

    Args:
        task: The task to differentiate (its own ``scheduler``/``binder``
            fields are ignored — every pair is substituted in).
        schedulers: Scheduler names to include (default: all registered).
        binders: Binder names to include (default: all registered).
        cache: Optional :class:`~repro.explore.cache.ResultCache`.  Hits
            come back as scalar records, which cannot be re-certified —
            their ``certified`` stays ``None`` — so only records that
            were feasible-and-certified (or infeasible) in the run that
            computed them are stored.

    Returns:
        A :class:`CrossCheckReport`; ``report.violations`` is non-empty
        when a feasible result failed certification or a classical
        strategy holds a certified witness the exact scheduler called
        infeasible.
    """
    pairs = strategy_pairs(
        schedulers, binders, needs_latency=task.latency is not None
    )
    report = CrossCheckReport(task=task)

    # Answer what the cache can, then fan the misses through run_batch
    # (sequential, full results kept — certification needs the datapath).
    slots: List[Tuple[StrategyOutcome, SynthesisTask, Any]] = []
    pending: List[SynthesisTask] = []
    pending_puts: List[Tuple[StrategyOutcome, SynthesisTask, Any]] = []
    for scheduler, binder in pairs:
        pair_task = _pair_task(task, scheduler, binder)
        outcome = StrategyOutcome(scheduler=scheduler, binder=binder, feasible=False)
        hit = cache.get(pair_task) if cache is not None else None
        if hit is not None:
            outcome.cached = True
        else:
            pending.append(pair_task)
        slots.append((outcome, pair_task, hit))
    computed = iter(run_batch(pending, keep_results=True))

    for outcome, pair_task, hit in slots:
        record = hit if hit is not None else next(computed)
        outcome.feasible = record.feasible
        outcome.error = record.error
        outcome.error_type = record.error_type
        outcome.area = record.area
        outcome.peak_power = record.peak_power
        outcome.latency = record.latency
        outcome.elapsed = record.elapsed
        if outcome.scheduler in META_SCHEDULERS:
            from ..portfolio.config import PortfolioConfig

            outcome.winner = getattr(record, "winner", None)
            config, _ = PortfolioConfig.from_task_options(pair_task.options)
            outcome.portfolio_subset = list(config.labels(outcome.binder))
        buggy = False
        if hit is not None and record.feasible:
            # Scalar cache hits cannot be re-certified, but a constraint
            # miss is visible in the stored metrics — reclassify exactly
            # as the cold run did so warm and cold reports agree.
            # (Structural violations never enter the cache, so a hit is
            # either fully certified or a constraint-only miss.)
            misses = _scalar_constraint_misses(task, record)
            if misses:
                outcome.feasible = False
                outcome.error_type = "CertificateError"
                outcome.error = (
                    "uncertified under the task constraints: " + ", ".join(misses)
                )
                outcome.area = None
                outcome.peak_power = None
                outcome.latency = None
        if record.feasible and record.result is not None:
            makespan = record.result.schedule.metadata.get("optimal_makespan")
            if makespan is not None:
                outcome.optimal_latency = int(makespan)
            certificate = check_certificate(record.result)
            outcome.certificate = certificate
            outcome.certified = certificate.ok
            if not certificate.ok:
                tolerated = _tolerated_kinds(outcome.scheduler)
                structural = [
                    v for v in certificate.violations if v.kind not in tolerated
                ]
                if structural:
                    # A broken result (or a broken promise): a bug.
                    buggy = True
                    for violation in structural:
                        report.violations.append(
                            Violation(
                                "certificate",
                                f"{outcome.pair}/{violation.subject}",
                                violation.message,
                                dict(violation.details, kind=violation.kind),
                            )
                        )
                else:
                    # Only constraint kinds the strategy never promised:
                    # the documented incompleteness — reclassify as
                    # infeasibility data (what running the task with its
                    # verify gate on would have reported).
                    outcome.feasible = False
                    outcome.error_type = "CertificateError"
                    outcome.error = (
                        "uncertified under the task constraints: "
                        + ", ".join(certificate.kinds())
                    )
                    outcome.area = None
                    outcome.peak_power = None
                    outcome.latency = None
        elif (
            not record.feasible
            and record.error_type == "CertificateError"
            and outcome.scheduler not in META_SCHEDULERS
        ):
            # With the pipeline gate off, only a self-checking strategy
            # (the engine verifies its own result) raises this — and the
            # engine guarantees every contract, so it is always a bug.
            # (A portfolio record relays the canonical-first contender's
            # error type; its contenders race with their gates *on*, so a
            # CertificateError there is an ordinary reclassified miss.)
            buggy = True
            report.violations.append(
                Violation(
                    "certificate",
                    outcome.pair,
                    f"strategy failed its own certification: {record.error}",
                )
            )
        if (
            not buggy
            and hit is None
            and record.error_type not in _PORTFOLIO_ABSTENTIONS
        ):
            pending_puts.append((outcome, pair_task, record))
        report.outcomes.append(outcome)

    implicated = _check_exact_soundness(report)
    implicated.extend(_check_oracle_agreement(report))
    implicated.extend(_check_portfolio_agreement(report))
    # A record that exposed a bug must never enter the cache — a later
    # --resume would silently serve the lie as scalars.  That includes
    # the certified witnesses of a soundness violation (a scalar hit
    # cannot be re-certified, so a resumed witness would no longer
    # qualify and the violation would vanish); hence writes happen only
    # here, after every invariant has run.  The *raw* record of a
    # reclassified constraint miss is cached: it is exactly what the
    # verify=False spec it is filed under produces.
    if cache is not None:
        implicated_ids = {id(outcome) for outcome in implicated}
        for outcome, pair_task, record in pending_puts:
            if id(outcome) not in implicated_ids:
                cache.put(pair_task, record)
    return report


def _scalar_constraint_misses(task: SynthesisTask, record) -> List[str]:
    """Constraint kinds a scalar record visibly misses (for cache hits)."""
    misses: List[str] = []
    if (
        task.latency is not None
        and record.latency is not None
        and record.latency > task.latency
    ):
        misses.append("latency")
    if (
        task.power_budget is not None
        and record.peak_power is not None
        and record.peak_power > task.power_budget + 1e-9
    ):
        misses.append("power")
    return misses


def _check_exact_soundness(report: CrossCheckReport) -> List[StrategyOutcome]:
    """Exact-infeasible + certified classical witness = a soundness bug.

    Only classical (selection-bound, non-self-binding) strategies count
    as witnesses: the combined engine upgrades modules, so its schedule
    is not a witness for the selection the exact search explored.

    Returns the witness outcomes implicated in a violation, so the
    caller can keep their records out of the cache (the exact side's
    infeasible record is safe to cache — its error text survives as
    scalars, so the check still fires against a resumed exact verdict).
    """
    exact_infeasible = [
        outcome
        for outcome in report.outcomes
        if outcome.scheduler in COMPLETE_SCHEDULERS
        and not outcome.feasible
        # A capacity rejection (size cap, node budget, unsupported
        # constraint) proves nothing about feasibility; only a genuine
        # verdict is authoritative.  Recognised by exception type, not
        # by matching error prose.
        and outcome.is_verdict
    ]
    if not exact_infeasible:
        return []
    witnesses = [
        outcome
        for outcome in report.outcomes
        if outcome.feasible
        and outcome.certified
        and outcome.scheduler not in COMPLETE_SCHEDULERS
        and outcome.scheduler not in SELF_BINDING_SCHEDULERS
    ]
    for witness in witnesses:
        report.violations.append(
            Violation(
                "differential-soundness",
                witness.pair,
                f"holds a certified result (area={witness.area:g}) although the "
                f"exact scheduler reported infeasibility "
                f"({exact_infeasible[0].error_type}: {exact_infeasible[0].error})",
                {"witness": witness.pair, "exact_error": exact_infeasible[0].error},
            )
        )
    return witnesses


def _check_oracle_agreement(report: CrossCheckReport) -> List[StrategyOutcome]:
    """The complete schedulers must agree with each other.

    ``exact`` and ``ilp`` are independent exact engines for the same
    optimization problem.  Whenever two of them produce verdicts for one
    task they must split neither on feasibility nor — when both are
    feasible — on the optimal makespan they claim.  Capacity outcomes
    (``is_verdict`` False) abstain.

    Returns the implicated outcomes so their records stay out of the
    cache (a resumed scalar hit could no longer testify).
    """
    by_scheduler: Dict[str, StrategyOutcome] = {}
    for outcome in report.outcomes:
        if outcome.scheduler in COMPLETE_SCHEDULERS and outcome.is_verdict:
            # Binder choice cannot change a scheduling verdict; one
            # representative outcome per scheduler suffices.
            by_scheduler.setdefault(outcome.scheduler, outcome)
    oracles = [by_scheduler[name] for name in COMPLETE_SCHEDULERS if name in by_scheduler]
    if len(oracles) < 2:
        return []
    implicated: List[StrategyOutcome] = []

    def implicate(*schedulers: str) -> None:
        implicated.extend(
            outcome
            for outcome in report.outcomes
            if outcome.scheduler in schedulers
        )

    reference = oracles[0]
    for other in oracles[1:]:
        if reference.feasible != other.feasible:
            feasible, infeasible = (
                (reference, other) if reference.feasible else (other, reference)
            )
            report.violations.append(
                Violation(
                    "differential-oracle",
                    f"{reference.scheduler}/{other.scheduler}",
                    f"complete schedulers split on feasibility: "
                    f"{feasible.scheduler} found a schedule, "
                    f"{infeasible.scheduler} proved infeasibility "
                    f"({infeasible.error_type}: {infeasible.error})",
                    {
                        "feasible": feasible.scheduler,
                        "infeasible": infeasible.scheduler,
                    },
                )
            )
            implicate(reference.scheduler, other.scheduler)
        elif (
            reference.feasible
            and reference.optimal_latency is not None
            and other.optimal_latency is not None
            and reference.optimal_latency != other.optimal_latency
        ):
            report.violations.append(
                Violation(
                    "differential-oracle",
                    f"{reference.scheduler}/{other.scheduler}",
                    f"complete schedulers disagree on the optimal makespan: "
                    f"{reference.scheduler} says {reference.optimal_latency}, "
                    f"{other.scheduler} says {other.optimal_latency}",
                    {
                        reference.scheduler: reference.optimal_latency,
                        other.scheduler: other.optimal_latency,
                    },
                )
            )
            implicate(reference.scheduler, other.scheduler)
    return implicated


def _outcome_label(outcome: StrategyOutcome) -> str:
    """The canonical pair label a portfolio would use for this outcome."""
    if outcome.scheduler in SELF_BINDING_SCHEDULERS:
        return outcome.scheduler
    return outcome.pair


def _check_portfolio_agreement(report: CrossCheckReport) -> List[StrategyOutcome]:
    """A portfolio verdict must agree with the strategies it raced.

    The portfolio is a *derived* oracle: its record is (by construction)
    the certified result of one concrete contender, so when the same
    cross-check also ran that contender standalone, the two must agree —
    a feasible portfolio whose named winner produced no certified result
    (or a different area) means the race returned something its winner
    cannot reproduce; an infeasible portfolio verdict contradicted by a
    certified witness *from its own contender subset* means the race
    dropped a feasible answer.  Abstentions on either side
    (:data:`NON_VERDICT_ERRORS`) prove nothing and are skipped.

    Returns the implicated outcomes so their records stay out of the
    cache.
    """
    portfolios = [o for o in report.outcomes if o.scheduler in META_SCHEDULERS]
    if not portfolios:
        return []
    by_label: Dict[str, StrategyOutcome] = {}
    for outcome in report.outcomes:
        if outcome.scheduler in META_SCHEDULERS:
            continue
        by_label.setdefault(_outcome_label(outcome), outcome)
    implicated: List[StrategyOutcome] = []
    for portfolio in portfolios:
        if portfolio.feasible:
            winner = by_label.get(portfolio.winner) if portfolio.winner else None
            if winner is None or not winner.is_verdict:
                continue
            if not winner.feasible:
                report.violations.append(
                    Violation(
                        "differential-oracle",
                        f"{portfolio.pair}/{portfolio.winner}",
                        f"portfolio won through {portfolio.winner} "
                        f"(area={portfolio.area:g}) but that strategy produced "
                        f"no certified result standalone "
                        f"({winner.error_type}: {winner.error})",
                        {"winner": portfolio.winner, "area": portfolio.area},
                    )
                )
                implicated.extend((portfolio, winner))
            elif (
                portfolio.area is not None
                and winner.area is not None
                and abs(portfolio.area - winner.area) > 1e-9
            ):
                report.violations.append(
                    Violation(
                        "differential-oracle",
                        f"{portfolio.pair}/{portfolio.winner}",
                        f"portfolio area {portfolio.area:g} disagrees with its "
                        f"winner {portfolio.winner} standalone "
                        f"(area={winner.area:g})",
                        {
                            "winner": portfolio.winner,
                            "portfolio_area": portfolio.area,
                            "winner_area": winner.area,
                        },
                    )
                )
                implicated.extend((portfolio, winner))
        elif portfolio.is_verdict:
            subset = set(portfolio.portfolio_subset or ())
            for label, outcome in by_label.items():
                if subset and label not in subset:
                    continue
                if outcome.feasible and outcome.certified:
                    report.violations.append(
                        Violation(
                            "differential-oracle",
                            f"{portfolio.pair}/{label}",
                            f"portfolio called the race infeasible "
                            f"({portfolio.error_type}: {portfolio.error}) but "
                            f"contender {label} holds a certified result "
                            f"(area={outcome.area:g})",
                            {"witness": label, "witness_area": outcome.area},
                        )
                    )
                    implicated.extend((portfolio, outcome))
    return implicated
