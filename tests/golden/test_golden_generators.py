"""Golden fingerprints for the scenario-family generators.

A fingerprint change means a generator now produces a *different graph*
for the same parameters and seed — which silently invalidates cached
results and seeded fuzz reproductions.  Regenerate deliberately with::

    PYTHONPATH=src python tests/golden/generate_generator_goldens.py
"""

import json
import os

import pytest

from tests.golden.generate_generator_goldens import (
    BENCHMARKS,
    OUTPUT,
    SEEDS,
    fingerprint,
)
from repro.suite.generators import family_cdfg, family_names
from repro.suite.registry import build_benchmark


@pytest.fixture(scope="module")
def goldens():
    assert os.path.exists(OUTPUT), (
        "golden_generators.json is missing; run "
        "PYTHONPATH=src python tests/golden/generate_generator_goldens.py"
    )
    with open(OUTPUT) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_family_benchmark_fingerprints(goldens, name):
    assert fingerprint(build_benchmark(name)) == goldens["benchmarks"][name]


def test_every_family_has_golden_seeds(goldens):
    assert set(goldens["families"]) == set(family_names())


@pytest.mark.parametrize("family", ["chain", "tree", "butterfly", "mesh", "layered"])
def test_family_seed_fingerprints(goldens, family):
    for seed in SEEDS:
        assert fingerprint(family_cdfg(family, seed)) == (
            goldens["families"][family][str(seed)]
        ), f"{family} seed {seed} drifted"
