"""Unit tests for the persistent job queue."""

import json

import pytest

from repro.api.task import SynthesisTask
from repro.serve.queue import DONE, FAILED, PENDING, RUNNING, JobQueue, QueueError


def task(power=12.0):
    return SynthesisTask(graph="hal", latency=17, power_budget=power)


class TestLifecycle:
    def test_submit_take_finish(self):
        queue = JobQueue()
        job = queue.submit(task())
        assert job.state == PENDING
        assert job.key == task().cache_key()

        taken = queue.take(timeout=0.1)
        assert taken is job and job.state == RUNNING
        queue.finish(job, record={"feasible": True})
        assert job.state == DONE and job.finished
        assert queue.counts() == {"pending": 0, "running": 0, "done": 1, "failed": 0}

    def test_fifo_order(self):
        queue = JobQueue()
        first = queue.submit(task(10.0))
        second = queue.submit(task(12.0))
        assert queue.take(timeout=0.1) is first
        assert queue.take(timeout=0.1) is second
        assert queue.depth == 0

    def test_finish_with_error_marks_failed(self):
        queue = JobQueue()
        job = queue.submit(task())
        queue.take(timeout=0.1)
        queue.finish(job, error="boom", error_type="CertificateError")
        assert job.state == FAILED
        assert job.error_type == "CertificateError"

    def test_take_times_out_empty(self):
        assert JobQueue().take(timeout=0.01) is None

    def test_closed_queue_refuses_submissions_and_unblocks_take(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueError):
            queue.submit(task())
        assert queue.take(timeout=5.0) is None  # returns immediately, no wait

    def test_illegal_transitions_raise(self):
        queue = JobQueue()
        job = queue.submit(task())
        with pytest.raises(QueueError):
            queue.finish(job)  # still pending
        with pytest.raises(QueueError):
            queue.requeue(job)

    def test_requeue_puts_job_back_at_the_head(self):
        queue = JobQueue()
        first = queue.submit(task(10.0))
        queue.submit(task(12.0))
        queue.take(timeout=0.1)
        queue.requeue(first)
        assert first.state == PENDING and first.requeues == 1
        assert queue.take(timeout=0.1) is first  # ahead of the other pending job


class TestSingleFlight:
    def test_key_turns_follow_take_order(self):
        queue = JobQueue()
        leader = queue.submit(task())
        follower = queue.submit(task())  # content-identical
        queue.take(timeout=0.1)
        queue.take(timeout=0.1)
        assert queue.wait_for_key_turn(leader, timeout=0.1)
        assert not queue.wait_for_key_turn(follower, timeout=0.05)  # leader running
        queue.finish(leader, record={})
        assert queue.wait_for_key_turn(follower, timeout=1.0)

    def test_distinct_keys_never_wait(self):
        queue = JobQueue()
        a = queue.submit(task(10.0))
        b = queue.submit(task(12.0))
        queue.take(timeout=0.1)
        queue.take(timeout=0.1)
        assert queue.wait_for_key_turn(a, timeout=0.1)
        assert queue.wait_for_key_turn(b, timeout=0.1)


class TestPersistence:
    def test_replay_restores_jobs_and_states(self, tmp_path):
        queue = JobQueue(tmp_path)
        done = queue.submit(task(10.0))
        queue.submit(task(12.0))  # stays pending
        queue.take(timeout=0.1)
        queue.finish(done, record={"feasible": True, "area": 7.0})

        reopened = JobQueue(tmp_path)
        assert len(reopened) == 2
        restored = reopened.get(done.id)
        assert restored.state == DONE
        assert restored.record == {"feasible": True, "area": 7.0}
        assert reopened.depth == 1  # the pending job re-entered the queue
        assert reopened.take(timeout=0.1).task.power_budget == 12.0

    def test_replay_requeues_jobs_left_running_by_a_crash(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(task())
        queue.take(timeout=0.1)
        assert job.state == RUNNING  # "process dies here"

        reopened = JobQueue(tmp_path)
        revived = reopened.get(job.id)
        assert revived.state == PENDING
        assert revived.requeues == 1
        assert reopened.depth == 1

    def test_torn_log_tail_is_tolerated(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(task())
        with open(queue.log_path, "a") as handle:
            handle.write('{"event": "submit", "id": "job-trunc')  # killed mid-write

        reopened = JobQueue(tmp_path)
        assert len(reopened) == 1
        assert reopened.depth == 1

    def test_log_lines_are_one_json_object_each(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(task())
        queue.take(timeout=0.1)
        queue.finish(job, record={})
        lines = queue.log_path.read_text().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == [
            "submit",
            "start",
            "finish",
        ]

    def test_in_memory_queue_has_no_log(self):
        assert JobQueue().log_path is None
