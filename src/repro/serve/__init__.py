"""The serving layer: a concurrent synthesis service over HTTP.

``repro.serve`` turns the batch/cache/verify stack into a long-lived
process that accepts work over the wire — the piece that makes the
repository a *service* rather than a toolbox:

* :class:`~repro.serve.queue.JobQueue` — a persistent, crash-tolerant
  FIFO of accepted jobs (append-only JSONL event log; replay requeues
  work a dead process left in flight),
* :class:`~repro.serve.service.SynthesisService` — a worker pool
  executing jobs through :func:`~repro.api.batch.run_task` against one
  shared :class:`~repro.explore.cache.ResultCache`, with per-content-
  address single-flight so identical requests synthesize exactly once,
* :class:`~repro.serve.http.SynthesisServer` / :func:`start_server` —
  the stdlib ``ThreadingHTTPServer`` JSON surface (``POST /tasks``,
  ``GET /jobs/<id>``, ``GET /results/<key>``, ``GET /healthz``,
  ``GET /stats``),
* :class:`~repro.serve.client.Client` — a small blocking client, used
  by ``repro submit``, the examples and the end-to-end tests.

Quickstart (in-process, ephemeral port)::

    from repro.serve import Client, start_server

    with start_server(workers=4) as handle:
        client = Client(handle.url)
        records = client.submit_and_wait([
            {"graph": "hal", "latency": 17, "power_budget": p}
            for p in (10.0, 12.0, 16.0)
        ])
        for record in records:
            print(record.feasible, record.area, record.peak_power)

From the command line: ``repro serve --port 8642`` and
``repro submit batch.json --url http://127.0.0.1:8642 --wait``.
"""

from .client import Client, ClientError
from .http import ServerHandle, SynthesisServer, start_server
from .queue import Job, JobQueue, QueueError
from .service import ServiceError, SynthesisService

__all__ = [
    "Client",
    "ClientError",
    "Job",
    "JobQueue",
    "QueueError",
    "ServerHandle",
    "ServiceError",
    "SynthesisServer",
    "SynthesisService",
    "start_server",
]
