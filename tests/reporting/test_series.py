"""Unit tests for series capture, CSV export and ASCII plotting."""

from repro.reporting.series import Series, ascii_plot, save_csv, to_csv


class TestSeries:
    def test_add_and_accessors(self):
        s = Series("hal (T=17)")
        s.add(10, 700)
        s.add(20, 600)
        assert s.xs() == [10.0, 20.0]
        assert s.ys() == [700.0, 600.0]

    def test_sorted_by_x(self):
        s = Series("x")
        s.add(5, 1)
        s.add(1, 2)
        assert s.sorted_by_x().xs() == [1.0, 5.0]

    def test_monotonicity_check(self):
        s = Series("x")
        for x, y in ((1, 10), (2, 8), (3, 8)):
            s.add(x, y)
        assert s.is_monotone_non_increasing()
        s.add(4, 9)
        assert not s.is_monotone_non_increasing()


class TestCsv:
    def test_long_format(self):
        s = Series("hal")
        s.add(1, 2)
        csv = to_csv([s])
        assert csv.splitlines()[0] == "series,x,y"
        assert "hal,1,2" in csv

    def test_save(self, tmp_path):
        s = Series("hal")
        s.add(1, 2)
        path = tmp_path / "out.csv"
        save_csv([s], path)
        assert path.read_text().startswith("series,x,y")


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        a = Series("first")
        b = Series("second")
        for x in range(5):
            a.add(x, x)
            b.add(x, 10 - x)
        plot = ascii_plot([a, b])
        assert "*" in plot and "o" in plot
        assert "first" in plot and "second" in plot

    def test_empty_plot(self):
        assert ascii_plot([]) == "(no data)"

    def test_single_point(self):
        s = Series("p")
        s.add(1, 1)
        assert "p" in ascii_plot([s])
