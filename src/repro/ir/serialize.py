"""JSON (de)serialization of CDFGs.

The format is deliberately simple so graphs can be exchanged with other
tools or stored next to experiment results::

    {
      "name": "hal",
      "operations": [
        {"name": "m1", "type": "*", "label": "m1", "attrs": {}},
        ...
      ],
      "edges": [
        {"src": "x", "dst": "m1", "multiplicity": 1},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .cdfg import CDFG, CDFGError
from .operation import Operation, OpType
from .validate import validate_cdfg


def to_dict(cdfg: CDFG) -> Dict[str, Any]:
    """Convert a CDFG to a JSON-serializable dictionary."""
    return {
        "name": cdfg.name,
        "operations": [
            {
                "name": op.name,
                "type": op.optype.value,
                "label": op.label,
                "attrs": dict(op.attrs),
            }
            for op in cdfg.operations()
        ],
        "edges": [
            {
                "src": src,
                "dst": dst,
                "multiplicity": cdfg.edge_multiplicity(src, dst),
            }
            for src, dst in cdfg.edges()
        ],
    }


def from_dict(data: Dict[str, Any], validate: bool = True) -> CDFG:
    """Reconstruct a CDFG from :func:`to_dict` output.

    Raises:
        CDFGError: if required keys are missing or refer to unknown nodes.
    """
    try:
        name = data["name"]
        operations = data["operations"]
        edges = data["edges"]
    except KeyError as exc:
        raise CDFGError(f"missing key in CDFG dictionary: {exc}") from None

    cdfg = CDFG(name)
    for entry in operations:
        op = Operation(
            name=entry["name"],
            optype=OpType.from_mnemonic(entry["type"]),
            label=entry.get("label", ""),
            attrs=entry.get("attrs", {}),
        )
        cdfg.add_operation(op)
    for entry in edges:
        multiplicity = int(entry.get("multiplicity", 1))
        for _ in range(multiplicity):
            cdfg.add_edge(entry["src"], entry["dst"])
    if validate:
        validate_cdfg(cdfg)
    return cdfg


def to_json(cdfg: CDFG, indent: int = 2) -> str:
    """Serialize a CDFG to a JSON string."""
    return json.dumps(to_dict(cdfg), indent=indent, sort_keys=True)


def from_json(text: str, validate: bool = True) -> CDFG:
    """Deserialize a CDFG from a JSON string."""
    return from_dict(json.loads(text), validate=validate)


def save(cdfg: CDFG, path: Union[str, Path]) -> Path:
    """Write a CDFG to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(to_json(cdfg), encoding="utf-8")
    return path


def load(path: Union[str, Path], validate: bool = True) -> CDFG:
    """Read a CDFG from a JSON file."""
    return from_json(Path(path).read_text(encoding="utf-8"), validate=validate)
