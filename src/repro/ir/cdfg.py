"""Control/data-flow graph (CDFG) container.

The :class:`CDFG` wraps a :class:`networkx.DiGraph` whose nodes are
operation names and whose edges are data dependences.  It is the single
intermediate representation shared by all schedulers, the compatibility
graph construction, the binder and the power analysis.

Design notes
------------
* Nodes are addressed by their *name* (a string); the full
  :class:`~repro.ir.operation.Operation` object is stored as node data.
  This keeps networkx algorithms directly applicable and serialization
  trivial.
* Edges may carry an optional ``port`` attribute identifying which input
  of the consumer the value feeds (0 = left, 1 = right), used by the
  interconnect estimator.
* The graph must remain a DAG; :meth:`CDFG.validate` (see
  :mod:`repro.ir.validate`) enforces this and other structural rules.

Caching and invalidation contract
---------------------------------
Scheduler inner loops call :meth:`CDFG.predecessors`,
:meth:`CDFG.successors`, :meth:`CDFG.operation` and
:meth:`CDFG.topological_order` millions of times, so these queries are
memoized on the instance:

* adjacency is cached as immutable **tuples** (one per operation),
* the (lexicographic) topological order and its reverse are computed
  once and reused,
* :meth:`CDFG.reversed` returns a **cached, shared** reversed graph —
  treat it as read-only, exactly like the :attr:`CDFG.graph` property,
* per-operation lookups (:meth:`operation`, virtual/schedulable splits)
  hit plain dicts instead of networkx attribute views.

Every structural mutation (:meth:`add_operation`, :meth:`add_edge`,
:meth:`remove_operation`) drops all caches, so a mutated graph never
serves stale answers.  The only way to defeat the contract is to mutate
the underlying networkx graph through :attr:`CDFG.graph` directly, which
has always been documented as read-only.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from .operation import Operation, OpType


class CDFGError(Exception):
    """Raised for structural errors in a CDFG."""


class CDFG:
    """A data-flow graph of named, typed operations.

    Args:
        name: Name of the graph (benchmark name, function name, ...).

    Example:
        >>> g = CDFG("tiny")
        >>> g.add_operation(Operation("a", OpType.INPUT))
        >>> g.add_operation(Operation("b", OpType.INPUT))
        >>> g.add_operation(Operation("s", OpType.ADD))
        >>> g.add_edge("a", "s", port=0)
        >>> g.add_edge("b", "s", port=1)
        >>> sorted(g.predecessors("s"))
        ['a', 'b']
    """

    def __init__(self, name: str = "cdfg") -> None:
        if not name:
            raise ValueError("CDFG name must be non-empty")
        self.name = name
        self._graph = nx.DiGraph()
        self._init_caches()

    def _init_caches(self) -> None:
        self._pred_cache: Dict[str, Tuple[str, ...]] = {}
        self._succ_cache: Dict[str, Tuple[str, ...]] = {}
        self._op_cache: Dict[str, Operation] = {}
        self._topo_cache: Optional[Tuple[str, ...]] = None
        self._rtopo_cache: Optional[Tuple[str, ...]] = None
        self._topo_pos_cache: Optional[Dict[str, int]] = None
        self._reversed_cache: Optional["CDFG"] = None
        self._schedulable_cache: Optional[Tuple[str, ...]] = None
        #: Bumped on every structural mutation; lets external memoizers
        #: (e.g. ValidatedDelayMap) detect that the graph changed.
        self._version = 0
        #: Set on graphs handed out as shared cached views (reversed());
        #: mutating such a view would corrupt its owner's caches.
        self._frozen = False

    def _invalidate(self) -> None:
        """Drop all memoized queries after a structural mutation."""
        self._pred_cache.clear()
        self._succ_cache.clear()
        self._op_cache.clear()
        self._topo_cache = None
        self._rtopo_cache = None
        self._topo_pos_cache = None
        self._reversed_cache = None
        self._schedulable_cache = None
        self._version += 1

    def _check_mutable(self) -> None:
        if self._frozen:
            raise CDFGError(
                f"{self.name!r} is a cached read-only view (a reversed graph); "
                "mutate the original graph, or take a .copy() first"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_operation(self, op: Operation) -> Operation:
        """Add an operation node.

        Raises:
            CDFGError: if an operation with the same name already exists.
        """
        self._check_mutable()
        if op.name in self._graph:
            raise CDFGError(f"duplicate operation name: {op.name!r}")
        self._graph.add_node(op.name, op=op)
        self._invalidate()
        return op

    def add_edge(self, src: str, dst: str, port: Optional[int] = None) -> None:
        """Add a data dependence ``src -> dst``.

        Args:
            src: Producer operation name (must exist).
            dst: Consumer operation name (must exist).
            port: Optional consumer input port index.

        Raises:
            CDFGError: if either endpoint is missing, the edge is a
                self-loop, or the edge would create a cycle.
        """
        self._check_mutable()
        if src not in self._graph:
            raise CDFGError(f"unknown source operation: {src!r}")
        if dst not in self._graph:
            raise CDFGError(f"unknown destination operation: {dst!r}")
        if src == dst:
            raise CDFGError(f"self-loop on operation {src!r} is not allowed")
        if self._graph.has_edge(src, dst):
            # Duplicate data edges are legal in expressions like ``x*x``;
            # record multiplicity so interconnect estimation stays correct.
            self._graph[src][dst]["multiplicity"] += 1
            if port is not None:
                self._graph[src][dst].setdefault("ports", []).append(port)
            self._invalidate()
            return
        self._graph.add_edge(src, dst, multiplicity=1)
        if port is not None:
            self._graph[src][dst]["ports"] = [port]
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise CDFGError(f"edge {src!r} -> {dst!r} would create a cycle")
        self._invalidate()

    def remove_operation(self, name: str) -> None:
        """Remove an operation and all incident edges."""
        self._check_mutable()
        if name not in self._graph:
            raise CDFGError(f"unknown operation: {name!r}")
        self._graph.remove_node(name)
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    def operation(self, name: str) -> Operation:
        """Return the :class:`Operation` stored under ``name``."""
        try:
            return self._op_cache[name]
        except KeyError:
            pass
        try:
            op = self._graph.nodes[name]["op"]
        except KeyError:
            raise CDFGError(f"unknown operation: {name!r}") from None
        self._op_cache[name] = op
        return op

    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return [self._graph.nodes[n]["op"] for n in self._graph.nodes]

    def operation_names(self) -> List[str]:
        """All operation names, in insertion order."""
        return list(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        """All data edges as (producer, consumer) pairs."""
        return list(self._graph.edges)

    def edge_multiplicity(self, src: str, dst: str) -> int:
        """Number of distinct data values flowing along ``src -> dst``."""
        return int(self._graph[src][dst].get("multiplicity", 1))

    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Direct data predecessors (producers feeding ``name``).

        Returns a cached, immutable tuple — do not rely on list identity.
        """
        try:
            return self._pred_cache[name]
        except KeyError:
            value = tuple(self._graph.predecessors(name))
            self._pred_cache[name] = value
            return value

    def successors(self, name: str) -> Tuple[str, ...]:
        """Direct data successors (consumers of ``name``'s result).

        Returns a cached, immutable tuple — do not rely on list identity.
        """
        try:
            return self._succ_cache[name]
        except KeyError:
            value = tuple(self._graph.successors(name))
            self._succ_cache[name] = value
            return value

    def sources(self) -> List[str]:
        """Operations with no predecessors."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Operations with no successors."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def topological_order(self) -> Tuple[str, ...]:
        """Operation names in a topological order (stable for a fixed graph).

        The (lexicographic, hence deterministic) order is computed once
        and cached until the graph mutates.
        """
        if self._topo_cache is None:
            self._topo_cache = tuple(nx.lexicographical_topological_sort(self._graph))
        return self._topo_cache

    def reverse_topological_order(self) -> Tuple[str, ...]:
        if self._rtopo_cache is None:
            self._rtopo_cache = tuple(reversed(self.topological_order()))
        return self._rtopo_cache

    def topological_positions(self) -> Dict[str, int]:
        """Operation name → index in :meth:`topological_order` (cached).

        Lets incremental algorithms order a worklist by topological rank
        without re-scanning the order; treat the returned dict as
        read-only.
        """
        if self._topo_pos_cache is None:
            self._topo_pos_cache = {
                name: index for index, name in enumerate(self.topological_order())
            }
        return self._topo_pos_cache

    def operations_of_type(self, optype: OpType) -> List[str]:
        """Names of all operations of a given type."""
        return [n for n in self._graph.nodes if self.operation(n).optype is optype]

    def type_histogram(self) -> Dict[OpType, int]:
        """Count of operations per type."""
        histogram: Dict[OpType, int] = {}
        for op in self.operations():
            histogram[op.optype] = histogram.get(op.optype, 0) + 1
        return histogram

    def arithmetic_operations(self) -> List[str]:
        """Names of operations that require an arithmetic functional unit."""
        return [n for n in self._graph.nodes if self.operation(n).is_arithmetic]

    def schedulable_operations(self) -> List[str]:
        """Operations the scheduler must place (everything but virtual ops)."""
        if self._schedulable_cache is None:
            self._schedulable_cache = tuple(
                n for n in self._graph.nodes if not self.operation(n).is_virtual
            )
        return list(self._schedulable_cache)

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "CDFG":
        """Deep-ish copy (operations are immutable and shared)."""
        clone = CDFG(name or self.name)
        clone._graph = self._graph.copy()
        return clone

    def reversed(self) -> "CDFG":
        """A graph with every edge direction flipped (used by ALAP/palap).

        The reversed graph is built once and **cached** (it shares the
        immutable :class:`Operation` objects with this graph), so it is
        read-only: its mutators raise :class:`CDFGError` (take a
        ``.copy()`` to get a mutable reversal).  palap calls this once
        per window recomputation; rebuilding the reversal — a full deep
        copy under networkx — used to dominate the engine's runtime.
        """
        if self._reversed_cache is None:
            clone = CDFG(f"{self.name}.rev")
            reversed_graph = nx.DiGraph()
            reversed_graph.add_nodes_from(self._graph.nodes(data=True))
            reversed_graph.add_edges_from(
                (dst, src, dict(data))
                for src, dst, data in self._graph.edges(data=True)
            )
            clone._graph = reversed_graph
            clone._frozen = True
            self._reversed_cache = clone
        return self._reversed_cache

    def subgraph(self, names: Iterable[str], name: Optional[str] = None) -> "CDFG":
        """Induced subgraph over ``names`` (copy, not a view)."""
        names = list(names)
        missing = [n for n in names if n not in self._graph]
        if missing:
            raise CDFGError(f"unknown operations in subgraph request: {missing}")
        clone = CDFG(name or f"{self.name}.sub")
        clone._graph = self._graph.subgraph(names).copy()
        return clone

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """A small dictionary describing the graph (used in reports)."""
        histogram = {t.value: c for t, c in sorted(self.type_histogram().items(), key=lambda kv: kv[0].value)}
        return {
            "name": self.name,
            "operations": len(self),
            "edges": self.num_edges(),
            "types": histogram,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CDFG(name={self.name!r}, ops={len(self)}, edges={self.num_edges()})"
