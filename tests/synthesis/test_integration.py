"""Integration tests: the full synthesis flow on every benchmark.

These are the closest thing to the paper's evaluation run as tests: for
each (benchmark, latency) pair from Figure 2 and a spread of power budgets
the whole pipeline — initial selection, pasap/palap windows, greedy
partial-clique binding, backtracking, register allocation, interconnect
estimation — must produce a legal design, and the qualitative claims must
hold.
"""

import pytest

from repro.power.battery import low_quality_battery
from repro.power.lifetime import compare_lifetimes
from repro.suite.registry import build_benchmark, figure2_cases
from repro.synthesis.baseline import naive_synthesis, time_constrained_synthesis
from repro.synthesis.engine import synthesize
from repro.synthesis.explore import minimum_feasible_power, synthesize_point


CASES = figure2_cases()


@pytest.mark.parametrize("bench_name,latency", CASES)
def test_every_paper_case_is_synthesizable(bench_name, latency, library):
    cdfg = build_benchmark(bench_name)
    p_min = minimum_feasible_power(cdfg, library, latency)
    for budget in (p_min, p_min * 1.5, 150.0):
        result = synthesize_point(cdfg, library, latency, budget)
        assert result is not None, f"{bench_name} T={latency} infeasible at P={budget}"
        result.verify()
        assert result.latency <= latency
        assert result.peak_power <= budget + 1e-9


@pytest.mark.parametrize("bench_name,latency", CASES)
def test_power_constraint_costs_at_most_bounded_area(bench_name, latency, library):
    """The paper's conclusion: fitting the power budget trades a *small*
    amount of area.  We assert the constrained design never costs more than
    2x the unconstrained one (in practice it is far less)."""
    cdfg = build_benchmark(bench_name)
    unconstrained = time_constrained_synthesis(cdfg, library, latency)
    p_min = minimum_feasible_power(cdfg, library, latency)
    constrained = synthesize(cdfg, library, latency, p_min + 1.0)
    assert constrained.total_area <= 2.0 * unconstrained.total_area


@pytest.mark.parametrize("bench_name", ["hal", "cosine", "elliptic", "fir", "ar"])
def test_sharing_always_beats_naive(bench_name, library):
    cdfg = build_benchmark(bench_name)
    naive = naive_synthesis(cdfg, library)
    latency = naive.latency + 6
    shared = time_constrained_synthesis(cdfg, library, latency)
    assert shared.total_area < naive.total_area
    assert shared.datapath.instance_count() < naive.datapath.instance_count()


def test_tighter_latency_never_cheaper(library):
    """Across the paper's hal and cosine latency pairs, less time never
    costs less area (at unconstrained power)."""
    for bench_name, latencies in (("hal", (10, 17)), ("cosine", (12, 19))):
        cdfg = build_benchmark(bench_name)
        tight = time_constrained_synthesis(cdfg, library, latencies[0])
        loose = time_constrained_synthesis(cdfg, library, latencies[1])
        assert tight.total_area >= loose.total_area


def test_end_to_end_battery_story(library):
    """Figure 1 + the battery motivation in one test: the power-constrained
    design has a lower peak and lives longer on a weak battery."""
    cdfg = build_benchmark("cosine")
    spiky = naive_synthesis(cdfg, library)
    flat = synthesize(cdfg, library, latency=15, max_power=26.0)
    assert flat.peak_power < spiky.peak_power
    battery = low_quality_battery(capacity=1e6)
    comparison = compare_lifetimes(battery, spiky.schedule, flat.schedule)
    assert comparison["extension"] > 0.0


def test_extra_benchmarks_synthesize(library):
    """The non-paper workloads exercise the same engine paths."""
    for bench_name, latency, budget in (("fir", 12, 45.0), ("ar", 20, 26.0)):
        cdfg = build_benchmark(bench_name)
        result = synthesize(cdfg, library, latency, budget)
        result.verify()
