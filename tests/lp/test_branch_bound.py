"""Hand-checked MILPs for the branch-and-bound and the solver registry."""

from fractions import Fraction

import pytest

from repro.lp.branch_bound import LIMIT, BranchBoundResult, solve_milp
from repro.lp.model import LESS, EQUAL, LinearProgram
from repro.lp.simplex import INFEASIBLE, OPTIMAL
from repro.lp.solver import MILP_SOLVERS, solve
from repro.registries import UnknownStrategyError


def knapsack():
    # max 5a + 4b + 3c  s.t.  2a + 3b + c <= 4, binaries.
    # Optimum is a=c=1 (weight 3, value 8); a+b would overflow the sack.
    lp = LinearProgram("knapsack")
    a = lp.add_binary("a")
    b = lp.add_binary("b")
    c = lp.add_binary("c")
    lp.add_constraint({a: 2, b: 3, c: 1}, LESS, 4)
    lp.set_objective({a: -5, b: -4, c: -3})
    return lp, (a, b, c)


def test_knapsack_optimum():
    lp, (a, b, c) = knapsack()
    result = solve_milp(lp)
    assert result.status == OPTIMAL
    assert result.objective == Fraction(-8)
    assert [result.values[i] for i in (a, b, c)] == [1, 0, 1]


def test_branching_is_needed_and_correct():
    # LP relaxation of the knapsack is fractional (b enters at 2/3), so
    # at least one branch must happen before the integral optimum.
    lp, _ = knapsack()
    result = solve_milp(lp)
    assert result.nodes > 1


def test_integer_infeasible_but_lp_feasible():
    # 2x == 1 has the relaxation point x=1/2 and no integer point at all:
    # the MILP verdict must be a proof of infeasibility.
    lp = LinearProgram()
    x = lp.add_binary("x")
    lp.add_constraint({x: 2}, EQUAL, 1)
    lp.set_objective({x: 1})
    assert solve_lp_status(lp) == OPTIMAL
    assert solve_milp(lp).status == INFEASIBLE


def solve_lp_status(lp):
    from repro.lp.simplex import solve_lp

    return solve_lp(lp).status


def test_node_limit_yields_limit_not_infeasible():
    lp, _ = knapsack()
    result = solve_milp(lp, node_limit=0)
    assert result.status == LIMIT
    assert not result.is_optimal


def test_sos1_group_branching_matches_plain_branching():
    # One-hot assignment: exactly one of four slots, slot k costs k, but
    # slot 0 is forbidden by a side row.  Optimum picks slot 1.
    lp = LinearProgram()
    slots = [lp.add_binary(f"s{k}") for k in range(4)]
    lp.add_constraint({s: 1 for s in slots}, EQUAL, 1)
    lp.add_constraint({slots[0]: 1}, LESS, 0)
    lp.set_objective({s: k for k, s in enumerate(slots)})
    plain = solve_milp(lp)
    grouped = solve_milp(lp, groups=[[(s, k) for k, s in enumerate(slots)]])
    assert plain.status == grouped.status == OPTIMAL
    assert plain.objective == grouped.objective == Fraction(1)


def test_integral_objective_rounding_is_safe():
    # With integral_objective the relaxation bound 8/3 is rounded up to
    # 3 — the true optimum — so the flag must not change the answer.
    lp = LinearProgram()
    x = lp.add_binary("x")
    y = lp.add_binary("y")
    z = lp.add_binary("z")
    lp.add_constraint({x: 3, y: 3, z: 3}, LESS, 8)  # at most two can fire
    lp.set_objective({x: -1, y: -1, z: -1})
    assert solve_milp(lp).objective == Fraction(-2)
    assert solve_milp(lp, integral_objective=True).objective == Fraction(-2)


class TestSolverRegistry:
    def test_builtin_is_registered(self):
        assert "builtin" in MILP_SOLVERS.names()
        lp, _ = knapsack()
        assert solve(lp).objective == Fraction(-8)

    def test_unknown_solver_raises(self):
        lp, _ = knapsack()
        with pytest.raises(UnknownStrategyError):
            solve(lp, "cplex")

    def test_external_backend_dispatch(self):
        calls = []

        def fake_backend(program, **options):
            calls.append((program.name, options))
            return BranchBoundResult(status=LIMIT)

        MILP_SOLVERS.register("fake", fake_backend)
        try:
            lp, _ = knapsack()
            result = solve(lp, "fake", node_limit=7)
            assert result.status == LIMIT
            assert calls == [("knapsack", {"node_limit": 7})]
        finally:
            MILP_SOLVERS.unregister("fake")
