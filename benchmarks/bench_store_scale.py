"""Result-store scalability — columnar vs. legacy at 100k records.

The store subsystem's pitch (ISSUE 8) is that a sweep-scale cache keeps
answering fast: point lookups stay O(log n) against a sorted key block,
and range queries read only the columns they filter on instead of
parsing every JSON object on disk.  This module builds one synthetic
corpus of ``REPRO_STORE_BENCH_N`` records (default 100 000) in **both**
backends and measures, from cold store instances:

* ``test_point_lookup[backend]`` — 200 content-address lookups,
* ``test_full_scan[backend]`` — one full row scan (no record bodies),
* ``test_family_range_query[backend]`` — a family + power-range query,
  the adaptive refiner's access pattern,
* ``test_range_query_speedup_at_least_10x`` — asserts the contract:
  columnar answers the range query at least 10x faster than legacy.

Record the numbers into the repository's benchmark history with::

    python benchmarks/record.py --bench bench_store_scale \
        --history BENCH_scalability.json --label store-scale

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time

import pytest

from repro.store import ColumnarStore, LegacyStore, StoreQuery

#: Corpus size; the ISSUE-8 acceptance floor is 100k records.
RECORDS = int(os.environ.get("REPRO_STORE_BENCH_N", "100000"))
FAMILIES = 20
LOOKUPS = 200

#: The refiner-shaped query: one benchmark family, one power window.
RANGE_QUERY = StoreQuery(family="fam07", power=(10.0, 20.0))


def synthetic_payload(index: int):
    key = hashlib.sha256(f"bench-store-{index}".encode()).hexdigest()
    family = f"fam{index % FAMILIES:02d}"
    power = float(index % 500) / 10.0
    record = {
        "task": {
            "graph": family,
            "scheduler": "pasap",
            "binder": "greedy",
            "selector": "min_area",
            "latency": 10 + index % 20,
            "power_budget": power,
            "register_budget": None,
            "label": f"bench-{index}",
        },
        "feasible": index % 7 != 0,
        "area": 50.0 + (index % 1000) * 0.25,
        "fu_area": 40.0 + (index % 1000) * 0.2,
        "peak_power": power * 0.9,
        "latency": 10 + index % 20,
        "registers": 4 + index % 9,
        "backtracks": index % 5,
        "elapsed": 0.002,
        "cached": False,
        "error_type": None,
    }
    return key, {"key": key, "record": record}


class Corpus:
    """Both backends populated with the same synthetic records, once."""

    def __init__(self) -> None:
        self.root = tempfile.mkdtemp(prefix="repro-bench-store-")
        self.legacy_root = os.path.join(self.root, "legacy")
        self.columnar_root = os.path.join(self.root, "columnar")
        legacy = LegacyStore(self.legacy_root)
        columnar = ColumnarStore(self.columnar_root)
        self.probe_keys = []
        for index in range(RECORDS):
            key, payload = synthetic_payload(index)
            legacy.put(key, payload)
            columnar.put(key, payload)
            if index % (max(RECORDS // LOOKUPS, 1)) == 0:
                self.probe_keys.append(key)
        columnar.compact()

    def open(self, backend: str):
        """A cold store instance (no warmed in-memory shard state)."""
        if backend == "columnar":
            return ColumnarStore(self.columnar_root)
        return LegacyStore(self.legacy_root)

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


@pytest.fixture(scope="module")
def corpus():
    built = Corpus()
    yield built
    built.cleanup()


@pytest.mark.parametrize("backend", ["legacy", "columnar"])
def test_point_lookup(benchmark, corpus, backend):
    """Cold point lookups by content address."""

    def lookup():
        store = corpus.open(backend)
        hits = sum(1 for key in corpus.probe_keys if store.get(key) is not None)
        assert hits == len(corpus.probe_keys)
        return hits

    benchmark.pedantic(lookup, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", ["legacy", "columnar"])
def test_full_scan(benchmark, corpus, backend):
    """One pass over every indexed row (no record bodies)."""

    def scan():
        rows = sum(1 for _ in corpus.open(backend).scan())
        assert rows == RECORDS
        return rows

    benchmark.pedantic(scan, rounds=2 if backend == "legacy" else 3, iterations=1)


@pytest.mark.parametrize("backend", ["legacy", "columnar"])
def test_family_range_query(benchmark, corpus, backend):
    """The refiner's access pattern: one family, one power window."""

    def query():
        rows = list(corpus.open(backend).scan(RANGE_QUERY))
        assert rows, "the synthetic corpus always has fam07 rows in 10..20"
        for row in rows:
            assert row.family == "fam07" and 10.0 <= row.power_budget <= 20.0
        return len(rows)

    benchmark.pedantic(query, rounds=2 if backend == "legacy" else 5, iterations=1)


def test_range_query_speedup_at_least_10x(corpus):
    """The ISSUE-8 acceptance bar: >=10x on family/constraint-range queries."""

    def timed(backend):
        store = corpus.open(backend)
        started = time.perf_counter()
        rows = list(store.scan(RANGE_QUERY))
        return time.perf_counter() - started, rows

    legacy_elapsed, legacy_rows = timed("legacy")
    columnar_elapsed, columnar_rows = timed("columnar")
    assert sorted(r.key for r in legacy_rows) == sorted(r.key for r in columnar_rows)
    assert legacy_elapsed >= 10 * columnar_elapsed, (
        f"columnar range query must be >=10x faster: "
        f"legacy={legacy_elapsed:.3f}s columnar={columnar_elapsed:.3f}s "
        f"({legacy_elapsed / max(columnar_elapsed, 1e-9):.1f}x)"
    )
