"""Unit tests for the synthesis-result container and its verification."""

import pytest

from repro.scheduling.constraints import SynthesisConstraints
from repro.scheduling.schedule import ScheduleError
from repro.synthesis.engine import synthesize
from repro.synthesis.result import SynthesisError


class TestVerification:
    def test_verify_passes_on_engine_output(self, hal, library):
        synthesize(hal, library, 17, 12.0).verify()

    def test_verify_catches_latency_violation(self, hal, library):
        result = synthesize(hal, library, 17, 12.0)
        tampered = result
        tampered.constraints = SynthesisConstraints.of(result.latency - 1, 12.0)
        with pytest.raises(ScheduleError):
            tampered.verify()

    def test_verify_catches_power_violation(self, hal, library):
        result = synthesize(hal, library, 17, 12.0)
        result.constraints = SynthesisConstraints.of(17, result.peak_power / 2)
        with pytest.raises(ScheduleError):
            result.verify()

    def test_verify_catches_sharing_conflicts(self, hal, library):
        result = synthesize(hal, library, 17, 12.0)
        # Force two operations of some shared instance into the same cycle.
        shared = next(
            (inst for inst in result.datapath.instances.values() if len(inst.bound_ops) >= 2),
            None,
        )
        assert shared is not None, "expected at least one shared instance at T=17"
        first, second = shared.bound_ops[:2]
        result.schedule.start_times[second] = result.schedule.start_times[first]
        with pytest.raises((SynthesisError, ScheduleError)):
            result.verify()


class TestAccessors:
    def test_scalar_accessors(self, hal, library):
        result = synthesize(hal, library, 17, 12.0)
        assert result.total_area == result.area.total
        assert result.fu_area == result.area.functional_units
        assert result.latency == result.schedule.makespan
        assert result.peak_power == result.schedule.peak_power
        assert isinstance(result.allocation_summary(), dict)
        assert result.metadata["library"] == library.name
