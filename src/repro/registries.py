"""String-keyed strategy registries for the pluggable synthesis pipeline.

Every interchangeable piece of the flow — schedulers, binders, module
selectors, technology libraries and benchmark graphs — registers itself
under a short name.  A :class:`~repro.api.task.SynthesisTask` then refers
to strategies purely by name, which is what makes tasks JSON-serializable
and lets ``run_batch`` ship them to worker processes.

Adding a new algorithm no longer means adding a new top-level entry
point; decorate it instead::

    from repro.registries import SCHEDULERS

    @SCHEDULERS.register("my_scheduler")
    def my_scheduler(ctx):
        ctx.schedule = ...  # any precedence-legal Schedule

Strategy contracts (``ctx`` is a :class:`repro.api.pipeline.PipelineContext`):

* **scheduler** — ``fn(ctx) -> None``; must set ``ctx.schedule``.  The
  combined ``engine`` strategy may additionally set ``ctx.datapath`` and
  ``ctx.result`` (scheduling, allocation and binding are simultaneous in
  the paper's algorithm).
* **binder** — ``fn(ctx) -> None``; must set ``ctx.datapath`` from
  ``ctx.schedule`` and ``ctx.selection``.
* **selector** — ``fn() -> SelectionPolicy``.
* **library** — ``fn() -> FULibrary``.

This module deliberately has no imports from the rest of the package so
any layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class UnknownStrategyError(KeyError):
    """A strategy name was not found in its registry."""

    def __init__(self, kind: str, name: str, known: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = known
        super().__init__(
            f"unknown {kind} {name!r}; registered: {', '.join(known) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]

    def __reduce__(self):
        # Default exception pickling would call __init__ with the single
        # formatted message and fail; batch workers ship this across the
        # process boundary, so reconstruct from the original fields.
        return (UnknownStrategyError, (self.kind, self.name, self.known))


class DuplicateStrategyError(ValueError):
    """A strategy name was registered twice without ``replace=True``."""


class StrategyRegistry(Generic[T]):
    """A named mapping from strategy names to implementations.

    Registries preserve registration order (``names()`` is deterministic)
    and support decorator-style registration::

        @REGISTRY.register("name")
        def strategy(...): ...

    or direct registration of an existing object::

        REGISTRY.register("name", strategy)
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(
        self,
        name: str,
        obj: Optional[T] = None,
        *,
        replace: bool = False,
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        Raises:
            DuplicateStrategyError: when ``name`` is taken and ``replace``
                is False.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _add(value: T) -> T:
            if name in self._entries and not replace:
                raise DuplicateStrategyError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass replace=True to override"
                )
            self._entries[name] = value
            return value

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove a strategy (mainly for tests plugging in temporaries)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        """Look up a strategy by name.

        Raises:
            UnknownStrategyError: with the list of registered names.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownStrategyError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"StrategyRegistry({self.kind!r}, {self.names()})"


#: Scheduling strategies (``asap``, ``alap``, ``list``, ``force_directed``,
#: ``pasap``, ``palap``, ``two_step``, ``exact``, ``engine``).
SCHEDULERS: StrategyRegistry[Callable] = StrategyRegistry("scheduler")

#: Binding strategies mapping a fixed schedule to a datapath
#: (``greedy``, ``naive``).
BINDERS: StrategyRegistry[Callable] = StrategyRegistry("binder")

#: Module-selection policies (``min_power``, ``min_area``, ``min_latency``).
SELECTORS: StrategyRegistry[Callable] = StrategyRegistry("selector")

#: Technology-library factories (``table1``/``default``, ``single``).
LIBRARIES: StrategyRegistry[Callable] = StrategyRegistry("library")
