#!/usr/bin/env python3
"""Quickstart: synthesize the HAL benchmark under time and power constraints.

Run with::

    python examples/quickstart.py

This walks through the core API in five steps:

1. build (or load) a CDFG,
2. pick the functional-unit library (the paper's Table 1),
3. run the combined power-constrained synthesis,
4. inspect the resulting schedule, datapath and area,
5. compare against the power-unconstrained baseline.

Steps 3 and 5 use the declarative :class:`~repro.api.task.SynthesisTask`
API — the same specs the batch executor and the ``repro`` CLI run.
"""

from __future__ import annotations

from repro import SynthesisTask, default_library, hal_cdfg, run_task, synthesize
from repro.power.profile import profile_from_schedule


def main() -> None:
    # 1. The behavioural description: the HAL differential-equation solver.
    cdfg = hal_cdfg()
    print(f"benchmark: {cdfg.name}  ({len(cdfg)} operations, {cdfg.num_edges()} edges)")

    # 2. The technology library (Table 1 of the paper).
    library = default_library()
    print(library.describe())
    print()

    # 3. Combined scheduling + allocation + binding under T = 17, P = 11.
    #    A SynthesisTask is plain data (try print(task.to_json())); the
    #    one-call synthesize(cdfg, library, 17, 11.0) builds the same task.
    task = SynthesisTask(graph="hal", latency=17, power_budget=11.0)
    result = run_task(task).result
    print(result.describe())
    print()

    # 4. The schedule and the per-cycle power profile it produces.
    print(result.schedule.describe())
    print()
    profile = profile_from_schedule(result.schedule)
    print(profile.describe())
    print()

    # The synthesized datapath (functional units, registers, multiplexers).
    print(result.datapath.describe())
    print()

    # 5. What the power constraint cost us: compare with the unconstrained run
    #    (same engine, no power budget).
    unconstrained = synthesize(cdfg, library, latency=17)
    print(
        f"power-unconstrained area: {unconstrained.total_area:.0f} "
        f"(peak power {unconstrained.peak_power:.1f})"
    )
    print(
        f"power-constrained   area: {result.total_area:.0f} "
        f"(peak power {result.peak_power:.1f}, budget 11.0)"
    )
    delta = result.total_area - unconstrained.total_area
    print(f"area traded for the power guarantee: {delta:+.0f}")


if __name__ == "__main__":
    main()
