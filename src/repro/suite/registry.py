"""Benchmark registry: name → CDFG builder with the paper's latency bounds.

Benchmarks register by name through :func:`register_benchmark`, following
the same string-keyed-registry convention as the scheduler/binder/library
registries in :mod:`repro.registries`.  A registered name is what a
:class:`~repro.api.task.SynthesisTask` puts in its ``graph`` field, so a
new workload becomes batch-runnable with a single decorator::

    @register_benchmark("my_filter", latencies=(10, 14))
    def my_filter_cdfg() -> CDFG:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from functools import partial

from ..ir.cdfg import CDFG
from ..registries import StrategyRegistry
from .ar import ar_cdfg
from .cosine import COSINE_LATENCIES, cosine_cdfg
from .elliptic import ELLIPTIC_LATENCIES, elliptic_cdfg
from .fir import fir_cdfg
from .generators import butterfly_cdfg, chain_cdfg, mesh_cdfg, tree_cdfg
from .hal import HAL_LATENCIES, hal_cdfg


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark and the latency bounds it is evaluated at."""

    name: str
    builder: Callable[[], CDFG]
    latencies: Tuple[int, ...]
    in_paper: bool

    def build(self) -> CDFG:
        return self.builder()


#: The benchmark registry proper — same machinery as SCHEDULERS/BINDERS.
BENCHMARKS: StrategyRegistry[BenchmarkSpec] = StrategyRegistry("benchmark")


def register_benchmark(
    name: str,
    builder: Optional[Callable[[], CDFG]] = None,
    *,
    latencies: Sequence[int] = (),
    in_paper: bool = False,
    replace: bool = False,
):
    """Register a benchmark CDFG builder under ``name``; decorator-friendly.

    A thin wrapper over :class:`~repro.registries.StrategyRegistry` that
    attaches the benchmark metadata (``latencies``, ``in_paper``) to the
    stored :class:`BenchmarkSpec`.

    Args:
        name: Registry key (what task specs put in their ``graph`` field).
        builder: Zero-argument CDFG factory; omit to use as a decorator.
        latencies: Latency bounds the benchmark is evaluated at.
        in_paper: Whether the benchmark appears in the paper's evaluation.
        replace: Allow overriding an existing registration.

    Raises:
        repro.registries.DuplicateStrategyError: when ``name`` is taken
            and ``replace`` is False.
    """

    def _add(fn: Callable[[], CDFG]) -> Callable[[], CDFG]:
        BENCHMARKS.register(
            name, BenchmarkSpec(name, fn, tuple(latencies), in_paper), replace=replace
        )
        return fn

    if builder is None:
        return _add
    return _add(builder)


register_benchmark("hal", hal_cdfg, latencies=HAL_LATENCIES, in_paper=True)
register_benchmark("cosine", cosine_cdfg, latencies=COSINE_LATENCIES, in_paper=True)
register_benchmark("elliptic", elliptic_cdfg, latencies=ELLIPTIC_LATENCIES, in_paper=True)
register_benchmark("fir", fir_cdfg, latencies=(8, 12))
register_benchmark("ar", ar_cdfg, latencies=(14, 20))

# Fixed representatives of the scenario families in
# :mod:`repro.suite.generators` (the fuzzer additionally draws seeded
# variants of each family).  Names are frozen in the task spec; the
# builders pin shape and seed so the graphs never drift.  Latency bounds
# clear each graph's min-power critical path with the same kind of slack
# the paper's benchmarks get.
register_benchmark(
    "chain", partial(chain_cdfg, 10, seed=1, name="chain"), latencies=(26, 30)
)
register_benchmark(
    "tree", partial(tree_cdfg, 8, seed=2, name="tree"), latencies=(8, 12)
)
register_benchmark(
    "butterfly",
    partial(butterfly_cdfg, 4, 2, seed=3, name="butterfly"),
    latencies=(10, 14),
)
register_benchmark(
    "mesh", partial(mesh_cdfg, 3, 4, seed=4, name="mesh"), latencies=(14, 18)
)


def benchmark_names(paper_only: bool = False) -> List[str]:
    """Names of registered benchmarks (optionally only the paper's three)."""
    return [
        name
        for name in BENCHMARKS.names()
        if BENCHMARKS.get(name).in_paper or not paper_only
    ]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name.

    Raises:
        repro.registries.UnknownStrategyError: (a ``KeyError``) naming the
            registered benchmarks when the name is unknown.
    """
    return BENCHMARKS.get(name)


def build_benchmark(name: str) -> CDFG:
    """Build the CDFG of a registered benchmark."""
    return get_benchmark(name).build()


def figure2_cases() -> List[Tuple[str, int]]:
    """The (benchmark, latency) pairs plotted in the paper's Figure 2."""
    cases: List[Tuple[str, int]] = []
    for name in ("hal", "cosine", "elliptic"):
        spec = get_benchmark(name)
        cases.extend((name, latency) for latency in spec.latencies)
    return cases
