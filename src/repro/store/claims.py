"""Cross-process single-flight claims, keyed by content address.

A *claim file* is the store-level generalization of the serving layer's
in-process per-key claims: a small JSON file under
``<store_root>/claims/<key[:2]>/<key>.claim`` whose existence means
"some process is synthesizing this content address right now".  Two
service processes (or two batch runs, or a service and a CLI sweep)
sharing one cache directory coordinate through these files so a given
content address is synthesized **once**, no matter how many processes
race for it.

The protocol keeps the discipline the store's other on-disk structures
established — every visible state transition is a single atomic
filesystem operation:

* **Acquire** is ``os.link(tmp, claim)``: the claim's full JSON body
  (pid, timestamps, lease, owner) is written to a private temp file
  first, then linked into place.  A link either succeeds (the claim
  appears complete — no reader can ever observe a torn claim) or fails
  with ``EEXIST`` (someone else holds it).  There is no
  read-check-then-create window.
* **Release** is one ``os.unlink`` by the holder.
* **Breaking a stale claim** — the holder's pid is dead, or its lease
  expired (the cross-host backstop where pids mean nothing) — happens
  under an exclusive ``flock`` on ``claims/.break.lock``, and only after
  re-reading the claim and confirming it is byte-identical to the stale
  one observed: a breaker never unlinks a claim that changed hands
  under it.

Waiters do not block on the claim itself: the expected protocol (what
:func:`repro.serve.workers.run_claimed_task` does) is *poll the result
store while the claim is held* — when the holder finishes, its record
appears in the store and the waiter returns it as a cache hit; when the
holder dies, its claim goes stale and the waiter breaks it and takes
over.  Liveness never depends on a crashed process cleaning up.
"""

from __future__ import annotations

import errno
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - always available on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: breaking unserialized
    fcntl = None  # type: ignore[assignment]

#: Directory (under the store root) holding the claim files.
CLAIMS_DIR = "claims"

#: Lock file serializing stale-claim breaking within one claims directory.
BREAK_LOCK = ".break.lock"

#: Default lease in seconds.  The dead-pid check is the primary staleness
#: signal on one host; the lease is the backstop for holders on other
#: hosts (shared filesystem) where a pid number proves nothing.  It only
#: has to be comfortably longer than the slowest synthesis.
DEFAULT_LEASE = 300.0

__all__ = [
    "CLAIMS_DIR",
    "DEFAULT_LEASE",
    "Claim",
    "ClaimError",
    "ClaimInfo",
    "break_stale_claims",
    "claim_path",
    "holder",
    "try_acquire",
]


class ClaimError(RuntimeError):
    """A claim-protocol usage error (releasing a claim twice, …)."""


@dataclass
class ClaimInfo:
    """The parsed body of one claim file.

    Attributes:
        key: The content address the claim covers.
        pid: Process id of the holder (on the host that acquired it).
        acquired_at: Epoch timestamp of acquisition.
        lease: Seconds after which the claim may be broken even if the
            pid cannot be proven dead.
        owner: Free-form holder label (job id, service name) for humans
            reading a claims directory.
        nonce: Random token distinguishing re-acquisitions of one key.
    """

    key: str
    pid: int
    acquired_at: float
    lease: float
    owner: str = ""
    nonce: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "pid": self.pid,
                "acquired_at": self.acquired_at,
                "lease": self.lease,
                "owner": self.owner,
                "nonce": self.nonce,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> Optional["ClaimInfo"]:
        try:
            data = json.loads(raw.decode("utf-8"))
            return cls(
                key=str(data["key"]),
                pid=int(data["pid"]),
                acquired_at=float(data["acquired_at"]),
                lease=float(data["lease"]),
                owner=str(data.get("owner", "")),
                nonce=str(data.get("nonce", "")),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None

    def is_stale(self, *, now: Optional[float] = None) -> bool:
        """True when the holder is provably dead or the lease expired."""
        if pid_is_dead(self.pid):
            return True
        now = time.time() if now is None else now
        return now - self.acquired_at > self.lease


def pid_is_dead(pid: int) -> bool:
    """Whether ``pid`` provably does not exist on this host.

    ``os.kill(pid, 0)`` probes without signalling; ``PermissionError``
    means the pid exists under another uid, which counts as alive.  A
    same-pid *different* process (pid reuse) is indistinguishable — the
    lease expiry is the backstop for that.
    """
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:  # pragma: no cover - container runs single-uid
        return False
    except OSError:  # pragma: no cover - conservative: assume alive
        return False
    return False


def claim_path(root: Union[str, Path], key: str) -> Path:
    """The claim-file path for one content address under a store root."""
    root = Path(root).expanduser()
    return root / CLAIMS_DIR / key[:2] / f"{key}.claim"


def holder(root: Union[str, Path], key: str) -> Optional[ClaimInfo]:
    """The current claim body for ``key``, or ``None`` when unclaimed."""
    try:
        raw = claim_path(root, key).read_bytes()
    except OSError:
        return None
    return ClaimInfo.from_bytes(raw)


class Claim:
    """A held claim; release it exactly once (or die and go stale)."""

    def __init__(self, path: Path, info: ClaimInfo) -> None:
        self.path = path
        self.info = info
        self._released = False

    @property
    def key(self) -> str:
        return self.info.key

    def release(self) -> None:
        """Unlink the claim file (idempotent: a broken claim is fine)."""
        if self._released:
            return
        self._released = True
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            # someone decided we were stale and broke the claim; the
            # result store keeps that merely redundant, not wrong
            pass

    def __enter__(self) -> "Claim":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Claim({self.info.key[:12]}…, pid={self.info.pid})"


def _break_if_unchanged(path: Path, observed: bytes) -> bool:
    """Unlink ``path`` iff its bytes still equal ``observed``.

    Serialized by an exclusive ``flock`` on the claims directory's break
    lock, so two processes that both judged a claim stale cannot unlink
    two *different* generations of it (the second breaker re-reads and
    sees the first breaker's successor claim — different bytes — and
    backs off).
    """
    lock_path = path.parent.parent / BREAK_LOCK
    fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            current = path.read_bytes()
        except OSError:
            return True  # already gone
        if current != observed:
            return False  # changed hands under us: a live claim now
        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - raced the holder
            pass
        return True
    finally:
        os.close(fd)


def try_acquire(
    root: Union[str, Path],
    key: str,
    *,
    lease: float = DEFAULT_LEASE,
    owner: str = "",
) -> Optional[Claim]:
    """One non-blocking acquisition attempt; ``None`` when held elsewhere.

    Breaks a stale claim (dead pid / expired lease) as part of the
    attempt, so callers simply retry in a poll loop — no separate
    janitor is needed for liveness.
    """
    path = claim_path(root, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    info = ClaimInfo(
        key=key,
        pid=os.getpid(),
        acquired_at=time.time(),
        lease=float(lease),
        owner=owner,
        nonce=uuid.uuid4().hex,
    )
    body = info.to_json().encode("utf-8")
    tmp = path.parent / f".tmp-{info.pid}-{info.nonce}"
    tmp.write_bytes(body)
    try:
        for _attempt in (0, 1):
            try:
                os.link(tmp, path)
                return Claim(path, info)
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
            try:
                observed = path.read_bytes()
            except OSError:
                continue  # holder released between link and read: retry
            current = ClaimInfo.from_bytes(observed)
            # an unparsable claim body cannot happen through this module
            # (link-into-place is atomic) but a foreign writer's garbage
            # must not wedge the key forever: treat it as breakable
            if current is not None and not current.is_stale():
                return None
            if not _break_if_unchanged(path, observed):
                return None  # a fresh holder took over while we broke
        return None
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:  # pragma: no cover
            pass


def break_stale_claims(root: Union[str, Path]) -> int:
    """Sweep a claims directory, breaking every stale claim; returns count.

    Hygiene for service boot: a machine-wide crash leaves claim files
    whose pids may have been reused by unrelated processes.  Sweeping at
    boot bounds how long such a claim can gate its key to the lease.
    """
    claims_root = Path(root).expanduser() / CLAIMS_DIR
    if not claims_root.is_dir():
        return 0
    broken = 0
    for path in sorted(claims_root.glob("*/*.claim")):
        try:
            observed = path.read_bytes()
        except OSError:
            continue
        info = ClaimInfo.from_bytes(observed)
        if info is None or info.is_stale():
            if _break_if_unchanged(path, observed):
                broken += 1
    return broken
