"""Unit tests for the paper-experiment drivers (Table 1, Figure 1, Figure 2)."""

import pytest

from repro.library.library import TABLE1_ROWS
from repro.reporting.experiments import (
    figure1_experiment,
    figure2_experiment,
    table1_report,
)


class TestTable1Report:
    def test_contains_every_module_row(self):
        report = table1_report()
        for name, ops, area, cycles, power in TABLE1_ROWS:
            assert name in report
            assert str(area) in report
        assert "Clk-cyc." in report


class TestFigure1:
    def test_constrained_profile_respects_budget(self, library):
        data = figure1_experiment(benchmark="hal", latency=17, power_budget=11.0)
        assert data.constrained_peak <= 11.0 + 1e-9
        assert max(data.constrained_profile) <= 11.0 + 1e-9

    def test_unconstrained_profile_spikes_above_budget(self, library):
        data = figure1_experiment(benchmark="hal", latency=17, power_budget=11.0)
        assert data.unconstrained_peak > 11.0

    def test_energy_is_redistributed_not_removed(self):
        data = figure1_experiment(benchmark="hal", latency=17, power_budget=11.0)
        # The constrained design may use different module choices, so only a
        # loose energy sanity bound is asserted (same order of magnitude).
        assert sum(data.constrained_profile) > 0.5 * sum(data.unconstrained_profile)

    def test_report_text(self):
        data = figure1_experiment(benchmark="hal", latency=17, power_budget=11.0)
        assert "undesired" in data.report
        assert "desired" in data.report


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2(self):
        # A reduced version (2 cases, few steps) keeps the unit test quick;
        # the full six-case sweep runs in the benchmark harness.
        return figure2_experiment(cases=[("hal", 17), ("hal", 10)], steps=4)

    def test_all_cases_present(self, figure2):
        assert set(figure2.sweeps) == {("hal", 17), ("hal", 10)}
        assert len(figure2.series) == 2

    def test_series_are_monotone(self, figure2):
        for series in figure2.series:
            assert series.is_monotone_non_increasing(tolerance=1e-6)

    def test_tighter_latency_never_cheaper_at_same_budget(self, figure2):
        loose = figure2.sweeps[("hal", 17)]
        tight = figure2.sweeps[("hal", 10)]
        for budget in (150.0,):
            assert tight.area_at(budget) >= loose.area_at(budget)

    def test_rendered_outputs(self, figure2):
        assert "Figure 2" in figure2.table
        assert "hal (T=17)" in figure2.plot
        assert figure2.csv.startswith("series,x,y")
