"""Unit tests for repro.library.selection."""

import pytest

from repro.ir.operation import OpType
from repro.library.library import default_library
from repro.library.module import FUModule, LibraryError
from repro.library.selection import (
    MinAreaSelection,
    MinLatencySelection,
    MinPowerSelection,
    check_selection,
    selection_delays,
    selection_powers,
    total_energy,
)


class TestPolicies:
    def test_min_area_picks_serial_multiplier(self, hal, library):
        selection = MinAreaSelection().select(hal, library)
        for name in hal.operations_of_type(OpType.MUL):
            assert selection[name].name == "Mult (ser.)"

    def test_min_latency_picks_parallel_multiplier(self, hal, library):
        selection = MinLatencySelection().select(hal, library)
        for name in hal.operations_of_type(OpType.MUL):
            assert selection[name].name == "Mult (par.)"

    def test_min_power_picks_serial_multiplier(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        for name in hal.operations_of_type(OpType.MUL):
            assert selection[name].name == "Mult (ser.)"

    def test_selection_covers_every_schedulable_operation(self, cosine, library):
        selection = MinPowerSelection().select(cosine, library)
        assert set(selection) == set(cosine.schedulable_operations())

    def test_virtual_operations_excluded(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        assert "const_3" not in selection

    def test_selection_type_correct(self, elliptic, library):
        selection = MinPowerSelection().select(elliptic, library)
        check_selection(selection, elliptic)  # must not raise


class TestDerivedMaps:
    def test_delays_and_powers(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        delays = selection_delays(selection, hal)
        powers = selection_powers(selection, hal)
        assert delays["m1_3x"] == 4
        assert powers["m1_3x"] == pytest.approx(2.7)
        assert delays["const_3"] == 0
        assert powers["const_3"] == 0.0

    def test_missing_operation_raises(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        del selection["m1_3x"]
        with pytest.raises(LibraryError):
            selection_delays(selection, hal)
        with pytest.raises(LibraryError):
            selection_powers(selection, hal)
        with pytest.raises(LibraryError):
            check_selection(selection, hal)
        with pytest.raises(LibraryError):
            total_energy(selection, hal)

    def test_total_energy_hal(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        # 6 serial multiplications, 2 adds, 2 subs, 1 comparison, 5 inputs, 4 outputs
        expected = 6 * 4 * 2.7 + 5 * 2.5 + 5 * 0.2 + 4 * 1.7
        assert total_energy(selection, hal) == pytest.approx(expected)

    def test_check_selection_rejects_wrong_module(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        selection["m1_3x"] = library.module("add")
        with pytest.raises(LibraryError):
            check_selection(selection, hal)

    def test_policy_fails_on_unsupported_type(self, library):
        from repro.ir.builder import CDFGBuilder

        b = CDFGBuilder()
        x = b.input("x")
        b.op(OpType.SHL, "shift", (x, x))
        graph = b.build(validate=False)
        with pytest.raises(LibraryError):
            MinPowerSelection().select(graph, library)
