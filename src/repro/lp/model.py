"""A tiny exact-arithmetic linear-program container.

:class:`LinearProgram` is the interchange format between the formulation
layer (:mod:`repro.lp.formulation`), the built-in solvers
(:mod:`repro.lp.simplex`, :mod:`repro.lp.branch_bound`) and any external
backend registered through :mod:`repro.lp.solver`: variables with
rational bounds and an integrality flag, linear constraint rows, and a
minimization objective.

Everything is held as :class:`fractions.Fraction`, so the solvers never
face round-off — a verdict of "infeasible" from the branch-and-bound is
a proof, not a tolerance call.  Floats entering through
:func:`as_fraction` are converted via their shortest ``repr`` (so the
float written as ``0.1`` becomes exactly ``1/10``, not the nearest
binary fraction), matching how the rest of the code base treats task
powers and budgets as decimal literals.

This module imports nothing outside the standard library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from numbers import Rational
from typing import Dict, List, Mapping, Optional, Tuple, Union

#: Constraint senses accepted by :meth:`LinearProgram.add_constraint`.
LESS = "<="
GREATER = ">="
EQUAL = "=="

_SENSES = (LESS, GREATER, EQUAL)

Number = Union[int, float, Fraction]


class LPError(ValueError):
    """A malformed linear program (bad bounds, senses or coefficients)."""


def as_fraction(value: Number) -> Fraction:
    """Exact rational form of a number; floats via their shortest repr.

    ``as_fraction(0.1) == Fraction(1, 10)`` — the decimal the programmer
    wrote, not the 55-bit binary neighbour ``Fraction(0.1)`` would give.
    Infinities and NaNs are rejected (bounds use ``None`` for infinity).
    """
    if isinstance(value, bool):
        raise LPError("booleans are not LP numbers")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise LPError(f"non-finite coefficient {value!r}")
        return Fraction(repr(value))
    if isinstance(value, Rational):
        return Fraction(value)
    raise LPError(f"cannot use {type(value).__name__!r} as an LP number")


@dataclass(frozen=True)
class Variable:
    """One decision variable: name, rational bounds, integrality flag.

    ``upper is None`` means :math:`+\\infty`.  Lower bounds must be
    finite — every model this package builds is naturally bounded below,
    and a finite lower bound is what lets the simplex start from the
    all-at-lower-bound point without a shift.
    """

    name: str
    lower: Fraction
    upper: Optional[Fraction]
    integer: bool = False

    @property
    def is_fixed(self) -> bool:
        """True when the bounds pin the variable to a single value."""
        return self.upper is not None and self.upper == self.lower


@dataclass(frozen=True)
class Constraint:
    """One linear row: ``sum(coef * var) sense rhs``."""

    coefficients: Tuple[Tuple[int, Fraction], ...]
    sense: str
    rhs: Fraction
    name: str = ""


class LinearProgram:
    """A minimization LP/MILP over exact rationals.

    Build with :meth:`add_variable` / :meth:`add_constraint` /
    :meth:`set_objective`, then hand to
    :func:`repro.lp.simplex.solve_lp` (continuous relaxation) or
    :func:`repro.lp.branch_bound.solve_milp` (respecting integrality).
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        #: Minimization objective: variable index -> coefficient.
        self.objective: Dict[int, Fraction] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_variable(
        self,
        name: Optional[str] = None,
        *,
        lower: Number = 0,
        upper: Optional[Number] = None,
        integer: bool = False,
    ) -> int:
        """Add a variable; returns its index (the coefficient key)."""
        low = as_fraction(lower)
        up = as_fraction(upper) if upper is not None else None
        if up is not None and up < low:
            raise LPError(
                f"variable {name or len(self.variables)}: empty bound range "
                f"[{low}, {up}]"
            )
        index = len(self.variables)
        self.variables.append(
            Variable(name if name is not None else f"x{index}", low, up, integer)
        )
        return index

    def add_binary(self, name: Optional[str] = None) -> int:
        """Add a 0/1 integer variable; returns its index."""
        return self.add_variable(name, lower=0, upper=1, integer=True)

    def add_constraint(
        self,
        coefficients: Mapping[int, Number],
        sense: str,
        rhs: Number,
        name: str = "",
    ) -> Optional[int]:
        """Add a row ``sum(coef * var) sense rhs``; returns its index.

        Zero coefficients are dropped.  A row left with no variables is
        checked as a constant: a satisfied one is silently skipped
        (returns ``None``), a violated one raises — the model is
        structurally infeasible and the caller should know at build time.
        """
        if sense not in _SENSES:
            raise LPError(f"unknown constraint sense {sense!r}; use one of {_SENSES}")
        rhs_value = as_fraction(rhs)
        terms: List[Tuple[int, Fraction]] = []
        for index, coefficient in coefficients.items():
            if not 0 <= index < len(self.variables):
                raise LPError(f"constraint references unknown variable {index}")
            value = as_fraction(coefficient)
            if value:
                terms.append((index, value))
        if not terms:
            satisfied = {
                LESS: Fraction(0) <= rhs_value,
                GREATER: Fraction(0) >= rhs_value,
                EQUAL: rhs_value == 0,
            }[sense]
            if not satisfied:
                raise LPError(
                    f"constant constraint {name or len(self.constraints)} is "
                    f"unsatisfiable: 0 {sense} {rhs_value}"
                )
            return None
        self.constraints.append(Constraint(tuple(terms), sense, rhs_value, name))
        return len(self.constraints) - 1

    def set_objective(self, coefficients: Mapping[int, Number]) -> None:
        """Set the minimization objective (replacing any previous one)."""
        objective: Dict[int, Fraction] = {}
        for index, coefficient in coefficients.items():
            if not 0 <= index < len(self.variables):
                raise LPError(f"objective references unknown variable {index}")
            value = as_fraction(coefficient)
            if value:
                objective[index] = value
        self.objective = objective

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def integer_variables(self) -> List[int]:
        """Indices of the variables flagged integral."""
        return [i for i, var in enumerate(self.variables) if var.integer]

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def evaluate_objective(self, values: List[Fraction]) -> Fraction:
        """The objective value of a full assignment."""
        return sum(
            (coefficient * values[index] for index, coefficient in self.objective.items()),
            Fraction(0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearProgram({self.name!r}, {self.num_variables} vars, "
            f"{self.num_constraints} rows)"
        )
