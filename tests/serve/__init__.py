"""Tests for the serving layer (repro.serve)."""
