"""The synthesis service: a process-pool worker tier over queue + cache.

:class:`SynthesisService` is the long-lived engine behind ``repro
serve``: it accepts :class:`~repro.api.task.SynthesisTask` submissions
into a persistent :class:`~repro.serve.queue.JobQueue`, and a pool of
workers executes them through the exact same
:func:`~repro.api.batch.run_task` path the CLI and the batch API use,
against one shared :class:`~repro.explore.cache.ResultCache`.

Since the process-tier re-architecture the default ``worker_mode`` is
``"process"``: each worker slot is a parent-side dispatch thread paired
with a long-lived child process (:class:`~repro.serve.workers
.ProcessWorker`) that does the CPU-bound synthesis — N workers really
use N cores instead of serializing on the GIL.  The parent keeps all
authority: the queue, the in-process per-key claims, the counters.  A
child that dies mid-job (SIGKILL, OOM) is detected on its pipe, the job
is requeued (up to ``max_requeues``, then failed as a ``WorkerCrash``
record) and the slot respawned.  ``worker_mode="thread"`` keeps the
old in-process execution — useful for tests that monkeypatch the
synthesis path, and on single-core machines where processes buy nothing.

Three properties fall out of building on the existing stack:

* **Single-synthesis semantics, cross-process.**  Content-identical
  jobs within one service execute strictly in dequeue order (the
  queue's per-content-address claim,
  :meth:`~repro.serve.queue.JobQueue.wait_for_key_turn`); across
  *service processes* sharing a cache directory, workers take the
  store-level claim file for the address (:mod:`repro.store.claims`)
  before synthesizing and poll the cache while someone else holds it.
  Identical requests — one client or many, one service or many —
  synthesize exactly once; every other copy returns as a warm cache
  hit, never duplicate work.

* **Certified results only.**  Workers run with ``verify=True``, the
  same caller-side assertion as ``run_task(verify=True)``: a feasible
  result that fails the independent certificate checker marks the job
  ``failed`` (``error_type="CertificateError"``) and never enters the
  cache, so ``GET /results/<key>`` can only ever serve records that
  passed the gate.

* **Bounded backlog.**  With ``max_queue_depth`` set, submissions
  beyond the bound raise :class:`~repro.serve.queue.QueueFullError`
  (HTTP: ``429`` + ``Retry-After``) instead of growing memory without
  limit, and per-job priorities order the backlog that is admitted.

Shutdown is graceful by construction: ``shutdown(drain=True)`` stops
accepting work and waits for the queue to empty; ``drain=False`` stops
after the jobs currently in flight (synthesis is not interruptible
mid-run) and leaves the rest pending in the persistent queue, where the
next boot's replay picks them up.  A process that dies mid-job instead
of shutting down is covered by the queue's requeue-on-replay plus the
claim files' dead-pid staleness.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..api.batch import BatchSummary, TaskResult, run_task
from ..api.task import SynthesisTask
from ..explore.cache import ResultCache
from ..store import claims
from .queue import Job, JobQueue, QueueError, QueueFullError
from .workers import ProcessWorker, WorkerCrash

#: Recognized worker execution modes.
WORKER_MODES = ("process", "thread")


class ServiceError(RuntimeError):
    """A service-level usage error (submitting to a stopped service, …)."""


#: Zero state of one per-strategy counter row in ``/stats``.
_STRATEGY_ZERO = {
    "jobs": 0,
    "cache_hits": 0,
    "computed": 0,
    "failed": 0,
    "computed_seconds": 0.0,
    # races this concrete strategy won (counted on its own row, so the
    # ``portfolio`` row's jobs and the winners' portfolio_wins reconcile)
    "portfolio_wins": 0,
}


class SynthesisService:
    """A concurrent synthesis executor: queue in, certified records out.

    Args:
        state_dir: Directory for the persistent queue log and (unless
            ``cache`` is given) the shared result cache.  ``None`` keeps
            everything in memory / a private temp cache — fine for tests
            and examples, no crash tolerance.
        cache: A :class:`~repro.explore.cache.ResultCache` to share; by
            default one is opened at ``<state_dir>/cache``.
        cache_backend: Storage backend for a cache the service opens
            itself (``"legacy"`` / ``"columnar"``; existing directories
            autodetect).  Ignored when ``cache`` is given.
        workers: Worker slots executing jobs concurrently.
        worker_mode: ``"process"`` (default) pairs each slot with a
            child process doing the CPU-bound synthesis — the GIL-free
            tier; ``"thread"`` executes in-process on the slot's own
            thread (tests, monkeypatching, single-core boxes).
        max_queue_depth: Bound on the pending backlog; beyond it,
            submissions raise :class:`~repro.serve.queue.QueueFullError`
            — the HTTP front's ``429 Retry-After`` signal.  ``None`` is
            unbounded.
        max_requeues: How many times a job whose worker child was killed
            mid-run is requeued before it is failed as a
            ``WorkerCrash`` record.
        verify: Re-certify every feasible result before it is recorded
            (the ``run_task(verify=True)`` gate).  On by default — a
            serving process is exactly the place where an uncertified
            result must not leak.

    The service is inert until :meth:`start` is called; use it as a
    context manager to pair start/shutdown.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        *,
        cache: Optional[ResultCache] = None,
        cache_backend: Optional[str] = None,
        workers: int = 2,
        worker_mode: str = "process",
        max_queue_depth: Optional[int] = None,
        max_requeues: int = 2,
        verify: bool = True,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"a service needs at least one worker, got {workers}")
        if worker_mode not in WORKER_MODES:
            raise ServiceError(
                f"unknown worker_mode {worker_mode!r}; choose from {WORKER_MODES}"
            )
        self.queue = JobQueue(state_dir, max_depth=max_queue_depth)
        self._owns_temp_cache = False
        if cache is None:
            if state_dir is not None:
                cache = ResultCache(
                    Path(state_dir).expanduser() / "cache", backend=cache_backend
                )
            else:
                import tempfile

                cache = ResultCache(
                    tempfile.mkdtemp(prefix="repro-serve-"), backend=cache_backend
                )
                self._owns_temp_cache = True
        self.cache = cache
        self.workers = int(workers)
        self.worker_mode = worker_mode
        self.max_requeues = int(max_requeues)
        self.verify = verify
        self.started_at: Optional[float] = None
        self._threads: List[threading.Thread] = []
        self._children: List[Optional[ProcessWorker]] = [None] * self.workers
        self._stop = threading.Event()
        self._guard = threading.Lock()
        self._strategy_stats: Dict[str, Dict[str, float]] = {}
        self._summary = BatchSummary()
        self._certified_keys: set = set()
        self._worker_crashes = 0
        self._stale_claims_broken = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SynthesisService":
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return self
        self.started_at = time.time()
        self._stop.clear()
        if self.worker_mode == "process":
            # boot hygiene: claims left by a machine-wide crash (their
            # pids possibly reused by now) must not gate their keys
            self._stale_claims_broken = claims.break_stale_claims(self.cache.root)
            for slot in range(self.workers):
                self._children[slot] = self._spawn_child(slot)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _spawn_child(self, slot: int) -> ProcessWorker:
        return ProcessWorker(
            str(self.cache.root),
            cache_backend=self.cache.backend,
            verify=self.verify,
            name=f"repro-serve-child-{slot}",
        )

    def __enter__(self) -> "SynthesisService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown(drain=False)

    def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service gracefully.

        ``drain=True`` refuses new submissions and processes everything
        already accepted before returning; ``drain=False`` additionally
        stops dequeuing — jobs in flight complete (synthesis cannot be
        interrupted mid-run), the rest stay pending in the persistent
        queue for the next boot's replay to requeue.
        """
        self.queue.close()
        if not drain:
            self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        # a timed-out join leaves workers alive: keep their references so
        # running/healthz stay honest and a later start() cannot stack a
        # second pool on the same queue
        self._threads = [t for t in self._threads if t.is_alive()]
        if not self._threads:
            self._stop.set()
            for slot, child in enumerate(self._children):
                if child is not None:
                    child.stop()
                    self._children[slot] = None
            if self._owns_temp_cache:
                # a private temp cache dies with the service; shared /
                # state-dir caches are durable by design and left alone
                import shutil

                shutil.rmtree(self.cache.root, ignore_errors=True)

    @property
    def running(self) -> bool:
        """True while worker threads are alive."""
        return any(thread.is_alive() for thread in self._threads)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, task: SynthesisTask, *, priority: int = 0) -> Job:
        """Accept one task; returns its :class:`~repro.serve.queue.Job`."""
        return self.submit_many([task], priority=priority)[0]

    def submit_many(
        self,
        tasks: Iterable[SynthesisTask],
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> List[Job]:
        """Accept a batch atomically, in order; returns the jobs.

        ``deadline_s`` stamps a race budget onto every task *before*
        admission — the deadline is part of a portfolio task's content
        address, so it must be in the spec before the job is keyed.  A
        ``deadline_s`` submission containing non-portfolio tasks raises
        :class:`~repro.api.task.TaskError` (nothing admitted).

        A full queue raises :class:`~repro.serve.queue.QueueFullError`
        (backpressure — retryable, nothing admitted); other queue errors
        (closed for shutdown) surface as :class:`ServiceError`.
        """
        if deadline_s is not None:
            from ..portfolio.config import with_deadline  # avoid an import cycle

            tasks = [with_deadline(task, deadline_s) for task in tasks]
        try:
            return self.queue.submit_many(tasks, priority=priority)
        except QueueFullError:
            raise
        except QueueError as exc:
            raise ServiceError(str(exc)) from exc

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id."""
        return self.queue.get(job_id)

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """The finished record stored under a content address, or ``None``.

        Serves only records whose certification is provable: infeasible
        records (constraint data, nothing to certify), records whose task
        spec carries ``verify=True`` (the pipeline's own certificate gate
        ran before the result was recorded — and ``verify`` is part of
        the content address, so the spelling cannot lie), and records
        this service computed itself (workers run the
        ``run_task(verify=True)`` gate even for ``verify=False`` tasks).
        A feasible ``verify=False`` record written into a shared cache
        directory by some *other* producer is withheld — its
        certification cannot be established, and this endpoint promises
        certified results only.
        """
        record = self.cache.record_for_key(key)
        if record is None:
            return None
        if record.get("feasible"):
            task_spec = record.get("task") or {}
            with self._guard:
                certified = key in self._certified_keys
            if not certified and task_spec.get("verify", True) is not True:
                return None
        return {"key": key, "record": record}

    def wait(self, jobs: Iterable[Job], timeout: float = 60.0) -> List[Job]:
        """Block until every job finishes (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        jobs = list(jobs)
        for job in jobs:
            while not job.finished:
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"timed out waiting for job {job.id} (state {job.state!r})"
                    )
                time.sleep(0.005)
        return jobs

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _worker_loop(self, slot: int) -> None:
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.1)
            if job is None:
                if self.queue.closed and self.queue.depth == 0:
                    return
                continue
            if self.worker_mode == "process":
                self._execute_in_child(slot, job)
            else:
                self._execute_in_thread(job)

    def _execute_in_thread(self, job: Job) -> None:
        # Single-flight: content-identical jobs execute strictly in the
        # order they were taken — the first computes, every follower
        # unblocks here and exits run_task through the cache-hit path.
        self.queue.wait_for_key_turn(job)
        try:
            record = run_task(
                job.task,
                keep_result=False,
                cache=self.cache,
                verify=self.verify,
            )
        except Exception as exc:  # CertificateError and genuine bugs alike
            self._note_failure(job, str(exc), type(exc).__name__)
            self.queue.finish(job, error=str(exc), error_type=type(exc).__name__)
            return
        self._note_record(job, record)
        self.queue.finish(job, record=record.to_dict())

    def _execute_in_child(self, slot: int, job: Job) -> None:
        """Run one job on the slot's child process, surviving its death.

        The in-process key claim still orders content-identical jobs of
        *this* service (the follower's child then exits through the
        cache-hit path); the child itself additionally takes the
        store-level claim file, which is what serializes against other
        service processes on the same cache directory.
        """
        self.queue.wait_for_key_turn(job)
        child = self._children[slot]
        if child is None or not child.alive:
            child = self._children[slot] = self._spawn_child(slot)
        try:
            outcome = child.run(job.task, owner=job.id)
        except WorkerCrash as crash:
            with self._guard:
                self._worker_crashes += 1
            if not self._stop.is_set():
                self._children[slot] = self._spawn_child(slot)
            if job.requeues < self.max_requeues:
                self.queue.requeue(job)
                return
            message = f"{crash} after {job.requeues} requeue(s)"
            self._note_failure(job, message, "WorkerCrash")
            self.queue.finish(job, error=message, error_type="WorkerCrash")
            return
        if "feasible" not in outcome:
            # an execution *error* (certificate rejection, genuine bug),
            # not an infeasible record — those come back as data with
            # feasible=False and their own error fields
            self._note_failure(job, outcome.get("error", ""), outcome["error_type"])
            self.queue.finish(
                job, error=outcome.get("error", ""), error_type=outcome["error_type"]
            )
            return
        record = TaskResult.from_dict(outcome)
        with self._guard:
            # the child's cache instance did the real lookup/write; fold
            # the outcome into the parent's counters so /stats keeps
            # describing this service's serving work in one place
            if record.cached:
                self.cache.stats.hits += 1
            else:
                self.cache.stats.misses += 1
                self.cache.stats.writes += 1
        self._note_record(job, record)
        self.queue.finish(job, record=outcome)

    def _note_failure(self, job: Job, message: str, error_type: str) -> None:
        with self._guard:
            self._summary.total += 1
            self._summary.infeasible += 1
            self._summary.computed += 1
            if error_type == "CertificateError":
                self._summary.certificate_errors += 1
            # failed jobs stay visible in per_strategy too, so its
            # "jobs" counts always sum to summary.total
            stats = self._strategy_stats.setdefault(
                job.task.scheduler, dict(_STRATEGY_ZERO)
            )
            stats["jobs"] += 1
            stats["failed"] += 1

    def _note_record(self, job: Job, record: TaskResult) -> None:
        """Fold one finished record into the running counters (O(1)).

        The summary fields follow the exact
        :meth:`~repro.api.batch.BatchSummary.from_records` semantics the
        CLI uses — accumulated at finish time rather than recounted per
        ``/stats`` request, so a long-lived server's monitoring polls
        stay O(1) in the number of jobs ever served.
        """
        with self._guard:
            self._summary.total += 1
            if record.feasible:
                self._summary.feasible += 1
                if not record.cached:
                    # only a record this service *computed* provably passed
                    # the worker's verify gate; a cache hit is returned
                    # as-is and must not launder a foreign uncertified
                    # record into servability
                    self._certified_keys.add(job.key)
            else:
                self._summary.infeasible += 1
                if record.error_type == "CertificateError":
                    self._summary.certificate_errors += 1
            if record.cached:
                self._summary.cache_hits += 1
            else:
                self._summary.computed += 1
            stats = self._strategy_stats.setdefault(
                job.task.scheduler, dict(_STRATEGY_ZERO)
            )
            stats["jobs"] += 1
            if record.cached:
                stats["cache_hits"] += 1
            else:
                stats["computed"] += 1
                stats["computed_seconds"] += record.elapsed
            if record.winner:
                # a portfolio verdict credits the winning concrete
                # strategy's row, keyed by its scheduler half
                winner_row = self._strategy_stats.setdefault(
                    record.winner.split("+", 1)[0], dict(_STRATEGY_ZERO)
                )
                winner_row["portfolio_wins"] += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def summary(self) -> BatchSummary:
        """A :class:`~repro.api.batch.BatchSummary` over jobs this
        service instance finished.

        Field semantics match :meth:`BatchSummary.from_records` — the
        counting ``repro batch`` prints — but the counters accumulate as
        jobs finish, so reading them costs O(1) regardless of how many
        jobs the server has ever served.  Jobs finished by a *previous*
        process (replayed from the queue log) are not re-counted: the
        summary describes this process's serving work, like ``uptime``.
        """
        with self._guard:
            return dataclasses.replace(self._summary)

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: queue, cache, batch and strategy counters."""
        counts = self.queue.counts()
        cache_stats = self.cache.stats
        per_strategy = {}
        with self._guard:
            for name, stats in sorted(self._strategy_stats.items()):
                entry = dict(stats)
                entry["mean_computed_seconds"] = (
                    stats["computed_seconds"] / stats["computed"]
                    if stats["computed"]
                    else 0.0
                )
                per_strategy[name] = entry
        return {
            "uptime": time.time() - self.started_at if self.started_at else 0.0,
            "workers": self.workers,
            "worker_mode": self.worker_mode,
            "worker_crashes": self._worker_crashes,
            "stale_claims_broken": self._stale_claims_broken,
            "queue": {
                "depth": self.queue.depth,
                "max_depth": self.queue.max_depth,
                "jobs": counts,
            },
            "cache": {
                "backend": self.cache.backend,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "writes": cache_stats.writes,
                "hit_rate": (
                    cache_stats.hits / cache_stats.lookups
                    if cache_stats.lookups
                    else 0.0
                ),
            },
            "summary": self.summary().to_dict(),
            "per_strategy": per_strategy,
        }

    def healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: liveness plus queue depth."""
        return {
            "status": "ok" if self.running else "stopped",
            "workers": self.workers,
            "worker_mode": self.worker_mode,
            "queue_depth": self.queue.depth,
            "uptime": time.time() - self.started_at if self.started_at else 0.0,
        }

    def worker_pids(self) -> List[int]:
        """Pids of the live synthesis child processes (process mode).

        What the crash tests aim their SIGKILL at; empty in thread mode.
        """
        return [
            child.pid
            for child in self._children
            if child is not None and child.alive and child.pid is not None
        ]
