"""Register-transfer-level datapath model.

The output of the combined synthesis is a :class:`Datapath`: the set of
allocated functional-unit instances, the binding of operations to
instances, the register allocation and the interconnect estimate.  The
datapath knows how to compute its area breakdown and can render itself as
a structural netlist-like text report (and a minimal structural Verilog
skeleton for inspection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..binding.interconnect import InterconnectReport, interconnect_report
from ..binding.register import RegisterAllocation, allocate_registers
from ..ir.cdfg import CDFG
from ..library.module import FUInstance, FUModule
from ..scheduling.schedule import Schedule
from .area import AreaBreakdown, register_area


class DatapathError(Exception):
    """Raised for inconsistent datapath construction."""


@dataclass
class Datapath:
    """A synthesized datapath: instances, binding, registers, interconnect.

    Attributes:
        cdfg: The behavioural description the datapath implements.
        schedule: The final schedule of all operations.
        instances: Allocated FU instances, keyed by instance name.
        binding: Operation name → instance name.
        registers: Register allocation for produced values.
        interconnect: Multiplexer estimate.
    """

    cdfg: CDFG
    schedule: Schedule
    instances: Dict[str, FUInstance] = field(default_factory=dict)
    binding: Dict[str, str] = field(default_factory=dict)
    registers: Optional[RegisterAllocation] = None
    interconnect: Optional[InterconnectReport] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_instance(self, module: FUModule) -> FUInstance:
        """Allocate a new instance of ``module`` and register it."""
        index = sum(1 for inst in self.instances.values() if inst.module.name == module.name)
        instance = FUInstance(module=module, index=index)
        self.instances[instance.name] = instance
        return instance

    def bind(self, op_name: str, instance_name: str) -> None:
        """Bind an operation to an existing instance."""
        if op_name in self.binding:
            raise DatapathError(f"operation {op_name!r} is already bound")
        if instance_name not in self.instances:
            raise DatapathError(f"unknown instance {instance_name!r}")
        optype = self.cdfg.operation(op_name).optype
        instance = self.instances[instance_name]
        if not instance.module.supports(optype):
            raise DatapathError(
                f"instance {instance_name!r} ({instance.module.name}) cannot "
                f"execute {optype.value!r}"
            )
        instance.bind(op_name)
        self.binding[op_name] = instance_name

    def finalize(self) -> None:
        """Run register allocation and interconnect estimation.

        Call once the schedule and all bindings are complete.
        """
        unbound = [
            n
            for n in self.cdfg.schedulable_operations()
            if n not in self.binding
        ]
        if unbound:
            raise DatapathError(f"operations left unbound: {sorted(unbound)}")
        self.registers = allocate_registers(self.schedule)
        self.interconnect = interconnect_report(self.cdfg, self.binding, self.registers)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def instance_of(self, op_name: str) -> FUInstance:
        try:
            return self.instances[self.binding[op_name]]
        except KeyError:
            raise DatapathError(f"operation {op_name!r} is not bound") from None

    def operations_on(self, instance_name: str) -> List[str]:
        if instance_name not in self.instances:
            raise DatapathError(f"unknown instance {instance_name!r}")
        return list(self.instances[instance_name].bound_ops)

    def instance_count(self, module_name: Optional[str] = None) -> int:
        """Number of instances, optionally restricted to one module type."""
        if module_name is None:
            return len(self.instances)
        return sum(1 for inst in self.instances.values() if inst.module.name == module_name)

    def allocation_summary(self) -> Dict[str, int]:
        """Module name → number of allocated instances."""
        summary: Dict[str, int] = {}
        for instance in self.instances.values():
            summary[instance.module.name] = summary.get(instance.module.name, 0) + 1
        return dict(sorted(summary.items()))

    def area(self) -> AreaBreakdown:
        """Area breakdown (FUs + registers + interconnect)."""
        fu_area = sum(instance.area for instance in self.instances.values())
        reg_area = register_area(self.registers.count) if self.registers else 0.0
        mux_area = self.interconnect.area if self.interconnect else 0.0
        return AreaBreakdown(fu_area, reg_area, mux_area)

    def operation_powers(self) -> Dict[str, float]:
        """Per-operation per-cycle power as implied by the binding."""
        powers: Dict[str, float] = {}
        for op_name in self.cdfg.operation_names():
            if op_name in self.binding:
                powers[op_name] = self.instances[self.binding[op_name]].module.power
            else:
                powers[op_name] = 0.0
        return powers

    def check_no_conflicts(self) -> List[str]:
        """Instance-sharing conflicts: overlapping executions on one instance.

        Returns human-readable conflict descriptions; an empty list means
        the binding is consistent with the schedule.
        """
        problems: List[str] = []
        for instance in self.instances.values():
            spans = []
            for op_name in instance.bound_ops:
                start = self.schedule.start(op_name)
                spans.append((start, start + instance.module.latency, op_name))
            spans.sort()
            for (s1, e1, op1), (s2, e2, op2) in zip(spans, spans[1:]):
                if s2 < e1:
                    problems.append(
                        f"instance {instance.name}: {op1} [{s1},{e1}) overlaps {op2} [{s2},{e2})"
                    )
        return problems

    # ------------------------------------------------------------------ #
    # Reports
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line netlist-like description of the datapath."""
        lines = [f"datapath for {self.cdfg.name!r}"]
        lines.append(f"  {self.area().describe()}")
        lines.append(f"  latency: {self.schedule.makespan} cycles")
        lines.append(f"  peak power: {self.schedule.peak_power:.2f}")
        for name in sorted(self.instances):
            instance = self.instances[name]
            ops = ", ".join(instance.bound_ops) or "(idle)"
            lines.append(f"  {name}: area={instance.area:g} ops=[{ops}]")
        if self.registers is not None:
            lines.append(f"  registers: {self.registers.count}")
        if self.interconnect is not None:
            lines.append(f"  mux inputs: {self.interconnect.total_mux_inputs}")
        return "\n".join(lines)

    def to_structural_verilog(self, module_name: Optional[str] = None) -> str:
        """A minimal structural-Verilog skeleton of the datapath.

        The emitted text instantiates one module per FU instance and one
        register per allocated register; it is meant for human inspection
        and downstream tooling experiments, not for simulation.
        """
        module_name = module_name or f"{self.cdfg.name}_datapath"
        sanitized = module_name.replace("-", "_").replace(" ", "_")
        lines = [f"module {sanitized} (input clk);"]
        for name in sorted(self.instances):
            instance = self.instances[name]
            cell = instance.module.name.replace(" ", "_").replace("(", "").replace(")", "").replace(".", "")
            inst = name.replace("#", "_").replace(" ", "_").replace("(", "").replace(")", "").replace(".", "")
            ops = " ".join(instance.bound_ops)
            lines.append(f"  // executes: {ops}")
            lines.append(f"  {cell} {inst} (.clk(clk));")
        count = self.registers.count if self.registers else 0
        for index in range(count):
            lines.append(f"  reg_cell r{index} (.clk(clk));")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"
