"""Interconnect (multiplexer) estimation.

When several operations share a functional unit, the unit's input ports
must be fed by multiplexers selecting among the source registers of the
operations bound to it; likewise a register written by several producers
needs a multiplexer in front of its data input.  The paper's cost
function prefers solutions "using least interconnect", so the synthesis
engine breaks area ties with the estimated interconnect cost produced
here.

The model is intentionally simple and uniform across all experiments:

* every distinct (source operation → FU instance input port) connection
  beyond the first on that port contributes one mux input,
* every distinct producer writing a shared register beyond the first
  contributes one mux input,
* a mux input costs :data:`MUX_INPUT_AREA` area units (documented in
  DESIGN.md; the absolute value only shifts all areas equally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Set, Tuple

from ..ir.cdfg import CDFG
from .register import RegisterAllocation

#: Area of one multiplexer input in the paper's area units.
MUX_INPUT_AREA = 3.0


@dataclass(frozen=True)
class InterconnectReport:
    """Mux counts for a bound datapath."""

    fu_mux_inputs: int
    register_mux_inputs: int

    @property
    def total_mux_inputs(self) -> int:
        return self.fu_mux_inputs + self.register_mux_inputs

    @property
    def area(self) -> float:
        return self.total_mux_inputs * MUX_INPUT_AREA


def fu_mux_inputs(
    cdfg: CDFG,
    binding: Mapping[str, str],
) -> int:
    """Mux inputs needed in front of functional-unit input ports.

    Args:
        cdfg: The data-flow graph.
        binding: Operation name → FU instance name.

    Returns:
        Total number of extra mux inputs over all instances and ports.
    """
    # port index -> set of producing operations, per instance
    sources: Dict[Tuple[str, int], Set[str]] = {}
    for op_name, instance_name in binding.items():
        predecessors = sorted(cdfg.predecessors(op_name))
        for port, producer in enumerate(predecessors):
            sources.setdefault((instance_name, port), set()).add(producer)
    total = 0
    for feeding in sources.values():
        if len(feeding) > 1:
            total += len(feeding)
    return total


def register_mux_inputs(allocation: RegisterAllocation) -> int:
    """Mux inputs needed in front of shared registers."""
    total = 0
    for producers in allocation.registers.values():
        if len(producers) > 1:
            total += len(producers)
    return total


def interconnect_report(
    cdfg: CDFG,
    binding: Mapping[str, str],
    allocation: RegisterAllocation,
) -> InterconnectReport:
    """Combined FU and register multiplexer estimate."""
    return InterconnectReport(
        fu_mux_inputs=fu_mux_inputs(cdfg, binding),
        register_mux_inputs=register_mux_inputs(allocation),
    )


def sharing_penalty(
    cdfg: CDFG,
    instance_ops: List[str],
    candidate_op: str,
) -> int:
    """Heuristic interconnect penalty of adding ``candidate_op`` to an instance.

    Counts how many *new* source operations the candidate would bring to
    the instance's input ports.  Used by the synthesis engine to break
    ties between merges of equal area gain ("least interconnect").
    """
    existing_sources: Set[str] = set()
    for op_name in instance_ops:
        existing_sources.update(cdfg.predecessors(op_name))
    new_sources = set(cdfg.predecessors(candidate_op)) - existing_sources
    return len(new_sources)
