"""The append-only JSONL journal shared by every cache backend.

The journal is the human-greppable trail of everything that was actually
*computed* (cache hits are never re-journaled) and the replay feed for
crash recovery and migration.  Its format has not changed since it was
introduced: one ``{"key": ..., "record": ...}`` object per line, written
as a single ``write`` to an ``O_APPEND`` descriptor so concurrent
workers never interleave mid-line, with torn tails tolerated on read.

:func:`iter_journal` is the streaming reader — replay and migration walk
journals of arbitrary size in constant memory.  :func:`load_journal`
keeps its historical list-returning signature on top of it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

#: File name of the append-only JSONL journal inside a cache directory.
JOURNAL_NAME = "journal.jsonl"


def journal_path(path: Union[str, Path]) -> Path:
    """Resolve a cache directory or explicit file path to the journal file."""
    journal = Path(path).expanduser()
    if journal.is_dir():
        journal = journal / JOURNAL_NAME
    return journal


def append_journal_line(path: Union[str, Path], payload: Dict[str, Any]) -> None:
    """Append one payload as a single ``O_APPEND`` write (crash-atomic line)."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    fd = os.open(journal_path(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode("utf-8"))
    finally:
        os.close(fd)


def iter_journal_payloads(
    path: Union[str, Path],
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Stream ``(key, record_dict)`` pairs from a journal, skipping bad lines.

    Malformed lines (a half-written tail from a killed process, a line
    without a record) are silently skipped, so a journal is always safe
    to replay after a crash — and the file is read line by line, never
    materialized whole.
    """
    journal = journal_path(path)
    if not journal.exists():
        return
    with open(journal) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                key = payload["key"]
                record = payload["record"]
            except (ValueError, KeyError, TypeError):
                continue
            if isinstance(key, str) and isinstance(record, dict):
                yield key, record


def iter_journal(path: Union[str, Path]) -> Iterator["TaskResult"]:
    """Stream a journal back as :class:`~repro.api.batch.TaskResult` records.

    The generator twin of :func:`load_journal`: replaying a
    million-record journal holds one record in memory at a time.
    Records that fail to deserialize are skipped like malformed lines.
    """
    from ..api.batch import TaskResult  # local import to avoid a cycle

    for _, record in iter_journal_payloads(path):
        try:
            yield TaskResult.from_dict(dict(record))
        except (ValueError, KeyError, TypeError):
            continue


def load_journal(path: Union[str, Path]) -> List["TaskResult"]:
    """Parse a cache journal (``journal.jsonl``) back into a record list.

    The materializing form of :func:`iter_journal`, kept for callers that
    want the whole (small) journal at once.
    """
    return list(iter_journal(path))
