"""HAL differential-equation benchmark.

The "HAL" benchmark (after Paulin's HAL system) is the classic high-level
synthesis example: one iteration of the forward-Euler solver of the second
order differential equation ``y'' + 3xy' + 3y = 0``::

    x1 = x + dx
    u1 = u - (3 * x * u * dx) - (3 * y * dx)
    y1 = y + (u * dx)
    c  = a > x1          (loop-exit test)

The data-flow graph has 6 multiplications, 2 additions, 2 subtractions and
one comparison, plus the primary inputs and outputs.  With the paper's
library the critical path is 16 cycles using the serial multiplier and 10
cycles using the parallel multiplier (including the input and output
cycles), which is exactly why the paper evaluates ``hal`` at T = 10 and
T = 17.
"""

from __future__ import annotations

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG


def hal_cdfg(include_io: bool = True) -> CDFG:
    """Build the HAL differential-equation CDFG.

    Args:
        include_io: When True (default) the graph contains explicit input
            and output operations, which occupy the Table-1 ``input`` and
            ``output`` modules and contribute to the power profile exactly
            as in the paper.  When False only the arithmetic core is
            returned.

    Returns:
        A validated :class:`~repro.ir.cdfg.CDFG` named ``"hal"``.
    """
    b = CDFGBuilder("hal")

    if include_io:
        x = b.input("in_x")
        y = b.input("in_y")
        u = b.input("in_u")
        dx = b.input("in_dx")
        a = b.input("in_a")
    else:
        x = b.const("x")
        y = b.const("y")
        u = b.const("u")
        dx = b.const("dx")
        a = b.const("a")
    three = b.const("const_3", value=3)

    # u1 = u - 3*x*u*dx - 3*y*dx
    m1 = b.mul("m1_3x", three, x)        # 3 * x
    m2 = b.mul("m2_3xu", m1, u)          # (3x) * u
    m3 = b.mul("m3_3xudx", m2, dx)       # (3xu) * dx
    m4 = b.mul("m4_3y", three, y)        # 3 * y
    m5 = b.mul("m5_3ydx", m4, dx)        # (3y) * dx
    s1 = b.sub("s1_u_minus", u, m3)      # u - 3xudx
    u1 = b.sub("s2_u1", s1, m5)          # (u - 3xudx) - 3ydx

    # y1 = y + u*dx
    m6 = b.mul("m6_udx", u, dx)
    y1 = b.add("a1_y1", y, m6)

    # x1 = x + dx ; c = a > x1
    x1 = b.add("a2_x1", x, dx)
    c = b.gt("c1_test", a, x1)

    if include_io:
        b.output("out_u1", u1)
        b.output("out_y1", y1)
        b.output("out_x1", x1)
        b.output("out_c", c)

    return b.build()


#: Latency bounds the paper uses for the hal benchmark in Figure 2.
HAL_LATENCIES = (10, 17)
