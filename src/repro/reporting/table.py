"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_cell(value: Any, float_digits: int = 2) -> str:
    """Render one cell: floats get fixed precision, None becomes '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render an ASCII table with right-aligned numeric-looking columns.

    Args:
        headers: Column headers.
        rows: Row data; each row must have ``len(headers)`` entries.
        title: Optional title line printed above the table.
        float_digits: Precision used for float cells.

    Raises:
        ValueError: when a row has the wrong number of cells.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )

    text_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
