"""Persistent, crash-tolerant job queue for the synthesis service.

A :class:`JobQueue` is the serving layer's unit of durability: every
submitted :class:`~repro.api.task.SynthesisTask` becomes a :class:`Job`
with a stable id, and every state transition (submit → start → finish,
or a requeue) is appended to ``jobs.jsonl`` in the queue's state
directory with the same single-``O_APPEND``-write discipline as the
result cache journal — concurrent writers never interleave mid-line and
a torn tail from a killed process is skipped on replay.

Reopening a state directory replays the event log: finished jobs come
back with their records, pending jobs re-enter the queue in submission
order, and jobs that were *running* when the process died are requeued
(their work, if it completed far enough to reach the result cache, is
answered from the cache in ~0.2 ms on the re-run).  That replay is what
lets ``repro serve`` restart under load without losing or duplicating
accepted work.

Dequeue order is *priority, then FIFO*: every submission carries an
integer priority (default 0, higher first), ready jobs are taken in
``(-priority, submission order)`` order, and a requeued job re-enters
ahead of later submissions of its own priority class.  The queue can be
depth-bounded (``max_depth``): when the backlog of pending jobs is at
the bound, :meth:`submit` raises :class:`QueueFullError` carrying a
``retry_after`` hint — what the HTTP front turns into ``429`` +
``Retry-After`` backpressure instead of an unbounded in-memory backlog.

The queue also provides the in-process single-flight primitive the
service builds dedup on: :meth:`JobQueue.take` registers a
per-content-address claim under the same lock that serializes dequeues,
and :meth:`JobQueue.wait_for_key_turn` blocks a job until every
earlier-taken job with the same key has finished.  Because claim order
is take order, "the second client's identical batch is answered
entirely from cache" is a guarantee, not a race.  (The *cross-process*
twin of this primitive — two service processes sharing one cache
directory — lives in :mod:`repro.store.claims` and is enforced by the
workers, not the queue.)
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..api.task import SynthesisTask, TaskError

#: Event-log file name inside a queue state directory.
LOG_NAME = "jobs.jsonl"

#: The job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATES = (PENDING, RUNNING, DONE, FAILED)


class QueueError(RuntimeError):
    """A job-queue usage error (unknown id, illegal transition, …)."""


class QueueFullError(QueueError):
    """The queue's pending backlog is at ``max_depth``.

    Attributes:
        retry_after: Suggested seconds before retrying — what the HTTP
            front sends as the ``Retry-After`` header of its ``429``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One unit of accepted work: a task plus its serving lifecycle.

    Attributes:
        id: Stable, unique job id (``job-<seq>-<nonce>``) handed back to
            the submitting client and used in ``GET /jobs/<id>``.
        task: The task spec to synthesize.
        key: The task's content address
            (:meth:`~repro.api.task.SynthesisTask.cache_key`), which is
            also the ``GET /results/<key>`` address of the outcome.
        state: ``pending`` → ``running`` → ``done`` | ``failed``.
        submitted_at / started_at / finished_at: Epoch timestamps of the
            transitions (``None`` until they happen).
        record: The finished :class:`~repro.api.batch.TaskResult` in
            plain-dict form (scalar metrics only), for ``done`` jobs.
        error / error_type: Failure details for ``failed`` jobs (e.g. a
            structural ``CertificateError`` the verify gate rejected).
        requeues: How many times the job re-entered the queue after a
            crash or drain found it in flight.
        priority: Dequeue priority (higher first; FIFO within a class).
            A submission attribute, not part of the task's content
            address — the same task at two priorities is still one
            synthesis.
    """

    id: str
    task: SynthesisTask
    key: str
    state: str = PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    requeues: int = 0
    priority: int = 0
    #: Monotonic submission sequence number (dequeue tie-breaker).
    seq: int = 0

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in (DONE, FAILED)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form — what ``GET /jobs/<id>`` serves."""
        return {
            "id": self.id,
            "task": self.task.to_dict(),
            "key": self.key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "record": self.record,
            "error": self.error,
            "error_type": self.error_type,
            "requeues": self.requeues,
            "priority": self.priority,
        }


class JobQueue:
    """A FIFO queue of :class:`Job` records with an append-only event log.

    Args:
        state_dir: Directory holding ``jobs.jsonl``.  ``None`` keeps the
            queue purely in memory (tests, throwaway servers) — identical
            semantics, no durability.
        max_depth: Bound on the *pending* backlog.  ``None`` (default)
            is unbounded; with a bound, :meth:`submit` /
            :meth:`submit_many` raise :class:`QueueFullError` instead of
            growing the backlog — the service's backpressure signal.

    All methods are thread-safe; :meth:`take` blocks on a condition
    variable so idle workers cost nothing.  Pending jobs are ordered by
    ``(-priority, submission sequence)``.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        *,
        max_depth: Optional[int] = None,
    ) -> None:
        self.state_dir = Path(state_dir).expanduser() if state_dir is not None else None
        self.max_depth = int(max_depth) if max_depth is not None else None
        if self.max_depth is not None and self.max_depth < 1:
            raise QueueError(f"max_depth must be >= 1, got {max_depth}")
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._finished = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        #: Sorted (-priority, seq, job_id) triples; index 0 dequeues next.
        self._pending: List[tuple] = []
        self._taken_keys: Dict[str, List[str]] = {}
        self._seq = 0
        self._closed = False
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._replay()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def log_path(self) -> Optional[Path]:
        return self.state_dir / LOG_NAME if self.state_dir is not None else None

    def _append(self, event: Dict[str, Any]) -> None:
        if self.state_dir is None:
            return
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        # one unbuffered write to an O_APPEND fd, exactly like the result
        # cache journal: concurrent workers never interleave mid-line
        fd = os.open(self.log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)

    def _replay(self) -> None:
        """Rebuild in-memory state from the event log (crash-tolerant).

        Jobs left ``running`` by a dead process are requeued; malformed
        lines (a torn tail) are skipped.
        """
        if not self.log_path.exists():
            return
        order: List[str] = []
        with open(self.log_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    kind = event["event"]
                    job_id = event["id"]
                except (ValueError, KeyError, TypeError):
                    continue
                try:
                    if kind == "submit":
                        job = Job(
                            id=job_id,
                            task=SynthesisTask.from_dict(event["task"]),
                            key=event["key"],
                            submitted_at=event.get("ts", 0.0),
                            priority=int(event.get("priority", 0)),
                            seq=len(order) + 1,
                        )
                        self._jobs[job_id] = job
                        order.append(job_id)
                    elif job_id in self._jobs:
                        job = self._jobs[job_id]
                        if kind == "start":
                            job.state = RUNNING
                            job.started_at = event.get("ts")
                        elif kind == "finish":
                            job.state = event.get("state", DONE)
                            job.finished_at = event.get("ts")
                            job.record = event.get("record")
                            job.error = event.get("error")
                            job.error_type = event.get("error_type")
                        elif kind == "requeue":
                            job.state = PENDING
                            job.started_at = None
                            job.requeues += 1
                except (TaskError, ValueError, KeyError, TypeError):
                    continue
        for job_id in order:
            job = self._jobs[job_id]
            if job.state == RUNNING:
                # the previous process died mid-job: requeue it
                job.state = PENDING
                job.started_at = None
                job.requeues += 1
                self._append({"event": "requeue", "id": job_id, "ts": time.time()})
            if job.state == PENDING:
                bisect.insort(self._pending, (-job.priority, job.seq, job.id))
        self._seq = len(order)

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, task: SynthesisTask, *, priority: int = 0) -> Job:
        """Accept a task: assign an id, persist the submit event, enqueue.

        Raises :class:`QueueFullError` when a ``max_depth`` bound is set
        and the pending backlog is at it.
        """
        return self.submit_many([task], priority=priority)[0]

    def submit_many(
        self, tasks: Iterable[SynthesisTask], *, priority: int = 0
    ) -> List[Job]:
        """Accept a batch atomically: all admitted, or ``QueueFullError``.

        Capacity is checked for the whole batch under the queue lock —
        a client is never left with half its batch admitted and the
        other half bounced, which would make the 429 retry re-submit
        (and re-account) the admitted half.
        """
        tasks = list(tasks)
        with self._not_empty:
            if self._closed:
                raise QueueError("queue is closed to new submissions")
            if (
                self.max_depth is not None
                and len(self._pending) + len(tasks) > self.max_depth
            ):
                raise QueueFullError(
                    f"queue is full ({len(self._pending)} pending, "
                    f"max_depth={self.max_depth}); retry later",
                    retry_after=self._retry_after_hint(),
                )
            jobs = []
            for task in tasks:
                self._seq += 1
                job = Job(
                    id=f"job-{self._seq:06d}-{uuid.uuid4().hex[:8]}",
                    task=task,
                    key=task.cache_key(),
                    submitted_at=time.time(),
                    priority=int(priority),
                    seq=self._seq,
                )
                self._jobs[job.id] = job
                bisect.insort(self._pending, (-job.priority, job.seq, job.id))
                self._append(
                    {
                        "event": "submit",
                        "id": job.id,
                        "ts": job.submitted_at,
                        "task": task.to_dict(),
                        "key": job.key,
                        "priority": job.priority,
                    }
                )
                jobs.append(job)
            self._not_empty.notify(len(jobs))
        return jobs

    def _retry_after_hint(self) -> float:
        """Seconds a bounced client should wait (caller holds the lock).

        Deliberately crude — half a second per pending job, clamped to
        [1, 30] — because the real signal is *when the client retries
        and succeeds*; the hint only spreads the retries out.
        """
        return min(30.0, max(1.0, 0.5 * len(self._pending)))

    def close(self) -> None:
        """Refuse further submissions and wake blocked :meth:`take` calls."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` refused further submissions."""
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the highest-priority oldest pending job, mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``) and
        returns ``None`` on timeout or when the queue was closed while
        empty — the worker-loop exit signal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._pending:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            job = self._jobs[self._pending.pop(0)[2]]
            job.state = RUNNING
            job.started_at = time.time()
            # registering the key claim under the same lock that serializes
            # take() is what makes single-flight deterministic: a duplicate
            # dequeued later always sees this job ahead of it in the claim
            # list, never a half-registered leader
            self._taken_keys.setdefault(job.key, []).append(job.id)
            self._append({"event": "start", "id": job.id, "ts": job.started_at})
            return job

    def finish(
        self,
        job: Job,
        *,
        record: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        error_type: Optional[str] = None,
    ) -> None:
        """Move a running job to ``done`` (with its record) or ``failed``."""
        with self._finished:
            if job.state != RUNNING:
                raise QueueError(f"cannot finish job {job.id} in state {job.state!r}")
            # publish the payload before the state flip: HTTP threads read
            # Job fields without this lock, and a client observing
            # state == "done" must never see record still unset
            job.finished_at = time.time()
            job.record = record
            job.error = error
            job.error_type = error_type
            job.state = FAILED if error is not None else DONE
            self._release_key(job)
            self._append(
                {
                    "event": "finish",
                    "id": job.id,
                    "ts": job.finished_at,
                    "state": job.state,
                    "record": record,
                    "error": error,
                    "error_type": error_type,
                }
            )
            self._finished.notify_all()

    def _release_key(self, job: Job) -> None:
        """Drop a job's key claim (caller holds the lock)."""
        claims = self._taken_keys.get(job.key)
        if claims and job.id in claims:
            claims.remove(job.id)
            if not claims:
                del self._taken_keys[job.key]

    def wait_for_key_turn(self, job: Job, timeout: Optional[float] = None) -> bool:
        """Block until no earlier-taken job with the same key is running.

        Key claims are registered in :meth:`take` order under the queue
        lock, so this is the deterministic single-flight primitive: of N
        content-identical jobs, the first taken computes while every
        later one waits here, then exits ``run_task`` through the
        cache-hit path.  Returns False on timeout (the caller may
        proceed anyway; the result cache keeps it merely redundant, not
        wrong).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._finished:
            while True:
                claims = self._taken_keys.get(job.key, [])
                if not claims or claims[0] == job.id:
                    return True
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._finished.wait(remaining if remaining is not None else 0.5)

    def requeue(self, job: Job) -> None:
        """Put a running job back into the queue (drain/crash recovery).

        The job keeps its original submission sequence, so it re-enters
        *ahead* of anything submitted after it within its own priority
        class — a crash costs latency, never its place in line.
        """
        with self._not_empty:
            if job.state != RUNNING:
                raise QueueError(f"cannot requeue job {job.id} in state {job.state!r}")
            job.state = PENDING
            job.started_at = None
            job.requeues += 1
            self._release_key(job)
            bisect.insort(self._pending, (-job.priority, job.seq, job.id))
            self._append({"event": "requeue", "id": job.id, "ts": time.time()})
            self._not_empty.notify()
            self._finished.notify_all()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    @property
    def depth(self) -> int:
        """Jobs waiting to be taken (the ``/stats`` queue-depth number)."""
        with self._lock:
            return len(self._pending)

    def counts(self) -> Dict[str, int]:
        """Job counts by state (``pending``/``running``/``done``/``failed``)."""
        with self._lock:
            counts = {state: 0 for state in STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
