"""Unit tests for repro.ir.analysis."""

import pytest

from repro.ir.analysis import (
    alap_times,
    asap_times,
    concurrency_profile,
    critical_path,
    critical_path_length,
    depth_levels,
    energy_lower_bound_power,
    mobility,
    operation_intervals,
    resource_lower_bound,
    unit_delays,
)
from repro.ir.cdfg import CDFGError
from repro.ir.operation import OpType


class TestAsapAlap:
    def test_asap_unit_delay_diamond(self, diamond):
        asap = asap_times(diamond)
        assert asap["a"] == 0
        assert asap["left"] == 1
        assert asap["right"] == 1
        assert asap["bottom"] == 2
        assert asap["out"] == 3

    def test_asap_respects_multicycle_delays(self, diamond):
        delays = unit_delays(diamond)
        delays["right"] = 4
        asap = asap_times(diamond, delays)
        assert asap["bottom"] == 5  # must wait for the 4-cycle multiply

    def test_alap_equals_asap_on_critical_path(self, diamond):
        cp = critical_path_length(diamond)
        alap = alap_times(diamond, cp)
        asap = asap_times(diamond)
        path = critical_path(diamond)
        for name in path:
            assert alap[name] == asap[name]

    def test_alap_rejects_too_small_latency(self, diamond):
        with pytest.raises(CDFGError):
            alap_times(diamond, critical_path_length(diamond) - 1)

    def test_missing_delay_rejected(self, diamond):
        with pytest.raises(CDFGError):
            asap_times(diamond, {"a": 1})

    def test_negative_delay_rejected(self, diamond):
        delays = unit_delays(diamond)
        delays["a"] = -1
        with pytest.raises(CDFGError):
            asap_times(diamond, delays)


class TestCriticalPath:
    def test_length_matches_path(self, diamond):
        delays = unit_delays(diamond)
        path = critical_path(diamond, delays)
        assert critical_path_length(diamond, delays) == sum(delays[n] for n in path)

    def test_path_is_a_dependence_chain(self, hal):
        path = critical_path(hal)
        for producer, consumer in zip(path, path[1:]):
            assert consumer in hal.successors(producer)

    def test_hal_serial_critical_path(self, hal):
        # in -> 3 chained multiplications (4 cycles each) -> 2 subtractions -> out
        delays = {n: 1 for n in hal.operation_names()}
        for name in hal.operations_of_type(OpType.MUL):
            delays[name] = 4
        for name in hal.operations_of_type(OpType.CONST):
            delays[name] = 0
        assert critical_path_length(hal, delays) == 16


class TestMobility:
    def test_zero_on_critical_path(self, diamond):
        cp = critical_path_length(diamond)
        slack = mobility(diamond, cp)
        for name in critical_path(diamond):
            assert slack[name] == 0

    def test_grows_with_latency(self, diamond):
        cp = critical_path_length(diamond)
        tight = mobility(diamond, cp)
        loose = mobility(diamond, cp + 5)
        for name in diamond.operation_names():
            assert loose[name] == tight[name] + 5

    def test_non_negative(self, cosine):
        cp = critical_path_length(cosine)
        assert all(v >= 0 for v in mobility(cosine, cp).values())


class TestProfilesAndBounds:
    def test_depth_levels(self, diamond):
        levels = depth_levels(diamond)
        assert levels["a"] == 0
        assert levels["bottom"] == 2
        assert levels["out"] == 3

    def test_concurrency_profile_counts_ops(self, diamond):
        asap = asap_times(diamond)
        profile = concurrency_profile(diamond, asap)
        assert sum(profile) == len(diamond.schedulable_operations())
        assert profile[1] == 2  # left and right run together under ASAP

    def test_resource_lower_bound(self, hal):
        # six multiplications of four cycles each in sixteen cycles need >= 2 units
        delays = {n: 4 if hal.operation(n).optype is OpType.MUL else 1 for n in hal}
        assert resource_lower_bound(hal, 16, OpType.MUL, delays) == 2
        assert resource_lower_bound(hal, 16, OpType.LT, delays) == 0

    def test_energy_lower_bound_power(self):
        assert energy_lower_bound_power(100.0, 10) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            energy_lower_bound_power(100.0, 0)

    def test_operation_intervals(self):
        intervals = operation_intervals({"a": 2}, {"a": 3})
        assert intervals == {"a": (2, 5)}


class TestValidatedDelays:
    def test_wrapper_reused_for_same_graph(self, diamond):
        from repro.ir.analysis import validated_delays

        delays = validated_delays(diamond, unit_delays(diamond))
        assert validated_delays(diamond, delays) is delays

    def test_missing_delay_raises_cdfg_error(self, diamond):
        from repro.ir.analysis import validated_delays

        delays = unit_delays(diamond)
        delays.pop("left")
        with pytest.raises(CDFGError):
            validated_delays(diamond, delays)

    def test_wrapper_revalidated_after_graph_mutation(self, diamond):
        from repro.ir.analysis import validated_delays
        from repro.ir.operation import Operation

        delays = validated_delays(diamond, unit_delays(diamond))
        diamond.add_operation(Operation("late", OpType.ADD))
        # The stale wrapper is missing the new operation: the analyses
        # must re-check it and raise the documented error, not KeyError.
        with pytest.raises(CDFGError):
            asap_times(diamond, delays)
