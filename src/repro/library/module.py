"""Functional-unit module and instance models.

A *module* is a type of hardware resource available from the technology
library: it supports a set of operation types and has an area, a latency
(clock cycles per operation) and a per-cycle power consumption while
executing.  This is exactly the information the paper's Table 1 provides
for each library entry.

An *instance* is one allocated copy of a module in the synthesized
datapath.  Binding maps every CDFG operation to an instance; several
operations may share one instance as long as their execution intervals do
not overlap (that sharing is what the clique-partitioning binder
discovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from ..ir.operation import OpType


class LibraryError(Exception):
    """Raised for malformed library definitions or unsupported requests."""


@dataclass(frozen=True)
class FUModule:
    """A functional-unit type from the technology library.

    Attributes:
        name: Unique module name (e.g. ``"ALU"``, ``"Mult (ser.)"``).
        supported_ops: Operation types this module can execute.
        area: Silicon area in the paper's (unit-less) area units.
        latency: Clock cycles needed to execute one operation.
        power: Power drawn in *each* cycle the module is executing, in the
            paper's power units.
    """

    name: str
    supported_ops: FrozenSet[OpType]
    area: float
    latency: int
    power: float

    def __post_init__(self) -> None:
        if not self.name:
            raise LibraryError("module name must be non-empty")
        if not self.supported_ops:
            raise LibraryError(f"module {self.name!r} supports no operations")
        if self.area < 0:
            raise LibraryError(f"module {self.name!r} has negative area")
        if self.latency <= 0:
            raise LibraryError(f"module {self.name!r} must take at least one cycle")
        if self.power < 0:
            raise LibraryError(f"module {self.name!r} has negative power")
        object.__setattr__(self, "supported_ops", frozenset(self.supported_ops))

    def supports(self, optype: OpType) -> bool:
        """True if the module can execute operations of ``optype``."""
        return optype in self.supported_ops

    @property
    def energy(self) -> float:
        """Energy of one operation execution (power × latency)."""
        return self.power * self.latency

    @property
    def is_multifunction(self) -> bool:
        """True if the module implements more than one operation type."""
        return len(self.supported_ops) > 1

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        ops = ",".join(sorted(op.value for op in self.supported_ops))
        return (
            f"{self.name}: ops={{{ops}}} area={self.area:g} "
            f"cycles={self.latency} power={self.power:g}"
        )

    @staticmethod
    def make(
        name: str,
        ops: Iterable[OpType],
        area: float,
        latency: int,
        power: float,
    ) -> "FUModule":
        """Convenience constructor accepting any iterable of op types."""
        return FUModule(name, frozenset(ops), float(area), int(latency), float(power))


@dataclass
class FUInstance:
    """A concrete allocated copy of a module in the datapath.

    Attributes:
        module: The library module this instance realizes.
        index: Instance number among instances of the same module.
        bound_ops: Names of CDFG operations bound to this instance, in
            binding order.
    """

    module: FUModule
    index: int
    bound_ops: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Unique datapath name, e.g. ``"ALU#0"``."""
        return f"{self.module.name}#{self.index}"

    @property
    def area(self) -> float:
        return self.module.area

    def bind(self, op_name: str) -> None:
        """Record that ``op_name`` executes on this instance."""
        if op_name in self.bound_ops:
            raise LibraryError(f"operation {op_name!r} already bound to {self.name}")
        self.bound_ops.append(op_name)

    def unbind(self, op_name: str) -> None:
        """Remove a previously bound operation (used by backtracking)."""
        try:
            self.bound_ops.remove(op_name)
        except ValueError:
            raise LibraryError(f"operation {op_name!r} not bound to {self.name}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FUInstance({self.name}, ops={self.bound_ops})"


def busy_intervals(
    instance: FUInstance,
    start_times: dict,
) -> List[Tuple[int, int]]:
    """Execution intervals ``[start, start+latency)`` of an instance's operations.

    Operations missing from ``start_times`` (not yet scheduled) are skipped.
    """
    spans = []
    for op_name in instance.bound_ops:
        if op_name in start_times:
            start = start_times[op_name]
            spans.append((start, start + instance.module.latency))
    return sorted(spans)
