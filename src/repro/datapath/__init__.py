"""Datapath model, controller generation and area accounting for synthesized designs."""

from .area import REGISTER_AREA, AreaBreakdown, register_area
from .rtl import Datapath, DatapathError
from .controller import (
    CONTROL_SIGNAL_AREA,
    CONTROLLER_POWER,
    STATE_AREA,
    ControlStep,
    Controller,
    build_controller,
    controller_power_profile,
)

__all__ = [
    "REGISTER_AREA",
    "AreaBreakdown",
    "register_area",
    "Datapath",
    "DatapathError",
    "CONTROL_SIGNAL_AREA",
    "CONTROLLER_POWER",
    "STATE_AREA",
    "ControlStep",
    "Controller",
    "build_controller",
    "controller_power_profile",
]
