#!/usr/bin/env python3
"""Scheduler shoot-out across the whole strategy registry.

Run with::

    python examples/scheduling_comparison.py [benchmark] [latency] [budget]

One :class:`~repro.api.task.SynthesisTask` per registered scheduler, same
(T, P) corner, same pipeline — the comparison the paper's Section 1 makes
informally when contrasting combined scheduling with the classical
two-step approaches.  Because strategies resolve by name, a scheduler you
register yourself (``@SCHEDULERS.register("mine")``) shows up here with
no further changes.
"""

from __future__ import annotations

import sys

from repro import SCHEDULERS, SynthesisTask, run_batch
from repro.reporting.table import render_table

#: Skip the exact engines: the exhaustive search only handles ~12
#: operations, and the ILP — while it does scale to the paper-sized
#: benchmarks (see examples/ilp_quickstart.py) — needs minutes, not
#: seconds, at this (T, P) corner.  The heuristic shoot-out stays fast.
#: ``portfolio`` is skipped too: it is a meta-strategy racing the others,
#: and its record carries scalar metrics only (no schedule to inspect).
SKIP = {"exact", "ilp", "portfolio"}


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "cosine"
    latency = int(sys.argv[2]) if len(sys.argv) > 2 else 19
    budget = float(sys.argv[3]) if len(sys.argv) > 3 else 22.0

    tasks = [
        SynthesisTask(
            graph=benchmark,
            latency=latency,
            power_budget=budget,
            scheduler=scheduler,
            verify=False,  # report violations instead of raising
            label=scheduler,
        )
        for scheduler in SCHEDULERS.names()
        if scheduler not in SKIP
    ]
    records = run_batch(tasks)

    rows = []
    for record in records:
        if not record.feasible:
            rows.append([record.task.scheduler, "-", "-", "-", "-", record.error_type])
            continue
        schedule = record.result.schedule
        rows.append(
            [
                record.task.scheduler,
                schedule.makespan,
                f"{schedule.peak_power:.1f}",
                f"{record.area:g}",
                schedule.makespan <= latency and schedule.peak_power <= budget + 1e-9,
                "",
            ]
        )
    print(
        render_table(
            ["scheduler", "makespan", "peak P", "area", "meets (T, P)", "failure"],
            rows,
            title=f"Scheduler comparison: {benchmark} (T={latency}, P={budget:g})",
        )
    )
    print(
        "\nOnly the power-aware strategies (pasap, engine) respect the budget by\n"
        "construction; the engine additionally minimizes area while binding."
    )


if __name__ == "__main__":
    main()
