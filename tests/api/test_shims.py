"""The legacy entry points must warn and delegate to the task/pipeline API."""

import pytest

from repro.api import Pipeline, SynthesisTask
from repro.synthesis.baseline import naive_synthesis, time_constrained_synthesis
from repro.synthesis.engine import synthesize
from repro.synthesis.explore import synthesize_point


class TestDeprecationWarnings:
    def test_naive_synthesis_warns(self, hal, library):
        with pytest.warns(DeprecationWarning, match="naive_synthesis"):
            naive_synthesis(hal, library)

    def test_time_constrained_synthesis_warns(self, hal, library):
        with pytest.warns(DeprecationWarning, match="time_constrained_synthesis"):
            time_constrained_synthesis(hal, library, latency=17)


class TestDelegation:
    def test_synthesize_equals_task_run(self, hal, library):
        via_shim = synthesize(hal, library, latency=17, max_power=12.0)
        task = SynthesisTask.of(hal, library=library, latency=17, power_budget=12.0)
        via_task = Pipeline.default().run(task)
        assert via_shim.total_area == via_task.total_area
        assert via_shim.peak_power == via_task.peak_power
        assert via_shim.schedule.start_times == via_task.schedule.start_times

    def test_synthesize_records_pipeline_metadata(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        assert result.metadata["library"] == library.name
        assert result.metadata["scheduler"] == "engine"

    def test_naive_synthesis_equals_naive_task(self, hal, library):
        with pytest.warns(DeprecationWarning):
            via_shim = naive_synthesis(hal, library)
        task = SynthesisTask.of(
            hal,
            library=library,
            scheduler="asap",
            binder="naive",
            selector="min_area",
            verify=False,
        )
        via_task = Pipeline.default().run(task)
        assert via_shim.total_area == via_task.total_area
        assert via_shim.schedule.start_times == via_task.schedule.start_times
        assert via_shim.datapath.instance_count() == via_task.datapath.instance_count()

    def test_naive_synthesis_keeps_legacy_surface(self, hal, library):
        with pytest.warns(DeprecationWarning):
            result = naive_synthesis(hal, library)
        assert result.metadata["flow"] == "naive"
        assert "naive: one instance per operation" in result.trace
        assert result.datapath.instance_count() == len(hal.schedulable_operations())

    def test_time_constrained_equals_unbounded_engine_task(self, cosine, library):
        with pytest.warns(DeprecationWarning):
            via_shim = time_constrained_synthesis(cosine, library, latency=15)
        task = SynthesisTask.of(cosine, library=library, latency=15, power_budget=None)
        via_task = Pipeline.default().run(task)
        assert via_shim.total_area == via_task.total_area
        assert via_shim.constraints.power.is_unbounded

    def test_synthesize_point_infeasible_still_none(self, hal, library):
        assert synthesize_point(hal, library, 17, 2.0) is None
        assert synthesize_point(hal, library, 17, 12.0) is not None
