"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import CDFGBuilder
from repro.library import default_library
from repro.suite import ar_cdfg, cosine_cdfg, elliptic_cdfg, fir_cdfg, hal_cdfg


@pytest.fixture
def library():
    """The paper's Table-1 functional-unit library."""
    return default_library()


@pytest.fixture
def hal():
    return hal_cdfg()


@pytest.fixture
def cosine():
    return cosine_cdfg()


@pytest.fixture
def elliptic():
    return elliptic_cdfg()


@pytest.fixture
def fir():
    return fir_cdfg()


@pytest.fixture
def ar():
    return ar_cdfg()


@pytest.fixture
def diamond():
    """A four-operation diamond: in -> (add, mul) -> sub -> out."""
    b = CDFGBuilder("diamond")
    a = b.input("a")
    c = b.input("c")
    left = b.add("left", a, c)
    right = b.mul("right", a, c)
    bottom = b.sub("bottom", left, right)
    b.output("out", bottom)
    return b.build()


@pytest.fixture
def chain():
    """A three-multiplication chain: the narrowest power profile possible."""
    b = CDFGBuilder("chain")
    x = b.input("x")
    m1 = b.mul("m1", x, x)
    m2 = b.mul("m2", m1, x)
    m3 = b.mul("m3", m2, m1)
    b.output("y", m3)
    return b.build()


@pytest.fixture
def wide():
    """Eight independent multiplications: the widest power profile possible."""
    b = CDFGBuilder("wide")
    inputs = [b.input(f"i{k}") for k in range(4)]
    for k in range(8):
        m = b.mul(f"m{k}", inputs[k % 4], inputs[(k + 1) % 4])
        b.output(f"o{k}", m)
    return b.build()
