"""Unit tests for the content-addressed result cache (repro.explore.cache)."""

import json

import pytest

from repro.api import Pipeline, SynthesisTask, run_batch, run_task
from repro.explore import JOURNAL_NAME, ResultCache, load_journal


def hal_task(power=12.0, **kwargs):
    return SynthesisTask(graph="hal", latency=17, power_budget=power, **kwargs)


class TestResultCacheBasics:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = hal_task()
        assert cache.get(task) is None
        record = run_task(task, cache=cache)
        assert not record.cached
        assert cache.stats.misses == 2 and cache.stats.writes == 1

        hit = cache.get(task)
        assert hit is not None and hit.cached
        assert hit.feasible and hit.area == record.area
        assert hit.peak_power == record.peak_power
        assert hit.result is None  # scalars only

    def test_hit_survives_a_fresh_cache_instance(self, tmp_path):
        task = hal_task()
        run_task(task, cache=ResultCache(tmp_path))
        reopened = ResultCache(tmp_path)
        hit = reopened.get(hal_task())  # equal spec, different object
        assert hit is not None and hit.cached
        assert reopened.stats.hits == 1

    def test_infeasible_results_are_cached_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = hal_task(power=2.0)
        record = run_task(task, cache=cache)
        assert not record.feasible
        hit = cache.get(task)
        assert hit is not None and not hit.feasible and hit.cached
        assert hit.error_type == record.error_type

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(12.0), cache=cache)
        assert cache.get(hal_task(13.0)) is None
        assert cache.get(SynthesisTask(graph="hal", latency=18, power_budget=12.0)) is None

    def test_label_does_not_change_the_address(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(label="first"), cache=cache)
        assert cache.get(hal_task(label="second")) is not None

    def test_hit_carries_the_callers_task_not_the_stored_one(self, tmp_path):
        """The address ignores spelling and label, so the stored spec may
        be a differently-spelled twin; the caller must get its own back."""
        cache = ResultCache(tmp_path)
        run_task(hal_task(label="sweep-spelling"), cache=cache)
        mine = hal_task(label="batch-caseA")
        hit = run_task(mine, cache=cache)
        assert hit.cached
        assert hit.task is mine
        assert hit.task.label == "batch-caseA"

    def test_tilde_in_root_is_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = ResultCache("~/repro-cache")
        assert "~" not in str(cache.root)
        assert str(cache.root).startswith(str(tmp_path))

    def test_len_counts_objects_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        run_task(hal_task(12.0), cache=cache)
        run_task(hal_task(13.0), cache=cache)
        assert len(cache) == 2

    def test_corrupt_object_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = hal_task()
        key = cache.put(task, run_task(task))
        path = cache._object_path(key)
        path.write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(task) is None
        assert fresh.stats.misses == 1

    def test_write_only_cache_never_answers(self, tmp_path):
        recorder = ResultCache(tmp_path, read=False)
        task = hal_task()
        first = run_task(task, cache=recorder)
        second = run_task(task, cache=recorder)
        assert not first.cached and not second.cached
        assert recorder.stats.hits == 0
        # but what it recorded is visible to a reading cache
        assert ResultCache(tmp_path).get(task) is not None

    def test_custom_pipeline_bypasses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = hal_task()
        run_task(task, cache=cache, pipeline=Pipeline.default())
        assert cache.stats.lookups == 0 and cache.stats.writes == 0
        assert cache.get(task) is None

    def test_live_override_of_a_named_spec_bypasses_the_cache(self, tmp_path, library):
        """A named graph spec run against a *different* live graph must not
        file its result under the registered benchmark's address."""
        from repro.ir import CDFGBuilder

        builder = CDFGBuilder("hal")  # claims hal's name, isn't hal
        x = builder.input("x")
        builder.output("y", builder.add("a", x, x))
        impostor = builder.build()

        cache = ResultCache(tmp_path)
        task = hal_task()
        record = run_task(task, cdfg=impostor, cache=cache)
        assert record.feasible
        assert cache.stats.writes == 0
        assert cache.get(hal_task()) is None  # the real hal point is unpolluted

    def test_any_live_override_bypasses_the_cache(self, tmp_path, library):
        """Same hazard with an *inline* spec: a mismatched live override
        must never be filed under the spec's content address."""
        from repro.suite import fir_cdfg, hal_cdfg

        inline_hal = SynthesisTask.of(hal_cdfg(), latency=17, power_budget=40.0)
        cache = ResultCache(tmp_path)
        run_task(inline_hal, cdfg=fir_cdfg(), cache=cache)  # fir, not hal
        assert cache.stats.writes == 0
        honest = run_task(
            SynthesisTask.of(hal_cdfg(), latency=17, power_budget=40.0), cache=cache
        )
        assert honest.feasible and not honest.cached

    def test_inline_spec_with_matching_live_objects_still_caches(self, tmp_path, library):
        from repro.suite import hal_cdfg
        from repro.synthesis.explore import probe_point

        cache = ResultCache(tmp_path)
        record = probe_point(hal_cdfg(), library, 17, 12.0, cache=cache)
        assert record.feasible and cache.stats.writes == 1
        assert probe_point(hal_cdfg(), library, 17, 12.0, cache=cache).cached


class TestJournal:
    def test_every_computed_record_is_journaled(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(12.0), cache=cache)
        run_task(hal_task(2.0), cache=cache)  # infeasible
        records = load_journal(tmp_path)
        assert len(records) == 2
        assert sorted(r.feasible for r in records) == [False, True]

    def test_hits_are_not_re_journaled(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(), cache=cache)
        run_task(hal_task(), cache=cache)  # hit
        assert len(load_journal(tmp_path)) == 1

    def test_load_journal_skips_a_torn_tail(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(), cache=cache)
        with open(cache.journal_path, "a") as handle:
            handle.write('{"key": "abc", "record": {"trunc')  # killed mid-write
        records = load_journal(tmp_path)
        assert len(records) == 1

    def test_load_journal_accepts_file_or_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_task(hal_task(), cache=cache)
        assert len(load_journal(tmp_path / JOURNAL_NAME)) == 1
        assert load_journal(tmp_path / "nowhere") == []


def _summary(record):
    return (
        record.feasible,
        record.area,
        record.fu_area,
        record.peak_power,
        record.latency,
        record.backtracks,
        record.error_type,
    )


class TestBatchWithCache:
    BUDGETS = [2.0, 9.0, 12.0, 20.0]

    def tasks(self):
        return [hal_task(p) for p in self.BUDGETS]

    def test_sequential_parity_cold_vs_warm(self, tmp_path):
        plain = run_batch(self.tasks(), keep_results=False)
        cold_cache = ResultCache(tmp_path)
        cold = run_batch(self.tasks(), cache=cold_cache, keep_results=False)
        warm = run_batch(self.tasks(), cache=ResultCache(tmp_path), keep_results=False)
        for a, b, c in zip(plain, cold, warm):
            assert _summary(a) == _summary(b) == _summary(c)
        assert not any(r.cached for r in cold)
        assert all(r.cached for r in warm)

    def test_parallel_parity_with_sequential_cold_and_warm(self, tmp_path):
        sequential = run_batch(self.tasks(), keep_results=False)
        par_cold = run_batch(
            self.tasks(), jobs=2, keep_results=False, cache=ResultCache(tmp_path / "a")
        )
        # same cache dir again: every point comes back from the cache
        par_warm = run_batch(
            self.tasks(), jobs=2, keep_results=False, cache=ResultCache(tmp_path / "a")
        )
        # parallel warm against a cache populated *sequentially*
        seq_cache = ResultCache(tmp_path / "b")
        run_batch(self.tasks(), keep_results=False, cache=seq_cache)
        cross_warm = run_batch(
            self.tasks(), jobs=2, keep_results=False, cache=ResultCache(tmp_path / "b")
        )
        for s, a, b, c in zip(sequential, par_cold, par_warm, cross_warm):
            assert _summary(s) == _summary(a) == _summary(b) == _summary(c)
        assert all(r.cached for r in par_warm)
        assert all(r.cached for r in cross_warm)

    def test_parallel_workers_populate_the_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(self.tasks(), jobs=2, keep_results=False, cache=cache)
        # the parent never computed anything, yet the points are on disk
        assert len(cache) == len(self.BUDGETS)
        assert len(load_journal(tmp_path)) == len(self.BUDGETS)

    def test_warm_parallel_batch_answers_from_the_parent(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(self.tasks(), jobs=2, keep_results=False, cache=cache)
        warm_cache = ResultCache(tmp_path)
        records = run_batch(self.tasks(), jobs=2, keep_results=False, cache=warm_cache)
        assert all(r.cached for r in records)
        assert warm_cache.stats.hits == len(self.BUDGETS)
        assert warm_cache.stats.misses == 0

    def test_duplicate_specs_synthesize_once_in_a_cold_parallel_batch(self, tmp_path):
        twin_a = hal_task(12.0, label="a")
        twin_b = hal_task(12.0, label="b")  # same content address
        other = hal_task(9.0)
        records = run_batch(
            [twin_a, other, twin_b],
            jobs=2,
            keep_results=False,
            cache=ResultCache(tmp_path),
        )
        assert [r.task.label for r in records] == ["a", None, "b"]
        assert records[0].area == records[2].area
        # the twin shares the computed record but was not *resumed*
        assert not any(r.cached for r in records)
        assert len(load_journal(tmp_path)) == 2  # only two points computed

    def test_order_preserved_with_partial_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        # pre-warm only two interior points
        run_task(hal_task(9.0), cache=cache)
        run_task(hal_task(20.0), cache=cache)
        records = run_batch(
            self.tasks(), jobs=2, keep_results=False, cache=ResultCache(tmp_path)
        )
        assert [r.task.power_budget for r in records] == self.BUDGETS
        assert [r.cached for r in records] == [False, True, False, True]
        plain = run_batch(self.tasks(), keep_results=False)
        for a, b in zip(plain, records):
            assert _summary(a) == _summary(b)


class TestObjectFileFormat:
    def test_object_file_is_stable_json_with_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = hal_task()
        key = cache.put(task, run_task(task))
        payload = json.loads(cache._object_path(key).read_text())
        assert payload["key"] == key == task.cache_key()
        assert payload["record"]["feasible"] is True
        assert "result" not in payload["record"]


class TestStoreFacade:
    """The cache is a facade over repro.store — both backends, one policy."""

    def test_columnar_backend_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, backend="columnar")
        assert cache.backend == "columnar"
        task = hal_task()
        record = run_task(task, cache=cache)
        hit = cache.get(task)
        assert hit is not None and hit.cached and hit.area == record.area

    def test_columnar_hit_survives_a_fresh_instance(self, tmp_path):
        run_task(hal_task(), cache=ResultCache(tmp_path, backend="columnar"))
        reopened = ResultCache(tmp_path)  # backend autodetected
        assert reopened.backend == "columnar"
        hit = reopened.get(hal_task())
        assert hit is not None and hit.cached

    def test_columnar_len_is_maintained(self, tmp_path):
        cache = ResultCache(tmp_path, backend="columnar")
        assert len(cache) == 0
        run_task(hal_task(12.0), cache=cache)
        run_task(hal_task(13.0), cache=cache)
        assert len(cache) == 2
        cache.store.compact()
        assert len(cache) == 2

    def test_columnar_journal_kept_identical(self, tmp_path):
        cache = ResultCache(tmp_path, backend="columnar")
        run_task(hal_task(), cache=cache)
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["record"]["feasible"] is True

    def test_record_for_key_memoizes_the_disk_read(self, tmp_path):
        task = hal_task()
        key = ResultCache(tmp_path).put(task, run_task(task))
        cache = ResultCache(tmp_path)
        assert key not in cache._memory
        record = cache.record_for_key(key)
        assert record is not None and record["feasible"] is True
        assert key in cache._memory  # second call never touches the disk
        assert cache.record_for_key(key)["feasible"] is True

    def test_object_path_raises_on_columnar(self, tmp_path):
        from repro.store import StoreError

        cache = ResultCache(tmp_path, backend="columnar")
        run_task(hal_task(), cache=cache)
        with pytest.raises(StoreError):
            cache._object_path(cache.key_for(hal_task()))

    def test_batch_parity_across_backends(self, tmp_path):
        budgets = [9.0, 12.0, 20.0]
        tasks = [hal_task(p) for p in budgets]
        legacy = run_batch(tasks, keep_results=False, cache=ResultCache(tmp_path / "a"))
        columnar = run_batch(
            tasks,
            keep_results=False,
            cache=ResultCache(tmp_path / "b", backend="columnar"),
        )
        for left, right in zip(legacy, columnar):
            assert (left.feasible, left.area) == (right.feasible, right.area)


class TestIterJournal:
    def test_streaming_matches_load_journal(self, tmp_path):
        from repro.explore import iter_journal

        cache = ResultCache(tmp_path)
        run_task(hal_task(9.0), cache=cache)
        run_task(hal_task(12.0), cache=cache)
        streamed = list(iter_journal(tmp_path))
        loaded = load_journal(tmp_path)
        assert len(streamed) == len(loaded) == 2
        for a, b in zip(streamed, loaded):
            assert a.task.power_budget == b.task.power_budget and a.area == b.area

    def test_iter_journal_is_lazy(self, tmp_path):
        from repro.explore import iter_journal

        run_task(hal_task(), cache=ResultCache(tmp_path))
        iterator = iter_journal(tmp_path)
        first = next(iterator)
        assert first.feasible
        assert next(iterator, None) is None

    def test_iter_journal_skips_torn_tail(self, tmp_path):
        from repro.explore import iter_journal

        cache = ResultCache(tmp_path)
        run_task(hal_task(), cache=cache)
        with open(tmp_path / JOURNAL_NAME, "a") as handle:
            handle.write('{"key": "torn')
        assert len(list(iter_journal(tmp_path))) == 1
