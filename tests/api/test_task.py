"""Unit tests for SynthesisTask specs: validation, resolution, round-trips."""

import json

import pytest

from repro.api.task import (
    SynthesisTask,
    TaskError,
    library_from_dict,
    library_to_dict,
    tasks_from_json,
)
from repro.ir.serialize import to_dict as cdfg_to_dict
from repro.synthesis.engine import EngineOptions


class TestValidation:
    def test_graph_must_be_name_or_dict(self):
        with pytest.raises(TaskError):
            SynthesisTask(graph=42)

    def test_latency_and_power_must_be_positive(self):
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency=0)
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency=17, power_budget=-1.0)

    def test_options_must_be_dict(self):
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency=17, options=[1, 2])

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TaskError) as excinfo:
            SynthesisTask.from_dict({"graph": "hal", "lateny": 17})
        assert "lateny" in str(excinfo.value)

    def test_from_dict_requires_graph(self):
        with pytest.raises(TaskError):
            SynthesisTask.from_dict({"latency": 17})

    def test_numeric_strings_are_coerced(self):
        task = SynthesisTask(graph="hal", latency="20", power_budget="12.5")
        assert task.latency == 20 and isinstance(task.latency, int)
        assert task.power_budget == 12.5 and isinstance(task.power_budget, float)

    def test_non_numeric_constraints_raise_task_error(self):
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency="abc")
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency=17, power_budget=[12.0])

    def test_strategy_names_must_be_strings(self):
        with pytest.raises(TaskError):
            SynthesisTask(graph="hal", latency=17, scheduler=3)


class TestRoundTrip:
    def test_json_round_trip_named_graph(self):
        task = SynthesisTask(
            graph="hal",
            latency=17,
            power_budget=12.0,
            scheduler="pasap",
            binder="naive",
            selector="min_area",
            options={"trace": False},
            verify=False,
            label="round-trip",
        )
        restored = SynthesisTask.from_json(task.to_json())
        assert restored == task

    def test_json_round_trip_inline_graph_and_library(self, hal, library):
        task = SynthesisTask.of(hal, library=library, latency=17, power_budget=12.0)
        restored = SynthesisTask.from_json(task.to_json(indent=2))
        assert restored == task
        # The inline specs materialize back into equivalent objects.
        assert restored.resolve_graph().name == hal.name
        assert len(restored.resolve_graph()) == len(hal)
        assert restored.resolve_library().name == library.name
        assert len(restored.resolve_library()) == len(library)

    def test_to_dict_is_json_safe(self, hal, library):
        task = SynthesisTask.of(
            hal, library=library, latency=17, options=EngineOptions(trace=False)
        )
        json.dumps(task.to_dict())  # must not raise


class TestOf:
    def test_engine_options_instance_becomes_plain_dict(self, hal):
        task = SynthesisTask.of(hal, latency=17, options=EngineOptions(delay_area_weight=0.0))
        assert task.options["delay_area_weight"] == 0.0
        assert isinstance(task.options, dict)

    def test_bad_options_type_rejected(self, hal):
        with pytest.raises(TaskError):
            SynthesisTask.of(hal, latency=17, options="trace=False")

    def test_graph_name_for_inline_and_named(self, hal):
        assert SynthesisTask(graph="hal", latency=17).graph_name == "hal"
        inline = SynthesisTask.of(hal, latency=17)
        assert inline.graph_name == hal.name


class TestResolution:
    def test_named_graph_resolves_via_benchmark_registry(self):
        task = SynthesisTask(graph="hal", latency=17)
        assert task.resolve_graph().name == "hal"

    def test_unknown_benchmark_raises_keyerror(self):
        with pytest.raises(KeyError):
            SynthesisTask(graph="not-a-benchmark", latency=17).resolve_graph()

    def test_named_library_resolves_via_registry(self):
        task = SynthesisTask(graph="hal", latency=17, library="single")
        assert "single" in task.resolve_library().name or len(task.resolve_library()) > 0

    def test_inline_graph_round_trip(self, hal):
        task = SynthesisTask(graph=cdfg_to_dict(hal), latency=17)
        assert sorted(task.resolve_graph().operation_names()) == sorted(
            hal.operation_names()
        )


class TestLibraryDict:
    def test_library_round_trip_preserves_modules(self, library):
        restored = library_from_dict(library_to_dict(library))
        assert {m.name for m in restored.modules()} == {m.name for m in library.modules()}
        for module in library.modules():
            twin = restored.module(module.name)
            assert twin.area == module.area
            assert twin.latency == module.latency
            assert twin.power == module.power
            assert twin.supported_ops == module.supported_ops

    def test_malformed_library_dict_raises(self):
        with pytest.raises(TaskError):
            library_from_dict({"modules": [{"name": "x"}]})


class TestBatchFileParsing:
    def test_list_form(self):
        tasks = tasks_from_json('[{"graph": "hal", "latency": 17}]')
        assert len(tasks) == 1 and tasks[0].graph == "hal"

    def test_tasks_and_sweeps_form(self):
        text = json.dumps(
            {
                "tasks": [{"graph": "hal", "latency": 17, "power_budget": 12.0}],
                "sweeps": [
                    {"graph": "hal", "latency": 17, "power_budgets": [10.0, 12.0]}
                ],
            }
        )
        tasks = tasks_from_json(text)
        assert len(tasks) == 3
        assert [t.power_budget for t in tasks[1:]] == [10.0, 12.0]

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(TaskError):
            tasks_from_json('{"task": []}')

    def test_empty_batch_rejected(self):
        with pytest.raises(TaskError):
            tasks_from_json("[]")


class TestCacheKey:
    def base(self, **kwargs):
        return SynthesisTask(graph="hal", latency=17, power_budget=12.0, **kwargs)

    def test_key_is_a_sha256_hex_digest_and_stable(self):
        key = self.base().cache_key()
        assert len(key) == 64 and int(key, 16) >= 0
        assert self.base().cache_key() == key  # fresh instance, same spec

    def test_named_and_inline_spellings_share_one_address(self, hal, library):
        named = self.base()
        inline_graph = SynthesisTask.of(hal, latency=17, power_budget=12.0)
        inline_both = SynthesisTask.of(
            hal, library=library, latency=17, power_budget=12.0
        )
        assert named.cache_key() == inline_graph.cache_key() == inline_both.cache_key()

    def test_operation_and_edge_order_do_not_matter(self, hal):
        shuffled = cdfg_to_dict(hal)
        shuffled["operations"] = list(reversed(shuffled["operations"]))
        shuffled["edges"] = list(reversed(shuffled["edges"]))
        task = SynthesisTask(graph=shuffled, latency=17, power_budget=12.0)
        assert task.cache_key() == self.base().cache_key()

    def test_label_is_excluded_from_the_address(self):
        assert self.base(label="a").cache_key() == self.base(label="b").cache_key()

    def test_every_semantic_field_changes_the_address(self, library):
        baseline = self.base().cache_key()
        variants = [
            SynthesisTask(graph="cosine", latency=17, power_budget=12.0),
            SynthesisTask(graph="hal", latency=18, power_budget=12.0),
            SynthesisTask(graph="hal", latency=17, power_budget=12.5),
            self.base(scheduler="pasap"),
            self.base(binder="naive"),
            self.base(selector="min_area"),
            self.base(options={"delay_area_weight": 2.0}),
            self.base(verify=False),
            SynthesisTask(graph="hal", latency=17, power_budget=12.0, library="single"),
        ]
        keys = [task.cache_key() for task in variants]
        assert baseline not in keys
        assert len(set(keys)) == len(keys)

    def test_structural_graph_change_changes_the_address(self, hal):
        mutated = cdfg_to_dict(hal)
        mutated["edges"] = mutated["edges"][:-1]
        task = SynthesisTask(graph=mutated, latency=17, power_budget=12.0)
        assert task.cache_key() != self.base().cache_key()

    def test_default_options_spellings_share_one_address(self):
        baseline = self.base().cache_key()
        explicit = SynthesisTask.of(
            "hal", latency=17, power_budget=12.0, options=EngineOptions()
        )
        assert explicit.cache_key() == baseline

    def test_unknown_option_key_rejected_at_hash_time(self):
        task = self.base(options={"bogus_option": 1})
        with pytest.raises(TaskError):
            task.cache_key()

    def test_malformed_inline_graph_raises_task_error(self):
        task = SynthesisTask(graph={"name": "x", "operations": [{}], "edges": []},
                             latency=17, power_budget=12.0)
        with pytest.raises(TaskError):
            task.cache_key()
