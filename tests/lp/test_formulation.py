"""Tests for the time-indexed scheduling formulation and its decoders."""

import pytest

from repro.ir.analysis import critical_path_length
from repro.ir.builder import CDFGBuilder
from repro.library.library import default_library
from repro.library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from repro.lp import formulation
from repro.lp.formulation import (
    ILPInfeasibleError,
    ILPLimitError,
    build_schedule_model,
    ilp_schedule,
    minimum_registers,
    schedule_register_usage,
)
from repro.binding.register import register_lower_bound
from repro.scheduling.asap import asap_schedule
from repro.scheduling.alap import alap_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.exact import minimum_latency_under_power

LIBRARY = default_library()
UNBOUNDED = PowerConstraint.unbounded()


def maps_for(cdfg):
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


def two_independent_adds():
    b = CDFGBuilder("pair")
    x = b.const("x")
    y = b.const("y")
    b.add("a1", x, y)
    b.add("a2", x, y)
    return b.build()


class TestBuildModel:
    def test_windows_match_asap_alap(self, diamond):
        delays, powers = maps_for(diamond)
        latency = critical_path_length(diamond, delays) + 2
        model = build_schedule_model(diamond, delays, powers, UNBOUNDED, latency)
        asap = asap_schedule(diamond, delays, powers)
        alap = alap_schedule(diamond, delays, powers, latency)
        for name, (lo, hi) in model.windows.items():
            assert lo == asap.start(name)
            assert hi == alap.start(name)
        # One binary per (operation, start cycle) in the window.
        for name, (lo, hi) in model.windows.items():
            for cycle in range(lo, hi + 1):
                assert (name, cycle) in model.starts

    def test_latency_below_critical_path_is_infeasible_at_build(self, diamond):
        delays, powers = maps_for(diamond)
        latency = critical_path_length(diamond, delays)
        with pytest.raises(ILPInfeasibleError):
            build_schedule_model(diamond, delays, powers, UNBOUNDED, latency - 1)

    def test_size_guard_is_a_limit_not_a_verdict(self, diamond, monkeypatch):
        delays, powers = maps_for(diamond)
        monkeypatch.setattr(formulation, "MAX_START_VARIABLES", 2)
        with pytest.raises(ILPLimitError):
            build_schedule_model(diamond, delays, powers, UNBOUNDED, 10)


class TestIlpSchedule:
    def test_matches_exact_optimum_without_budget(self, diamond):
        delays, powers = maps_for(diamond)
        optimum = minimum_latency_under_power(diamond, delays, powers, UNBOUNDED)
        schedule = ilp_schedule(
            diamond, delays, powers, UNBOUNDED, optimum + 3
        )
        assert schedule.makespan == optimum
        assert schedule.metadata["optimal_makespan"] == optimum

    def test_power_budget_forces_serialization_like_exact(self):
        cdfg = two_independent_adds()
        delays, powers = maps_for(cdfg)
        budget = PowerConstraint(3.0)  # both adds together draw 5.0
        optimum = minimum_latency_under_power(cdfg, delays, powers, budget)
        schedule = ilp_schedule(cdfg, delays, powers, budget, 4)
        assert schedule.makespan == optimum == 2

    def test_schedule_is_precedence_and_power_clean(self, diamond):
        delays, powers = maps_for(diamond)
        budget = PowerConstraint(20.0)
        latency = critical_path_length(diamond, delays) + 2
        schedule = ilp_schedule(diamond, delays, powers, budget, latency)
        assert schedule.respects_precedence()
        assert schedule.peak_power <= 20.0

    def test_infeasible_budget_is_a_proof(self):
        cdfg = two_independent_adds()
        delays, powers = maps_for(cdfg)
        # T=1 forces both adds into the same cycle; P=3 forbids it.
        with pytest.raises(ILPInfeasibleError):
            ilp_schedule(cdfg, delays, powers, PowerConstraint(3.0), 1)

    def test_node_limit_is_inconclusive_not_infeasible(self, diamond):
        delays, powers = maps_for(diamond)
        latency = critical_path_length(diamond, delays) + 2
        with pytest.raises(ILPLimitError):
            ilp_schedule(
                diamond, delays, powers, UNBOUNDED, latency, node_limit=0
            )


class TestRegisterBudget:
    def test_budgeted_schedule_respects_the_budget(self, chain):
        delays, powers = maps_for(chain)
        latency = critical_path_length(chain, delays) + 2
        floor = minimum_registers(chain, delays, powers, latency)
        schedule = ilp_schedule(
            chain, delays, powers, UNBOUNDED, latency, register_budget=floor
        )
        assert schedule_register_usage(schedule) <= floor
        assert schedule.metadata["register_budget"] == floor

    def test_below_the_floor_is_infeasible(self, chain):
        delays, powers = maps_for(chain)
        latency = critical_path_length(chain, delays) + 2
        floor = minimum_registers(chain, delays, powers, latency)
        assert floor > 0
        with pytest.raises(ILPInfeasibleError):
            ilp_schedule(
                chain,
                delays,
                powers,
                UNBOUNDED,
                latency,
                register_budget=floor - 1,
            )

    def test_minimum_registers_never_beats_any_schedule(self, diamond):
        # The optimum over all schedules is <= the usage of any concrete
        # feasible schedule at the same latency.
        delays, powers = maps_for(diamond)
        latency = critical_path_length(diamond, delays) + 1
        floor = minimum_registers(diamond, delays, powers, latency)
        witness = asap_schedule(diamond, delays, powers)
        assert floor <= schedule_register_usage(witness)

    def test_pessimistic_model_counts_edges(self, diamond):
        delays, powers = maps_for(diamond)
        schedule = asap_schedule(diamond, delays, powers)
        optimistic = schedule_register_usage(schedule, "optimistic")
        pessimistic = schedule_register_usage(schedule, "pessimistic")
        # Per-edge counting can only over-approximate per-value counting.
        assert pessimistic >= optimistic

    def test_optimistic_usage_matches_the_binding_layer(self, diamond, chain):
        for cdfg in (diamond, chain):
            delays, powers = maps_for(cdfg)
            schedule = asap_schedule(cdfg, delays, powers)
            assert schedule_register_usage(schedule) == register_lower_bound(schedule)

    def test_unknown_memory_model_rejected(self, diamond):
        delays, powers = maps_for(diamond)
        schedule = asap_schedule(diamond, delays, powers)
        with pytest.raises(ValueError):
            schedule_register_usage(schedule, "hopeful")
