"""The unified task/pipeline API for power-constrained synthesis.

This package is the single entry point the CLI, the experiment drivers
and the batch executor share:

* :class:`~repro.api.task.SynthesisTask` — a declarative,
  JSON-serializable description of one synthesis run (graph, library,
  constraints, strategy names, engine options),
* :class:`~repro.api.pipeline.Pipeline` — a composable sequence of named
  passes (module selection → scheduling → binding → datapath →
  power analysis) resolving strategies through the string-keyed
  registries in :mod:`repro.registries`,
* :func:`~repro.api.batch.run_batch` / :class:`~repro.api.batch.Sweep` —
  a ``concurrent.futures``-based executor running many tasks in parallel
  with structured per-task results.

Quickstart::

    from repro.api import SynthesisTask, run_task

    task = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
    record = run_task(task)
    print(record.result.describe())
"""

from ..registries import (
    BINDERS,
    LIBRARIES,
    SCHEDULERS,
    SELECTORS,
    DuplicateStrategyError,
    StrategyRegistry,
    UnknownStrategyError,
)
from .task import SynthesisTask, TaskError, library_from_dict, library_to_dict
from .pipeline import Pipeline, PipelineContext, PipelineError
from .batch import BatchResults, BatchSummary, Sweep, TaskResult, run_batch, run_task

# Importing the strategies module registers every built-in scheduler,
# binder, selector and library with the registries above.
from . import strategies as _strategies  # noqa: F401  (import for side effect)

__all__ = [
    "SynthesisTask",
    "TaskError",
    "library_from_dict",
    "library_to_dict",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "Sweep",
    "TaskResult",
    "BatchResults",
    "BatchSummary",
    "run_batch",
    "run_task",
    "StrategyRegistry",
    "UnknownStrategyError",
    "DuplicateStrategyError",
    "SCHEDULERS",
    "BINDERS",
    "SELECTORS",
    "LIBRARIES",
]
