"""Baseline synthesis flows used for comparison.

Two baselines bracket the paper's combined algorithm:

* :func:`time_constrained_synthesis` — the same greedy engine run with an
  *unbounded* power budget.  This is the classical partial-clique
  synthesis of Jou et al.; its schedule is free to stack power into early
  cycles, producing the "undesired" profile of Figure 1 (top).  Its area
  is also the asymptote the Figure-2 curves approach as ``P`` grows.
* :func:`naive_synthesis` — no sharing at all: every operation gets its
  own functional unit (the cheapest module for its type) and the plain
  ASAP schedule.  This is the fastest, largest and most power-spiky
  design; useful as an upper bound on area and peak power in tests and
  examples.

.. deprecated:: 1.1
    Both functions are thin shims over the :class:`~repro.api.task.SynthesisTask`
    / :class:`~repro.api.pipeline.Pipeline` API and will go away once the
    callers migrate.  ``time_constrained_synthesis(cdfg, lib, T)`` is
    ``SynthesisTask.of(cdfg, library=lib, latency=T)`` (engine scheduler,
    no power budget); ``naive_synthesis(cdfg, lib)`` is
    ``SynthesisTask.of(cdfg, library=lib, scheduler="asap",
    binder="naive", selector="min_area", verify=False)``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from .engine import EngineOptions
from .result import SynthesisResult


def time_constrained_synthesis(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    options: Optional[EngineOptions] = None,
) -> SynthesisResult:
    """Area-minimizing synthesis under a latency bound only (no power cap).

    .. deprecated:: 1.1
        Use a :class:`~repro.api.task.SynthesisTask` with
        ``power_budget=None`` instead.
    """
    warnings.warn(
        "time_constrained_synthesis() is deprecated; build a SynthesisTask "
        "with power_budget=None and run it through the Pipeline instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api.pipeline import Pipeline
    from ..api.task import SynthesisTask

    task = SynthesisTask.of(
        cdfg, library=library, latency=latency, power_budget=None, options=options
    )
    return Pipeline.default().run(task, cdfg=cdfg, library=library)


def naive_synthesis(
    cdfg: CDFG,
    library: FULibrary,
    latency: Optional[int] = None,
) -> SynthesisResult:
    """One functional unit per operation, ASAP schedule, no sharing.

    Args:
        cdfg: Graph to synthesize.
        library: Technology library.
        latency: Optional latency bound recorded on the result (the ASAP
            makespan is used when omitted).  The bound is not enforced; a
            :class:`~repro.scheduling.schedule.ScheduleError` from
            ``result.verify()`` will flag a violation.

    Returns:
        A :class:`SynthesisResult` with maximal area and an unconstrained
        power profile.

    .. deprecated:: 1.1
        Use a :class:`~repro.api.task.SynthesisTask` with
        ``scheduler="asap"``, ``binder="naive"``, ``selector="min_area"``
        instead.
    """
    warnings.warn(
        "naive_synthesis() is deprecated; build a SynthesisTask with "
        "scheduler='asap', binder='naive', selector='min_area' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api.pipeline import Pipeline
    from ..api.task import SynthesisTask

    task = SynthesisTask.naive(cdfg.name, library=library.name, latency=latency)
    result = Pipeline.default().run(task, cdfg=cdfg, library=library)
    result.trace.append("naive: one instance per operation")
    result.metadata.setdefault("flow", "naive")
    return result
