"""Concurrent multi-process writer parity against the legacy backend.

Several worker processes hammer one columnar store (interleaved appends,
one mid-stream compaction) while the same records land in a legacy store
from the parent — afterwards both must answer identically.
"""

import json
import multiprocessing

import pytest

from repro.store import ColumnarStore, LegacyStore, StoreQuery

from .conftest import make_payload

WORKERS = 4
PER_WORKER = 30


def _write_slice(root, worker):
    """One worker process: append its slice of records, compact halfway."""
    store = ColumnarStore(root)
    for index in range(worker * PER_WORKER, (worker + 1) * PER_WORKER):
        key, payload = make_payload(index, family=f"fam{index % 3}", power=float(index % 7))
        store.put(key, payload)
        if worker == 0 and index == PER_WORKER // 2:
            store.compact()  # races the other writers on purpose
    return worker


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("concurrent")
    columnar_root = root / "col"
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(WORKERS) as pool:
        done = pool.starmap(
            _write_slice, [(str(columnar_root), worker) for worker in range(WORKERS)]
        )
    assert sorted(done) == list(range(WORKERS))

    legacy = LegacyStore(root / "leg")
    for index in range(WORKERS * PER_WORKER):
        key, payload = make_payload(index, family=f"fam{index % 3}", power=float(index % 7))
        legacy.put(key, payload)
    return ColumnarStore(columnar_root), legacy


class TestMultiProcessParity:
    def test_no_record_lost(self, stores):
        columnar, legacy = stores
        assert columnar.count() == legacy.count() == WORKERS * PER_WORKER
        assert sorted(columnar.keys()) == sorted(legacy.keys())

    def test_records_bit_identical(self, stores):
        columnar, legacy = stores
        for key in legacy.keys():
            left = columnar.get(key)["record"]
            right = legacy.get(key)["record"]
            assert json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)

    def test_queries_agree(self, stores):
        columnar, legacy = stores
        for query in (
            StoreQuery(family="fam1"),
            StoreQuery(power=(2.0, 4.0)),
            StoreQuery(family="fam0", power=(None, 3.0)),
        ):
            assert sorted(r.key for r in columnar.scan(query)) == sorted(
                r.key for r in legacy.scan(query)
            )

    def test_final_compaction_changes_no_answer(self, stores):
        columnar, legacy = stores
        columnar.compact()
        reopened = ColumnarStore(columnar.root)
        assert reopened.count() == WORKERS * PER_WORKER
        assert sorted(reopened.keys()) == sorted(legacy.keys())
