"""Exact (exhaustive) power-constrained scheduling for tiny graphs.

The pasap/palap schedulers are heuristics; for scientific hygiene this
module provides a small branch-and-bound scheduler that enumerates start
times for graphs of up to ~12 operations and finds

* the minimum makespan achievable under a power budget
  (:func:`minimum_latency_under_power`), and
* whether any schedule exists under a (T, P) pair
  (:func:`exists_schedule`).

The test-suite uses it to quantify the heuristic's optimality gap on
random small graphs, and the documentation uses it to justify treating a
collapsed pasap/palap window as an infeasibility *signal* rather than a
proof.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.cdfg import CDFG
from .constraints import PowerConstraint
from .schedule import Schedule, add_to_profile, profile_allows

#: Default safety cap on the number of operations the exhaustive search
#: accepts; callers can raise it per call (``max_operations=``) or per
#: engine (``EngineOptions.exact_max_operations``).
MAX_OPERATIONS = 12


class ExactSchedulerError(Exception):
    """Raised when exhaustive search fails (size cap or infeasibility)."""


class ExactSizeError(ExactSchedulerError):
    """The graph exceeds the exhaustive-search size cap.

    A *capacity* verdict, not a scheduling one: the differential harness
    keys on this type to tell "too big to try" apart from a genuine
    infeasibility result.
    """


def _check_size(cdfg: CDFG, max_operations: int) -> None:
    count = len(cdfg.schedulable_operations())
    if count > max_operations:
        raise ExactSizeError(
            f"exact scheduling limited to {max_operations} operations, got {count}"
        )


def _tail_lengths(
    cdfg: CDFG, delays: Mapping[str, int]
) -> Dict[str, int]:
    """Longest delay chain from each operation (inclusive) to any sink.

    ``tail[v]`` is a *dominance bound*: any schedule that starts ``v`` at
    cycle ``t`` finishes no earlier than ``t + tail[v]`` — the chain of
    successors below ``v`` must run after it, back to back at best.  The
    search uses it to discard every candidate start time whose best-case
    completion already matches the incumbent.
    """
    tail: Dict[str, int] = {}
    for name in cdfg.reverse_topological_order():
        longest_successor = 0
        for succ in cdfg.successors(name):
            longest_successor = max(longest_successor, tail[succ])
        tail[name] = delays[name] + longest_successor
    return tail


def _energy_lower_bound(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    tail: Mapping[str, int],
) -> int:
    """Provable minimum makespan of *any* schedule under the budget.

    The larger of the critical-path length and the total-energy bound
    ``ceil(Σ power·delay / P)`` (the full computation's energy has to
    fit under the per-cycle cap).  Once the incumbent reaches this value
    the branch-and-bound can stop: no unexplored branch improves on it.
    """
    critical_path = max(tail.values(), default=0)
    if power.is_unbounded:
        return critical_path
    total_energy = sum(delays[n] * powers[n] for n in cdfg.operation_names())
    if total_energy <= 0:
        return critical_path
    # profile_allows admits per-cycle power up to max_power + tolerance,
    # so bound against that effective cap (and shave an epsilon) to keep
    # the bound strictly on the sound side of float wobble.
    effective_cap = power.max_power + power.tolerance
    return max(critical_path, math.ceil(total_energy / effective_cap - 1e-9))


def _search(
    cdfg: CDFG,
    order: List[str],
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    horizon: int,
    index: int,
    start: Dict[str, int],
    profile: List[float],
    best: List[Optional[int]],
    tail: Mapping[str, int],
    lower_bound: int,
) -> None:
    """Depth-first search over start times in a fixed topological order.

    ``best`` is a two-slot cell: ``best[0]`` holds the incumbent makespan
    and ``best[1]`` the start-time map achieving it.

    Two sound prunes keep the enumeration away from provably-worse
    branches without ever changing which improving schedules are found
    (so the incumbent sequence — and the returned schedule — is
    identical to the unpruned search):

    * the memoized **tail bound** ``candidate + tail[name] >= best``
      cuts a candidate whose downstream chain alone already reaches the
      incumbent makespan, and
    * the precomputed **energy/critical-path lower bound** stops the
      whole search as soon as the incumbent provably cannot be beaten.
    """
    if best[0] is not None and best[0] <= lower_bound:
        return
    if index == len(order):
        makespan = max(
            (start[n] + delays[n] for n in start), default=0
        )
        if best[0] is None or makespan < best[0]:
            best[0] = makespan
            best[1] = dict(start)
        return

    name = order[index]
    data_ready = 0
    for pred in cdfg.predecessors(name):
        if pred in start:
            data_ready = max(data_ready, start[pred] + delays[pred])

    op_delay = delays[name]
    op_power = powers[name]
    op_tail = tail[name]
    for candidate in range(data_ready, horizon - op_delay + 1):
        # Prune: the dependence chain below this operation alone already
        # finishes no earlier than the incumbent makespan, and later
        # candidates only finish later.
        if best[0] is not None and candidate + op_tail >= best[0]:
            break
        if op_power > 0 and not profile_allows(profile, candidate, op_delay, op_power, power):
            continue
        start[name] = candidate
        if op_power > 0:
            add_to_profile(profile, candidate, op_delay, op_power)
        _search(
            cdfg, order, delays, powers, power, horizon, index + 1,
            start, profile, best, tail, lower_bound,
        )
        if op_power > 0:
            for cycle in range(candidate, candidate + op_delay):
                profile[cycle] -= op_power
        del start[name]


def minimum_latency_under_power(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    horizon: Optional[int] = None,
    max_operations: int = MAX_OPERATIONS,
) -> Optional[int]:
    """Smallest makespan of any schedule meeting the power budget.

    Returns ``None`` when no schedule exists within the search horizon
    (which only happens if a single operation exceeds the budget).

    Raises:
        ExactSizeError: if the graph has more than ``max_operations``
            schedulable operations (default :data:`MAX_OPERATIONS`).
    """
    _check_size(cdfg, max_operations)
    operations = [n for n in cdfg.topological_order()]
    if horizon is None:
        horizon = sum(delays[n] for n in operations) + 1
    best: List = [None, None]
    tail = _tail_lengths(cdfg, delays)
    lower_bound = _energy_lower_bound(cdfg, delays, powers, power, tail)
    _search(
        cdfg,
        operations,
        delays,
        powers,
        power,
        horizon,
        0,
        {},
        [],
        best,
        tail,
        lower_bound,
    )
    return best[0]


def exists_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    max_operations: int = MAX_OPERATIONS,
) -> bool:
    """True if some schedule meets both the power budget and the latency bound."""
    best = minimum_latency_under_power(
        cdfg, delays, powers, power, horizon=latency, max_operations=max_operations
    )
    return best is not None and best <= latency


def exact_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    label: str = "exact",
    max_operations: int = MAX_OPERATIONS,
) -> Schedule:
    """Makespan-optimal schedule under ``(latency, power)`` by exhaustive search.

    Raises:
        ExactSizeError: when the graph exceeds ``max_operations``.
        ExactSchedulerError: when no schedule exists within the latency bound.
    """
    _check_size(cdfg, max_operations)
    order = list(cdfg.topological_order())
    best: List = [None, None]
    tail = _tail_lengths(cdfg, delays)
    lower_bound = _energy_lower_bound(cdfg, delays, powers, power, tail)
    _search(
        cdfg, order, delays, powers, power, latency, 0, {}, [], best,
        tail, lower_bound,
    )
    if best[0] is None or best[0] > latency:
        raise ExactSchedulerError(
            f"no schedule for {cdfg.name!r} meets T={latency} under the power budget"
        )
    return Schedule(
        cdfg=cdfg,
        start_times=dict(best[1]),
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"optimal_makespan": best[0], "latency_bound": latency},
    )


def optimality_gap(
    heuristic: Schedule,
    power: PowerConstraint,
) -> Optional[float]:
    """Relative makespan gap of a heuristic schedule vs. the exact optimum.

    Returns ``(heuristic - optimal) / optimal`` or ``None`` when the exact
    search finds no schedule (should not happen for feasible heuristics).
    """
    # The heuristic schedule is itself feasible, so the optimum is never
    # worse than its makespan; bounding the search horizon accordingly
    # keeps the exhaustive enumeration tractable.
    optimal = minimum_latency_under_power(
        heuristic.cdfg,
        heuristic.delays,
        heuristic.powers,
        power,
        horizon=heuristic.makespan,
    )
    if optimal is None or optimal == 0:
        return None
    return (heuristic.makespan - optimal) / optimal
