"""Serving-path throughput — cold vs. warm jobs-per-second over HTTP.

The serving layer's pitch mirrors the cache's: content-identical
requests from different clients synthesize once, and warm requests are
answered in cache-lookup time.  This module measures that claim on the
full wire path — HTTP request → persistent queue → worker pool →
``run_task`` → shared :class:`~repro.explore.ResultCache` → HTTP
response — not on in-process shortcuts:

* ``test_serve_throughput[cold]`` submits a fresh batch to a server
  with an empty cache and waits for every certified record,
* ``test_serve_throughput[warm]`` re-submits the identical batch to the
  same server (every job a cache hit),
* ``test_warm_serving_is_10x_cold_throughput`` asserts the contract:
  warm sustained jobs/second at least 10× cold, with zero synthesis
  runs during the warm pass.

Record the pair into the repository's benchmark history with::

    python benchmarks/record.py --bench bench_serve_throughput \
        --history BENCH_scalability.json --label serve-throughput

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import time

import pytest

from repro.api.pipeline import Pipeline
from repro.ir.analysis import critical_path_length
from repro.ir.serialize import to_dict
from repro.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays
from repro.serve import Client, start_server
from repro.suite.generators import GeneratorConfig, random_cdfg

WORKERS = 4


def _inline_case(seed: int, operations: int = 80) -> dict:
    """One inline-CDFG task spec: a seeded 80-op layered graph at cp + 8.

    Inline graphs keep cold throughput synthesis-bound (so the warm/cold
    ratio measures the cache, not HTTP overhead) and exercise the
    submit-a-full-CDFG-over-the-wire path the named benchmarks skip.
    """
    cdfg = random_cdfg(
        GeneratorConfig(
            operations=operations,
            inputs=4,
            levels=max(3, operations // 6),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=3,
            seed=seed,
        )
    )
    selection = MinPowerSelection().select(cdfg, default_library())
    latency = critical_path_length(cdfg, selection_delays(selection, cdfg)) + 8
    return {"graph": to_dict(cdfg), "latency": latency, "power_budget": 30.0}


#: The served batch: ten seeded 80-op inline graphs plus the paper's two
#: big benchmarks across budgets — 20 jobs, cold cost dominated by real
#: synthesis work.
BATCH = (
    [_inline_case(seed) for seed in range(10)]
    + [
        {"graph": "elliptic", "latency": 30, "power_budget": float(p)}
        for p in (30, 50, 70, 100, 150)
    ]
    + [
        {"graph": "cosine", "latency": 19, "power_budget": float(p)}
        for p in (20, 30, 40, 60, 100)
    ]
)


def submit_and_drain(client: Client) -> float:
    """Submit the batch, wait for every job; return sustained jobs/sec."""
    started = time.perf_counter()
    jobs = client.submit(BATCH)
    final = client.wait(jobs, timeout=300, poll=0.002)
    elapsed = time.perf_counter() - started
    assert all(job["state"] == "done" for job in final)
    return len(final) / elapsed


@pytest.mark.parametrize("state", ["cold", "warm"])
def test_serve_throughput(benchmark, state, tmp_path):
    """Wall-clock of one served batch, cold vs. warm cache."""
    with start_server(workers=WORKERS, state_dir=tmp_path / state) as handle:
        client = Client(handle.url)
        if state == "warm":
            submit_and_drain(client)  # populate the cache, outside the timer
        benchmark.pedantic(
            lambda: submit_and_drain(client),
            rounds=3 if state == "warm" else 1,
            iterations=1,
        )


def test_warm_serving_is_10x_cold_throughput(tmp_path):
    """Warm serving sustains >= 10x the cold jobs-per-second, without a
    single synthesis run."""
    calls = {"count": 0}
    original = Pipeline.run

    def counting_run(self, *args, **kwargs):
        calls["count"] += 1
        return original(self, *args, **kwargs)

    Pipeline.run = counting_run
    try:
        with start_server(workers=WORKERS, state_dir=tmp_path / "serve") as handle:
            client = Client(handle.url)
            cold_rate = submit_and_drain(client)
            cold_calls = calls["count"]
            assert cold_calls == len(BATCH), "cold pass synthesizes every job once"

            warm_rate = submit_and_drain(client)
            assert calls["count"] == cold_calls, "warm pass must not synthesize"

            stats = client.stats()
            assert stats["summary"]["computed"] == len(BATCH)
            assert stats["summary"]["cache_hits"] == len(BATCH)
    finally:
        Pipeline.run = original

    assert warm_rate >= 10 * cold_rate, (
        f"warm serving must be >=10x cold throughput: "
        f"cold={cold_rate:.1f} warm={warm_rate:.1f} jobs/s "
        f"({warm_rate / cold_rate:.1f}x)"
    )
    print(
        f"\nserve throughput: cold {cold_rate:.1f} jobs/s, "
        f"warm {warm_rate:.1f} jobs/s ({warm_rate / cold_rate:.1f}x)"
    )
