"""Structural validation of CDFGs.

A CDFG handed to the schedulers must satisfy a handful of structural
rules; violating them would make the scheduling results meaningless (or
crash deep inside an algorithm with an obscure error).  The rules are:

1. The graph is a DAG (enforced incrementally by :class:`CDFG.add_edge`,
   re-checked here).
2. Input operations have no predecessors; output operations have no
   successors and exactly one predecessor.
3. Binary arithmetic operations (``+ - * > <``) have at most two
   predecessors (constants may be folded, so fewer is allowed) and at
   least one.
4. Every non-virtual, non-input operation is reachable from at least one
   input or constant, i.e. it has a defined data-ready time.
5. Names are unique (guaranteed by construction, re-checked for graphs
   deserialized from external sources).
"""

from __future__ import annotations

from typing import List

import networkx as nx

from .cdfg import CDFG, CDFGError
from .operation import OpType

#: Maximum number of data operands for a binary arithmetic operation.
_MAX_ARITH_ARITY = 2


class ValidationError(CDFGError):
    """Raised when a CDFG violates a structural rule."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def collect_problems(cdfg: CDFG) -> List[str]:
    """Return a list of human-readable structural problems (empty if valid)."""
    problems: List[str] = []

    if not nx.is_directed_acyclic_graph(cdfg.graph):
        problems.append("graph contains a cycle")

    for name in cdfg.operation_names():
        op = cdfg.operation(name)
        in_degree = sum(cdfg.edge_multiplicity(p, name) for p in cdfg.predecessors(name))
        out_degree = cdfg.graph.out_degree(name)

        if op.optype is OpType.INPUT and in_degree > 0:
            problems.append(f"input operation {name!r} has predecessors")
        if op.optype is OpType.CONST and in_degree > 0:
            problems.append(f"constant operation {name!r} has predecessors")
        if op.optype is OpType.OUTPUT:
            if out_degree > 0:
                problems.append(f"output operation {name!r} has successors")
            if in_degree != 1:
                problems.append(
                    f"output operation {name!r} must have exactly one operand, has {in_degree}"
                )
        if op.is_arithmetic:
            if in_degree == 0:
                problems.append(f"arithmetic operation {name!r} has no operands")
            if in_degree > _MAX_ARITH_ARITY:
                problems.append(
                    f"arithmetic operation {name!r} has {in_degree} operands "
                    f"(max {_MAX_ARITH_ARITY})"
                )

    # Dangling arithmetic results are suspicious (dead code); allowed but
    # reachability from a source is required.
    sources = {
        n
        for n in cdfg.operation_names()
        if cdfg.operation(n).optype in (OpType.INPUT, OpType.CONST)
        or cdfg.graph.in_degree(n) == 0
    }
    if sources:
        reachable = set(sources)
        for src in sources:
            reachable |= nx.descendants(cdfg.graph, src)
        unreachable = [n for n in cdfg.operation_names() if n not in reachable]
        if unreachable:
            problems.append(f"operations unreachable from any source: {sorted(unreachable)}")

    return problems


def validate_cdfg(cdfg: CDFG) -> CDFG:
    """Validate ``cdfg``; raise :class:`ValidationError` on any problem.

    Returns the graph unchanged so the call can be chained.
    """
    problems = collect_problems(cdfg)
    if problems:
        raise ValidationError(problems)
    return cdfg


def is_valid(cdfg: CDFG) -> bool:
    """True if the graph passes all structural checks."""
    return not collect_problems(cdfg)
