"""Tests for the adaptive frontier refiner (repro.explore.refine)."""

import math

import pytest

from repro.explore import AdaptiveSweepResult, ResultCache, adaptive_power_sweep
from repro.synthesis.explore import (
    SweepResult,
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
)

RESOLUTION = 2.0

#: (fixture name, latency, power cap) — the acceptance benchmarks.
CASES = [
    ("hal", 17, 60.0),
    ("elliptic", 19, 60.0),
    ("fir", 12, 100.0),
]


def dense_grid(p_min, cap, resolution):
    """A fixed grid at least as fine as ``resolution``."""
    steps = max(2, math.ceil((cap - p_min) / resolution) + 1)
    return default_power_grid(p_min, cap, steps)


class TestFrontierReproduction:
    @pytest.mark.parametrize("bench,latency,cap", CASES)
    def test_matches_dense_grid_with_fewer_synthesis_calls(
        self, bench, latency, cap, request, library
    ):
        cdfg = request.getfixturevalue(bench)
        p_min = minimum_feasible_power(cdfg, library, latency)
        grid = dense_grid(p_min, cap, RESOLUTION)
        dense = power_area_sweep(cdfg, library, latency, grid, cumulative_best=True)
        adaptive = adaptive_power_sweep(
            cdfg,
            library,
            latency,
            p_min=p_min,
            p_max=cap,
            resolution=RESOLUTION,
            cumulative_best=True,
        )
        # strictly fewer synthesis runs than the dense grid
        assert adaptive.synthesis_calls < len(grid)
        assert adaptive.synthesis_calls == adaptive.probes  # no cache: all real
        # the dense frontier is reproduced at every dense budget
        for point in dense.points:
            if point.feasible:
                assert adaptive.frontier_area(point.power_budget) == point.area

    @pytest.mark.parametrize("bench,latency,cap", CASES)
    def test_no_frontier_step_wider_than_resolution(
        self, bench, latency, cap, request, library
    ):
        cdfg = request.getfixturevalue(bench)
        adaptive = adaptive_power_sweep(
            cdfg, library, latency, p_max=cap, resolution=RESOLUTION
        )
        for left, right in zip(adaptive.points, adaptive.points[1:]):
            changed = left.feasible != right.feasible or (
                left.feasible and abs(left.area - right.area) > 1e-6
            )
            if changed:
                assert right.power_budget - left.power_budget <= RESOLUTION + 1e-9


class TestRefinerShape:
    def test_result_is_a_sweep_result(self, hal, library):
        sweep = adaptive_power_sweep(hal, library, 17, p_max=40.0, resolution=4.0)
        assert isinstance(sweep, SweepResult)
        assert isinstance(sweep, AdaptiveSweepResult)
        assert sweep.benchmark == "hal" and sweep.latency_bound == 17
        budgets = [p.power_budget for p in sweep.points]
        assert budgets == sorted(budgets)
        assert sweep.feasible_points()
        assert sweep.resolution == 4.0
        assert sweep.probes == len(sweep.points)

    def test_cumulative_best_is_monotone(self, hal, library):
        sweep = adaptive_power_sweep(
            hal, library, 17, p_max=60.0, resolution=2.0, cumulative_best=True
        )
        assert sweep.is_monotone_non_increasing()

    def test_feasibility_boundary_is_pinned_to_resolution(self, hal, library):
        """Probing from below the true minimum power localizes the
        feasibility edge within the requested resolution."""
        sweep = adaptive_power_sweep(
            hal, library, 17, p_min=5.0, p_max=30.0, resolution=1.0
        )
        infeasible = [p for p in sweep.points if not p.feasible]
        feasible = [p for p in sweep.points if p.feasible]
        assert infeasible and feasible
        edge = feasible[0].power_budget - infeasible[-1].power_budget
        assert 0 < edge <= 1.0 + 1e-9

    def test_degenerate_range_collapses_to_one_probe(self, hal, library):
        sweep = adaptive_power_sweep(
            hal, library, 17, p_min=20.0, p_max=10.0, resolution=1.0
        )
        assert [p.power_budget for p in sweep.points] == [20.0]

    def test_seed_budgets_are_probed(self, hal, library):
        sweep = adaptive_power_sweep(
            hal,
            library,
            17,
            p_min=9.0,
            p_max=40.0,
            resolution=4.0,
            seed_budgets=[15.0, 99.0],  # out-of-range seeds are dropped
        )
        budgets = [p.power_budget for p in sweep.points]
        assert 15.0 in budgets
        assert all(9.0 <= b <= 40.0 for b in budgets)

    def test_resolution_below_budget_rounding_rejected(self, hal, library):
        """The step-width guarantee cannot be honored below two rounding
        quanta, so such resolutions are an error, not a silent violation."""
        for bad in (0.0, -1.0, 0.0005, 0.001):
            with pytest.raises(ValueError):
                adaptive_power_sweep(hal, library, 17, resolution=bad)

    def test_figure2_adaptive_rejects_parallel_jobs(self):
        from repro.reporting.experiments import figure2_experiment

        with pytest.raises(ValueError):
            figure2_experiment(cases=[("hal", 17)], adaptive=True, jobs=4)

    def test_no_budget_synthesizes_twice_even_without_a_cache(
        self, hal, library, monkeypatch
    ):
        """The p_min bisection's final probe doubles as the refiner's low
        endpoint; synthesis_calls reports every real pipeline run."""
        from repro.api.pipeline import Pipeline

        synthesized = []
        original = Pipeline.run

        def counting(self, task, cdfg=None, library=None):
            synthesized.append(task.power_budget)
            return original(self, task, cdfg=cdfg, library=library)

        monkeypatch.setattr(Pipeline, "run", counting)
        sweep = adaptive_power_sweep(hal, library, 17, p_max=40.0, resolution=4.0)
        assert len(synthesized) == len(set(synthesized))
        assert sweep.synthesis_calls == len(synthesized)
        assert sweep.synthesis_calls > sweep.probes  # bisection cost included


class TestRefinerCaching:
    def test_refined_rerun_is_free(self, hal, library, tmp_path):
        cache = ResultCache(tmp_path)
        first = adaptive_power_sweep(
            hal, library, 17, p_max=40.0, resolution=2.0, cache=cache
        )
        # synthesis_calls reports the *whole* cost, including the internal
        # minimum-power bisection (whose final probe doubles as the
        # refiner's low endpoint, so it is never synthesized twice)
        assert first.synthesis_calls > first.probes - 1 > 0
        second = adaptive_power_sweep(
            hal, library, 17, p_max=40.0, resolution=2.0, cache=ResultCache(tmp_path)
        )
        assert second.synthesis_calls == 0
        assert second.probes == first.probes
        assert [(p.power_budget, p.area) for p in second.points] == [
            (p.power_budget, p.area) for p in first.points
        ]

    def test_dense_sweep_warms_the_refiner(self, hal, library, tmp_path):
        cache = ResultCache(tmp_path)
        p_min = minimum_feasible_power(hal, library, 17, cache=cache)
        power_area_sweep(
            hal, library, 17, default_power_grid(p_min, 40.0, 16), cache=cache
        )
        refined = adaptive_power_sweep(
            hal,
            library,
            17,
            p_min=p_min,
            p_max=40.0,
            resolution=2.0,
            cache=ResultCache(tmp_path),
        )
        # bisection midpoints of [p_min, 40] coincide with grid points only
        # rarely, but the endpoints always hit
        assert refined.synthesis_calls < refined.probes
