"""Tests for the documentation layer (docs/)."""
