"""The serving layer: a concurrent synthesis service over HTTP.

``repro.serve`` turns the batch/cache/verify stack into a long-lived
process that accepts work over the wire — the piece that makes the
repository a *service* rather than a toolbox:

* :class:`~repro.serve.queue.JobQueue` — a persistent, crash-tolerant
  priority queue of accepted jobs (append-only JSONL event log; replay
  requeues work a dead process left in flight; a configurable depth
  bound turns overload into :class:`QueueFullError` backpressure),
* :class:`~repro.serve.service.SynthesisService` — a worker tier
  executing jobs through :func:`~repro.api.batch.run_task` against one
  shared :class:`~repro.explore.cache.ResultCache`.  Workers are child
  *processes* by default (:mod:`~repro.serve.workers`), so CPU-bound
  synthesis scales past the GIL; a crashed child is detected, its job
  requeued, its slot respawned.  Single-flight is enforced at two
  levels: in-process per-key claims inside one service, and
  store-level claim files (:mod:`repro.store.claims`) across *any*
  processes sharing a cache directory,
* :class:`~repro.serve.http.SynthesisServer` / :func:`start_server` —
  a selector-based single-threaded JSON front (``POST /tasks``,
  ``GET /jobs/<id>``, ``GET /results/<key>``, ``GET /healthz``,
  ``GET /stats``) that holds thousands of idle pollers on one thread
  and answers queue overload with ``429 + Retry-After``,
* :class:`~repro.serve.client.Client` — a small blocking client with
  split connect/read timeouts and bounded exponential backoff on
  429/5xx, used by ``repro submit``, the examples and the end-to-end
  tests.

Quickstart (in-process, ephemeral port)::

    from repro.serve import Client, start_server

    with start_server(workers=4) as handle:
        client = Client(handle.url)
        records = client.submit_and_wait([
            {"graph": "hal", "latency": 17, "power_budget": p}
            for p in (10.0, 12.0, 16.0)
        ])
        for record in records:
            print(record.feasible, record.area, record.peak_power)

From the command line: ``repro serve --port 8642`` and
``repro submit batch.json --url http://127.0.0.1:8642 --wait``.
"""

from .client import Client, ClientError
from .http import ServerHandle, Submission, SynthesisServer, parse_submission, start_server
from .queue import Job, JobQueue, QueueError, QueueFullError
from .service import ServiceError, SynthesisService
from .workers import ProcessWorker, WorkerCrash, run_claimed_task

__all__ = [
    "Client",
    "ClientError",
    "Job",
    "JobQueue",
    "ProcessWorker",
    "QueueError",
    "QueueFullError",
    "ServerHandle",
    "ServiceError",
    "Submission",
    "SynthesisServer",
    "SynthesisService",
    "WorkerCrash",
    "parse_submission",
    "run_claimed_task",
    "start_server",
]
