"""Unit tests for the pasap/palap scheduling windows (repro.scheduling.mobility)."""

import pytest

from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.mobility import Window, compute_windows, windows_feasible
from repro.scheduling.pasap import PowerInfeasibleError


def maps_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return selection_delays(selection, cdfg), selection_powers(selection, cdfg)


class TestWindow:
    def test_width_and_feasibility(self):
        assert Window(2, 5).width == 3
        assert Window(2, 5).feasible
        assert not Window(5, 2).feasible
        assert Window(5, 2).width == -3

    def test_contains(self):
        w = Window(2, 5)
        assert w.contains(2) and w.contains(5) and w.contains(3)
        assert not w.contains(1) and not w.contains(6)


class TestWindowSet:
    def test_windows_cover_all_operations(self, hal, library):
        delays, powers = maps_for(hal, library)
        windows = compute_windows(
            hal, delays, powers, PowerConstraint(10.0), TimeConstraint(20)
        )
        assert set(iter(windows)) == set(hal.operation_names())
        assert windows.all_feasible
        assert windows.infeasible_operations() == []

    def test_windows_are_pasap_palap(self, hal, library):
        delays, powers = maps_for(hal, library)
        windows = compute_windows(
            hal, delays, powers, PowerConstraint(10.0), TimeConstraint(20)
        )
        for name in hal.operation_names():
            assert windows[name].earliest == windows.pasap_starts[name]
            assert windows[name].latest == windows.palap_starts[name]

    def test_locked_operations_have_zero_width(self, hal, library):
        delays, powers = maps_for(hal, library)
        windows = compute_windows(
            hal,
            delays,
            powers,
            PowerConstraint(10.0),
            TimeConstraint(20),
            locked={"m1_3x": 2},
        )
        assert windows["m1_3x"].earliest == windows["m1_3x"].latest == 2

    def test_total_mobility_grows_with_latency(self, hal, library):
        delays, powers = maps_for(hal, library)
        tight = compute_windows(hal, delays, powers, PowerConstraint(10.0), TimeConstraint(17))
        loose = compute_windows(hal, delays, powers, PowerConstraint(10.0), TimeConstraint(25))
        assert loose.total_mobility() > tight.total_mobility()

    def test_tighter_power_shrinks_mobility(self, cosine, library):
        delays, powers = maps_for(cosine, library)
        loose = compute_windows(cosine, delays, powers, PowerConstraint(40.0), TimeConstraint(19))
        tight = compute_windows(cosine, delays, powers, PowerConstraint(22.0), TimeConstraint(19))
        assert tight.total_mobility() <= loose.total_mobility()

    def test_infeasible_power_raises(self, hal, library):
        delays, powers = maps_for(hal, library)
        with pytest.raises(PowerInfeasibleError):
            compute_windows(hal, delays, powers, PowerConstraint(1.0), TimeConstraint(20))


class TestFeasibilityPredicate:
    def test_feasible_case(self, hal, library):
        delays, powers = maps_for(hal, library)
        assert windows_feasible(hal, delays, powers, PowerConstraint(10.0), TimeConstraint(20))

    def test_power_too_small(self, hal, library):
        delays, powers = maps_for(hal, library)
        assert not windows_feasible(hal, delays, powers, PowerConstraint(1.0), TimeConstraint(20))

    def test_latency_too_small(self, hal, library):
        delays, powers = maps_for(hal, library)
        # critical path with serial multipliers is 16 cycles
        assert not windows_feasible(hal, delays, powers, PowerConstraint(50.0), TimeConstraint(12))

    def test_combined_pressure(self, hal, library):
        """Power that fits a loose deadline may not fit a tight one."""
        delays, powers = maps_for(hal, library)
        budget = PowerConstraint(6.0)
        assert windows_feasible(hal, delays, powers, budget, TimeConstraint(40))
        assert not windows_feasible(hal, delays, powers, budget, TimeConstraint(16))
