"""Unit tests for repro.library.library — including the Table-1 contents."""

import pytest

from repro.ir.operation import OpType
from repro.library.library import (
    FULibrary,
    TABLE1_ROWS,
    default_library,
    single_implementation_library,
)
from repro.library.module import FUModule, LibraryError


class TestTable1:
    """The default library must reproduce the paper's Table 1 verbatim."""

    EXPECTED = {
        "add": ({OpType.ADD}, 87, 1, 2.5),
        "sub": ({OpType.SUB}, 87, 1, 2.5),
        "comp": ({OpType.GT}, 8, 1, 2.5),
        "ALU": ({OpType.ADD, OpType.SUB, OpType.GT}, 97, 1, 2.5),
        "Mult (ser.)": ({OpType.MUL}, 103, 4, 2.7),
        "Mult (par.)": ({OpType.MUL}, 339, 2, 8.1),
        "input": ({OpType.INPUT}, 16, 1, 0.2),
        "output": ({OpType.OUTPUT}, 16, 1, 1.7),
    }

    def test_all_rows_present(self, library):
        assert len(library) == len(self.EXPECTED)
        for name in self.EXPECTED:
            assert name in library

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_row_values(self, library, name):
        ops, area, latency, power = self.EXPECTED[name]
        module = library.module(name)
        assert set(module.supported_ops) == ops
        assert module.area == area
        assert module.latency == latency
        assert module.power == power

    def test_table1_rows_constant_matches_library(self, library):
        for name, _, area, cycles, power in TABLE1_ROWS:
            module = library.module(name)
            assert module.area == area
            assert module.latency == cycles
            assert module.power == power

    def test_serial_multiplier_is_lower_energy_than_parallel(self, library):
        serial = library.module("Mult (ser.)")
        parallel = library.module("Mult (par.)")
        assert serial.energy < parallel.energy
        assert serial.area < parallel.area
        assert serial.latency > parallel.latency


class TestRegistry:
    def test_duplicate_rejected(self):
        lib = FULibrary()
        lib.add(FUModule.make("a", {OpType.ADD}, 1, 1, 1))
        with pytest.raises(LibraryError):
            lib.add(FUModule.make("a", {OpType.SUB}, 1, 1, 1))

    def test_remove(self):
        lib = default_library()
        lib.remove("comp")
        assert "comp" not in lib
        with pytest.raises(LibraryError):
            lib.remove("comp")

    def test_unknown_module_lookup(self, library):
        with pytest.raises(LibraryError):
            library.module("bogus")

    def test_iteration_and_len(self, library):
        assert len(list(library)) == len(library)

    def test_restricted(self, library):
        small = library.restricted(["add", "Mult (ser.)"])
        assert len(small) == 2
        assert "ALU" not in small


class TestQueries:
    def test_candidates_for_add(self, library):
        names = {m.name for m in library.candidates(OpType.ADD)}
        assert names == {"add", "ALU"}

    def test_candidates_for_mul(self, library):
        names = {m.name for m in library.candidates(OpType.MUL)}
        assert names == {"Mult (ser.)", "Mult (par.)"}

    def test_supports(self, library):
        assert library.supports(OpType.GT)
        assert not library.supports(OpType.SHL)

    def test_cheapest_fastest_lowest_power(self, library):
        assert library.cheapest(OpType.MUL).name == "Mult (ser.)"
        assert library.fastest(OpType.MUL).name == "Mult (par.)"
        assert library.lowest_power(OpType.MUL).name == "Mult (ser.)"
        assert library.cheapest(OpType.ADD).name == "add"
        assert library.cheapest(OpType.GT).name == "comp"

    def test_selector_errors_on_unsupported_type(self, library):
        with pytest.raises(LibraryError):
            library.cheapest(OpType.SHR)

    def test_describe(self, library):
        text = library.describe()
        assert "8 modules" in text
        assert "Mult (ser.)" in text


class TestSingleImplementationLibrary:
    def test_one_module_per_type(self):
        lib = single_implementation_library()
        assert len(lib.candidates(OpType.MUL)) == 1
        assert len(lib.candidates(OpType.ADD)) == 1
        assert "ALU" not in lib
