"""Design-space exploration over the (time, power) constraint space.

Figure 2 of the paper plots, for each benchmark and latency bound, the
datapath area obtained for a range of power constraints.  This module
drives those sweeps on top of the unified task/batch API: every point is
a :class:`~repro.api.task.SynthesisTask` and the grid is executed through
:func:`~repro.api.batch.run_batch`, so a sweep parallelizes across cores
by passing ``jobs=N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from .engine import EngineOptions
from .result import SynthesisError, SynthesisResult


@dataclass(frozen=True)
class SweepPoint:
    """One point of a power-constraint sweep.

    Attributes:
        power_budget: The power constraint ``P`` used.
        feasible: Whether synthesis succeeded under (T, P).
        area: Total datapath area (``None`` when infeasible).
        fu_area: Functional-unit area only (``None`` when infeasible).
        peak_power: Peak power of the result (``None`` when infeasible).
        latency: Cycles used by the result (``None`` when infeasible).
    """

    power_budget: float
    feasible: bool
    area: Optional[float] = None
    fu_area: Optional[float] = None
    peak_power: Optional[float] = None
    latency: Optional[int] = None


@dataclass
class SweepResult:
    """A full power sweep for one (benchmark, latency bound) pair."""

    benchmark: str
    latency_bound: int
    points: List[SweepPoint] = field(default_factory=list)

    def feasible_points(self) -> List[SweepPoint]:
        return [p for p in self.points if p.feasible]

    def areas(self) -> List[float]:
        return [p.area for p in self.feasible_points()]

    def budgets(self) -> List[float]:
        return [p.power_budget for p in self.feasible_points()]

    def area_at(self, power_budget: float) -> Optional[float]:
        for point in self.points:
            if abs(point.power_budget - power_budget) < 1e-9 and point.feasible:
                return point.area
        return None

    def is_monotone_non_increasing(self, tolerance: float = 1e-6) -> bool:
        """Area never grows as the power budget is relaxed (paper's shape)."""
        areas = self.areas()
        return all(later <= earlier + tolerance for earlier, later in zip(areas, areas[1:]))


def _point_task(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budget: Optional[float],
    options: Optional[EngineOptions],
    inline: bool = False,
):
    """One (T, P) point as a task.

    ``inline=True`` serializes the graph and library into the spec so it
    can ship to worker processes; otherwise the fields are nominal and
    the caller passes the live objects to the executor directly.
    """
    from ..api.task import SynthesisTask

    return SynthesisTask.of(
        cdfg if inline else cdfg.name,
        library=library if inline else library.name,
        latency=latency,
        power_budget=power_budget,
        options=options,
    )


def synthesize_point(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budget: Optional[float],
    options: Optional[EngineOptions] = None,
) -> Optional[SynthesisResult]:
    """Synthesize one (T, P) point; return ``None`` when infeasible."""
    from ..api.batch import run_task

    task = _point_task(cdfg, library, latency, power_budget, options)
    record = run_task(task, cdfg=cdfg, library=library)
    return record.result if record.feasible else None


def minimum_feasible_power(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    precision: float = 0.5,
    upper_hint: float = 200.0,
    options: Optional[EngineOptions] = None,
) -> float:
    """Smallest power budget (to ``precision``) admitting a feasible design.

    Binary search between a trivial lower bound (the cheapest module's
    power) and ``upper_hint``; raises :class:`SynthesisError` when even the
    hint is infeasible (which indicates an impossible latency bound).
    """
    low = 0.0
    high = upper_hint
    if synthesize_point(cdfg, library, latency, high, options) is None:
        raise SynthesisError(
            f"no feasible design for {cdfg.name!r} at T={latency} even with P={high}"
        )
    while high - low > precision:
        mid = (low + high) / 2.0
        if mid <= 0:
            break
        if synthesize_point(cdfg, library, latency, mid, options) is None:
            low = mid
        else:
            high = mid
    return high


def power_area_sweep(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budgets: Sequence[float],
    options: Optional[EngineOptions] = None,
    cumulative_best: bool = False,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Synthesize the benchmark for every budget in ``power_budgets``.

    Every budget becomes one :class:`~repro.api.task.SynthesisTask`; the
    grid runs through :func:`~repro.api.batch.run_batch`, in parallel when
    ``jobs > 1``.  Parallel results are identical to sequential ones —
    each point is an independent synthesis run.

    Args:
        cdfg: Benchmark graph.
        library: Technology library.
        latency: Latency bound ``T``.
        power_budgets: Budgets to synthesize under, in ascending order.
        options: Engine options forwarded to every run.
        cumulative_best: When True, each point reports the best (smallest)
            area seen at *any budget up to and including* this one.  A
            design whose peak power respects a tighter budget is also
            valid under every looser budget, so taking the running best is
            legitimate design-space-exploration practice; it removes the
            greedy heuristic's occasional non-monotone noise from the
            reported curve.  The raw per-budget results are what you get
            with the default ``False``.
        jobs: Worker processes for the batch executor (``None``/1 =
            sequential).
    """
    from ..api.batch import run_batch, run_task

    budgets = sorted(power_budgets)
    parallel = jobs is not None and jobs > 1 and len(budgets) > 1
    if parallel:
        tasks = [
            _point_task(cdfg, library, latency, budget, options, inline=True)
            for budget in budgets
        ]
        records = run_batch(tasks, jobs=jobs, keep_results=False)
    else:
        records = [
            run_task(
                _point_task(cdfg, library, latency, budget, options),
                cdfg=cdfg,
                library=library,
            )
            for budget in budgets
        ]

    sweep = SweepResult(benchmark=cdfg.name, latency_bound=latency)
    best_point: Optional[SweepPoint] = None
    for budget, record in zip(budgets, records):
        if not record.feasible:
            sweep.points.append(SweepPoint(power_budget=budget, feasible=False))
            continue
        point = SweepPoint(
            power_budget=budget,
            feasible=True,
            area=record.area,
            fu_area=record.fu_area,
            peak_power=record.peak_power,
            latency=record.latency,
        )
        if cumulative_best:
            if best_point is None or point.area < best_point.area:
                best_point = point
            else:
                point = SweepPoint(
                    power_budget=budget,
                    feasible=True,
                    area=best_point.area,
                    fu_area=best_point.fu_area,
                    peak_power=best_point.peak_power,
                    latency=best_point.latency,
                )
        sweep.points.append(point)
    return sweep


def default_power_grid(
    minimum: float,
    maximum: float = 150.0,
    steps: int = 12,
) -> List[float]:
    """An evenly spaced power grid from ``minimum`` to ``maximum`` inclusive.

    Figure 2's x-axis runs from roughly the minimum feasible power of each
    benchmark up to 150 power units, so that is the default cap.
    """
    if steps < 2:
        raise ValueError("a power grid needs at least two steps")
    if maximum < minimum:
        maximum = minimum
    stride = (maximum - minimum) / (steps - 1)
    return [round(minimum + i * stride, 3) for i in range(steps)]
