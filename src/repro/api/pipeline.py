"""The composable synthesis pipeline.

A :class:`Pipeline` is an ordered list of named passes, each a callable
mutating a shared :class:`PipelineContext`.  The default pipeline is

``select`` → ``schedule`` → ``bind`` → ``finalize`` → ``analyze``

* **select** resolves the task's module-selection policy and computes the
  tentative per-operation delays/powers.
* **schedule** resolves the task's scheduler strategy by name.  The
  paper's combined ``engine`` strategy schedules, allocates *and* binds
  in one pass (setting ``ctx.result`` directly); classical schedulers
  only set ``ctx.schedule``.
* **bind** resolves the binder strategy when the scheduler did not
  produce a datapath.
* **finalize** builds the :class:`~repro.synthesis.result.SynthesisResult`
  (area breakdown, constraints record) and optionally verifies it.
* **analyze** attaches power metrics (peak, energy, headroom) to the
  result metadata.

Pipelines are immutable-by-convention: the editing helpers
(:meth:`Pipeline.replaced`, :meth:`Pipeline.without`,
:meth:`Pipeline.inserted_after`) return new pipelines, so a customized
flow never perturbs the shared default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..datapath.rtl import Datapath
from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import Selection, selection_delays, selection_powers
from ..power.profile import profile_from_schedule
from ..registries import BINDERS, SCHEDULERS, SELECTORS
from ..scheduling.constraints import (
    PowerConstraint,
    SynthesisConstraints,
    TimeConstraint,
    UnsupportedConstraintError,
)
from ..scheduling.schedule import Schedule
from ..synthesis.engine import EngineOptions
from ..synthesis.result import SynthesisResult
from .task import (
    PORTFOLIO_SCHEDULER,
    SynthesisTask,
    TaskError,
    split_portfolio_options,
)


class PipelineError(RuntimeError):
    """A pass violated the pipeline contract (missing inputs/outputs)."""


@dataclass
class PipelineContext:
    """Mutable state threaded through the passes of one task run."""

    task: SynthesisTask
    cdfg: CDFG
    library: FULibrary
    options: EngineOptions
    selection: Optional[Selection] = None
    delays: Optional[Dict[str, int]] = None
    powers: Optional[Dict[str, float]] = None
    schedule: Optional[Schedule] = None
    datapath: Optional[Datapath] = None
    result: Optional[SynthesisResult] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def power_constraint(self) -> PowerConstraint:
        """The task's power budget as a constraint (unbounded when absent)."""
        if self.task.power_budget is None:
            return PowerConstraint.unbounded()
        return PowerConstraint(self.task.power_budget)

    def require_latency(self, strategy: str) -> int:
        """The task's latency bound; raise when the strategy needs one."""
        if self.task.latency is None:
            raise TaskError(
                f"strategy {strategy!r} requires a latency bound, but the task "
                "has latency=None"
            )
        return int(self.task.latency)

    @property
    def constraints(self) -> SynthesisConstraints:
        """(T, P) bundle for strategies needing both (e.g. ``engine``)."""
        return SynthesisConstraints(
            TimeConstraint(self.require_latency(self.task.scheduler)),
            self.power_constraint,
        )

    def strategy_label(self, strategy: str) -> str:
        return f"{strategy}[{self.cdfg.name}]"


# --------------------------------------------------------------------------- #
# Default passes
# --------------------------------------------------------------------------- #
def select_pass(ctx: PipelineContext) -> None:
    """Pick a tentative module per operation via the task's selector.

    Skipped for self-contained schedulers (``needs_selection = False`` on
    the strategy, e.g. the combined ``engine``) — they perform their own
    module selection and would discard this pass's output.
    """
    if not getattr(SCHEDULERS.get(ctx.task.scheduler), "needs_selection", True):
        return
    policy = SELECTORS.get(ctx.task.selector)()
    ctx.selection = policy.select(ctx.cdfg, ctx.library)
    ctx.delays = selection_delays(ctx.selection, ctx.cdfg)
    ctx.powers = selection_powers(ctx.selection, ctx.cdfg)


def schedule_pass(ctx: PipelineContext) -> None:
    """Run the task's scheduler strategy.

    A task carrying a ``register_budget`` is rejected up front unless the
    strategy declares ``supports_register_budget`` — a constraint a
    scheduler cannot guarantee must fail loudly, not get dropped.
    """
    strategy = SCHEDULERS.get(ctx.task.scheduler)
    if ctx.task.register_budget is not None and not getattr(
        strategy, "supports_register_budget", False
    ):
        raise UnsupportedConstraintError(
            f"scheduler {ctx.task.scheduler!r} cannot guarantee a register "
            f"budget (R={ctx.task.register_budget}); use one of the "
            "register-aware schedulers (e.g. 'ilp')"
        )
    strategy(ctx)
    if ctx.schedule is None:
        raise PipelineError(
            f"scheduler {ctx.task.scheduler!r} did not produce a schedule"
        )


def bind_pass(ctx: PipelineContext) -> None:
    """Bind operations to FU instances unless the scheduler already did."""
    if ctx.datapath is not None:
        return
    BINDERS.get(ctx.task.binder)(ctx)
    if ctx.datapath is None:
        raise PipelineError(f"binder {ctx.task.binder!r} did not produce a datapath")


def finalize_pass(ctx: PipelineContext) -> None:
    """Assemble (and optionally verify) the synthesis result."""
    if ctx.result is not None:  # the combined engine built it already
        return
    datapath = ctx.datapath
    if datapath.schedule is None:
        datapath.schedule = ctx.schedule
    datapath.finalize()
    bound = ctx.task.latency if ctx.task.latency is not None else ctx.schedule.makespan
    constraints = SynthesisConstraints.of(
        bound, ctx.task.power_budget, register_budget=ctx.task.register_budget
    )
    result = SynthesisResult(
        datapath=datapath,
        schedule=ctx.schedule,
        constraints=constraints,
        area=datapath.area(),
        trace=[f"pipeline: scheduler={ctx.task.scheduler}, binder={ctx.task.binder}"],
        backtracks=0,
        metadata={"library": ctx.library.name},
    )
    if ctx.task.verify:
        result.verify()
    ctx.result = result


def analyze_pass(ctx: PipelineContext) -> None:
    """Attach power metrics to the result metadata."""
    profile = profile_from_schedule(ctx.schedule)
    ctx.metrics.setdefault("peak_power", profile.peak)
    ctx.metrics.setdefault("energy", sum(profile))
    if ctx.task.power_budget is not None:
        ctx.metrics.setdefault("power_headroom", ctx.task.power_budget - profile.peak)
    metadata = ctx.result.metadata
    metadata.setdefault("scheduler", ctx.task.scheduler)
    metadata.setdefault("binder", ctx.task.binder)
    if ctx.task.label is not None:
        metadata.setdefault("label", ctx.task.label)
    metadata.setdefault("metrics", {}).update(ctx.metrics)


PipelinePass = Tuple[str, Callable[[PipelineContext], None]]

DEFAULT_PASSES: Tuple[PipelinePass, ...] = (
    ("select", select_pass),
    ("schedule", schedule_pass),
    ("bind", bind_pass),
    ("finalize", finalize_pass),
    ("analyze", analyze_pass),
)


class Pipeline:
    """An ordered sequence of named passes over a :class:`PipelineContext`."""

    def __init__(self, passes: Optional[Sequence[PipelinePass]] = None) -> None:
        self.passes: List[PipelinePass] = list(passes if passes is not None else DEFAULT_PASSES)

    @classmethod
    def default(cls) -> "Pipeline":
        """The standard select → schedule → bind → finalize → analyze flow."""
        return cls(DEFAULT_PASSES)

    # ------------------------------------------------------------------ #
    # Composition helpers (each returns a NEW pipeline)
    # ------------------------------------------------------------------ #
    def pass_names(self) -> List[str]:
        return [name for name, _ in self.passes]

    def _index_of(self, name: str) -> int:
        for index, (pass_name, _) in enumerate(self.passes):
            if pass_name == name:
                return index
        raise KeyError(f"no pass named {name!r}; passes: {self.pass_names()}")

    def replaced(self, name: str, fn: Callable[[PipelineContext], None]) -> "Pipeline":
        """A copy with pass ``name`` swapped for ``fn``."""
        index = self._index_of(name)
        passes = list(self.passes)
        passes[index] = (name, fn)
        return Pipeline(passes)

    def without(self, name: str) -> "Pipeline":
        """A copy with pass ``name`` removed."""
        index = self._index_of(name)
        passes = list(self.passes)
        del passes[index]
        return Pipeline(passes)

    def inserted_after(
        self, name: str, new_name: str, fn: Callable[[PipelineContext], None]
    ) -> "Pipeline":
        """A copy with a new pass inserted right after ``name``."""
        index = self._index_of(name)
        passes = list(self.passes)
        passes.insert(index + 1, (new_name, fn))
        return Pipeline(passes)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        task: SynthesisTask,
        cdfg: Optional[CDFG] = None,
        library: Optional[FULibrary] = None,
    ) -> SynthesisResult:
        """Run ``task`` through every pass; return the synthesis result.

        ``cdfg`` / ``library`` short-circuit the task's own resolution —
        the in-process shims pass the live objects they were handed so no
        round-trip through the inline-dict form is needed.

        Raises:
            repro.synthesis.result.SynthesisError: on infeasible (T, P).
            repro.registries.UnknownStrategyError: on unregistered names.
            TaskError: when a strategy needs a missing task field.
        """
        ctx = self.context(task, cdfg=cdfg, library=library)
        for _, fn in self.passes:
            fn(ctx)
        if ctx.result is None:
            raise PipelineError(
                f"pipeline {self.pass_names()} finished without a result"
            )
        return ctx.result

    def context(
        self,
        task: SynthesisTask,
        cdfg: Optional[CDFG] = None,
        library: Optional[FULibrary] = None,
    ) -> PipelineContext:
        """Build the initial context (exposed for tests and custom drivers)."""
        overrides = task.options
        if task.scheduler == PORTFOLIO_SCHEDULER:
            # the reserved race-config keys are not engine options; what
            # remains is the override set every contender inherits
            _, overrides = split_portfolio_options(overrides)
        return PipelineContext(
            task=task,
            cdfg=cdfg if cdfg is not None else task.resolve_graph(),
            library=library if library is not None else task.resolve_library(),
            options=_engine_options(overrides),
        )

    def __repr__(self) -> str:
        return f"Pipeline({self.pass_names()})"


def _engine_options(overrides: Dict[str, Any]) -> EngineOptions:
    """Build :class:`EngineOptions` from a task's plain-dict overrides."""
    valid = {f.name for f in EngineOptions.__dataclass_fields__.values()}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise TaskError(
            f"unknown engine option(s) {unknown}; valid options: {sorted(valid)}"
        )
    return EngineOptions(**overrides)
