#!/usr/bin/env python3
"""Design-space exploration: regenerate the paper's Figure 2 interactively.

Run with::

    python examples/design_space_exploration.py [--steps N] [--cap P]

For every (benchmark, latency) case of the paper's Figure 2 the script
finds the minimum feasible power budget, sweeps budgets up to the cap and
prints the resulting area curve as a table, an ASCII plot and CSV text
(ready to paste into any plotting tool).
"""

from __future__ import annotations

import argparse

from repro.reporting.experiments import figure2_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8, help="budgets per sweep")
    parser.add_argument("--cap", type=float, default=150.0, help="largest power budget")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="parallel workers per sweep (batch executor)",
    )
    args = parser.parse_args()

    print("Running the Figure-2 sweep (six cases); this takes a few seconds...\n")
    data = figure2_experiment(power_cap=args.cap, steps=args.steps, jobs=args.jobs)

    print(data.table)
    print()
    print(data.plot)
    print()
    print("CSV (series,x,y):")
    print(data.csv)

    print("Qualitative checks:")
    for (name, latency), sweep in sorted(data.sweeps.items()):
        minimum = sweep.feasible_points()[0]
        loosest = sweep.feasible_points()[-1]
        print(
            f"  {name:8s} T={latency:2d}: "
            f"P_min={minimum.power_budget:6.1f} -> area {minimum.area:7.1f}   "
            f"loose P={loosest.power_budget:5.1f} -> area {loosest.area:7.1f}   "
            f"monotone={sweep.is_monotone_non_increasing()}"
        )


if __name__ == "__main__":
    main()
