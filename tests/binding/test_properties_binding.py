"""Property-based tests for the binding layer (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.binding.clique import greedy_clique_partition
from repro.binding.compatibility import build_compatibility_graph
from repro.binding.intervals import Interval, max_overlap_count
from repro.binding.register import ValueLifetime, left_edge_allocation
from repro.library.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.mobility import compute_windows
from repro.suite.generators import GeneratorConfig, random_cdfg

LIBRARY = default_library()


# --------------------------------------------------------------------------- #
# Left-edge register allocation
# --------------------------------------------------------------------------- #
@st.composite
def lifetimes(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    result = {}
    for index in range(count):
        start = draw(st.integers(min_value=0, max_value=40))
        length = draw(st.integers(min_value=1, max_value=10))
        result[f"v{index}"] = ValueLifetime(f"v{index}", Interval(start, start + length))
    return result


@given(lifetimes())
@settings(max_examples=100, deadline=None)
def test_left_edge_is_consistent_and_optimal(lifetime_map):
    allocation = left_edge_allocation(lifetime_map)
    # no register ever holds two overlapping values
    assert allocation.is_consistent()
    # every value is stored exactly once
    stored = [p for producers in allocation.registers.values() for p in producers]
    assert sorted(stored) == sorted(lifetime_map)
    # left-edge achieves the interval-graph lower bound
    bound = max_overlap_count(lt.interval for lt in lifetime_map.values())
    assert allocation.count == bound


# --------------------------------------------------------------------------- #
# Clique partitioning over random graphs
# --------------------------------------------------------------------------- #
@st.composite
def random_compatibility(draw):
    config = GeneratorConfig(
        operations=draw(st.integers(min_value=3, max_value=14)),
        inputs=draw(st.integers(min_value=1, max_value=3)),
        levels=draw(st.integers(min_value=1, max_value=5)),
        mul_fraction=draw(st.floats(min_value=0.0, max_value=0.5)),
        sub_fraction=draw(st.floats(min_value=0.0, max_value=0.4)),
        outputs=0,
        seed=draw(st.integers(min_value=0, max_value=5_000)),
    )
    cdfg = random_cdfg(config)
    selection = MinPowerSelection().select(cdfg, LIBRARY)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    slack = draw(st.integers(min_value=0, max_value=12))
    from repro.ir.analysis import critical_path_length

    latency = critical_path_length(cdfg, delays) + slack
    windows = compute_windows(
        cdfg, delays, powers, PowerConstraint(60.0), TimeConstraint(latency)
    )
    return cdfg, build_compatibility_graph(cdfg, library=LIBRARY, windows=windows, delays=delays)


@given(random_compatibility())
@settings(max_examples=50, deadline=None)
def test_greedy_partition_is_always_valid(data):
    cdfg, compatibility = data
    partition = greedy_clique_partition(compatibility)
    assert partition.is_partition_of(compatibility.operations())
    assert partition.is_valid(compatibility)
    # every multi-member clique has a module assigned that supports all members
    for clique in partition.cliques:
        if clique.size > 1:
            assert clique.module is not None
            for member in clique.members:
                assert clique.module.supports(cdfg.operation(member).optype)


@given(random_compatibility())
@settings(max_examples=50, deadline=None)
def test_compatibility_edges_are_symmetric_and_irreflexive(data):
    _, compatibility = data
    for op in compatibility.operations():
        assert not compatibility.compatible(op, op)
        for other in compatibility.neighbours(op):
            assert compatibility.compatible(other, op)
