"""Unit tests for design-space exploration (repro.synthesis.explore)."""

import pytest

from repro.synthesis.explore import (
    SweepPoint,
    SweepResult,
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
    synthesize_point,
)


class TestSynthesizePoint:
    def test_feasible_point_returns_result(self, hal, library):
        result = synthesize_point(hal, library, latency=17, power_budget=12.0)
        assert result is not None
        assert result.peak_power <= 12.0 + 1e-9

    def test_infeasible_point_returns_none(self, hal, library):
        assert synthesize_point(hal, library, latency=17, power_budget=2.0) is None
        assert synthesize_point(hal, library, latency=6, power_budget=100.0) is None


class TestMinimumFeasiblePower:
    def test_result_is_feasible_and_tight(self, hal, library):
        p_min = minimum_feasible_power(hal, library, latency=17, precision=0.5)
        assert synthesize_point(hal, library, 17, p_min) is not None
        assert synthesize_point(hal, library, 17, p_min - 1.0) is None

    def test_tighter_latency_needs_more_power(self, hal, library):
        loose = minimum_feasible_power(hal, library, latency=17)
        tight = minimum_feasible_power(hal, library, latency=10)
        assert tight > loose

    def test_impossible_latency_raises(self, hal, library):
        from repro.synthesis.result import SynthesisError

        with pytest.raises(SynthesisError):
            minimum_feasible_power(hal, library, latency=5)


class TestPowerGrid:
    def test_grid_endpoints_and_length(self):
        grid = default_power_grid(10.0, 150.0, steps=8)
        assert len(grid) == 8
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(150.0)
        assert grid == sorted(grid)

    def test_degenerate_range(self):
        grid = default_power_grid(20.0, 10.0, steps=3)
        assert all(value == pytest.approx(20.0) for value in grid)

    def test_too_few_steps_rejected(self):
        with pytest.raises(ValueError):
            default_power_grid(1.0, 2.0, steps=1)


class TestSweep:
    def test_sweep_covers_all_budgets(self, hal, library):
        budgets = [9.0, 12.0, 20.0, 60.0]
        sweep = power_area_sweep(hal, library, 17, budgets)
        assert [p.power_budget for p in sweep.points] == budgets
        assert all(p.feasible for p in sweep.points)

    def test_infeasible_budgets_marked(self, hal, library):
        sweep = power_area_sweep(hal, library, 17, [2.0, 12.0])
        assert not sweep.points[0].feasible
        assert sweep.points[0].area is None
        assert sweep.points[1].feasible

    def test_results_respect_their_budget(self, cosine, library):
        sweep = power_area_sweep(cosine, library, 15, [25.0, 40.0, 90.0])
        for point in sweep.feasible_points():
            assert point.peak_power <= point.power_budget + 1e-9
            assert point.latency <= 15

    def test_cumulative_best_is_monotone(self, cosine, library):
        budgets = default_power_grid(24.0, 120.0, steps=6)
        sweep = power_area_sweep(cosine, library, 12, budgets, cumulative_best=True)
        assert sweep.is_monotone_non_increasing()

    def test_helpers(self, hal, library):
        sweep = power_area_sweep(hal, library, 17, [12.0, 60.0])
        assert len(sweep.areas()) == len(sweep.budgets()) == 2
        assert sweep.area_at(12.0) == sweep.points[0].area
        assert sweep.area_at(999.0) is None


class TestSweepResultLogic:
    def test_monotonicity_check(self):
        sweep = SweepResult("x", 10)
        sweep.points = [
            SweepPoint(1.0, True, area=100.0),
            SweepPoint(2.0, True, area=90.0),
            SweepPoint(3.0, True, area=90.0),
        ]
        assert sweep.is_monotone_non_increasing()
        sweep.points.append(SweepPoint(4.0, True, area=95.0))
        assert not sweep.is_monotone_non_increasing()
