"""Power-constrained ASAP scheduling (``pasap``) — Section 2 of the paper.

The algorithm "stretches" the classical ASAP schedule so that the total
power drawn in any clock cycle never exceeds the budget ``P``:

    Initialize: schedule the source start-time to zero and set the
    execution offset ``o_i`` to zero for all operators.

    step 1: pick an unscheduled operator ``v_i``
    step 2: if ``v_i`` has unscheduled predecessors, go to step 4
    step 3: if there is power available in the execution interval
            ``[(t_i + o_i) .. (t_i + o_i + d_i)]``, where ``d_i`` is the
            execution delay of ``v_i`` and ``t_i = max{t_j + d_j}`` over
            all predecessors ``v_j -> v_i``, schedule operation ``i`` at
            time ``t_i (+ o_i)``; otherwise increase ``o_i`` by one.
    step 4: if unscheduled operators remain, go to step 1.

Implementation notes
---------------------
* Operations are visited in a (deterministic) topological order; within a
  ready set the order is the priority function, by default
  *largest power first, then longest delay, then name* — greedy packing of
  the heavy operations first reduces the stretching needed later and is
  the natural reading of the paper's "pick an unscheduled operator".
* Already-bound operations can be *locked* at fixed start times; their
  power is pre-committed to the profile.  The combined synthesis engine
  relies on this to recompute pasap windows after every binding decision
  and to implement the paper's backtrack-and-lock rule.
* When a single operation's power already exceeds the budget the schedule
  is infeasible; :class:`PowerInfeasibleError` is raised.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.selection import (
    MinPowerSelection,
    Selection,
    selection_delays,
    selection_powers,
)
from .constraints import PowerConstraint
from .schedule import Schedule, add_to_profile, profile_allows


class PowerInfeasibleError(Exception):
    """Raised when no start time can satisfy the power constraint."""


#: Priority function: maps (op name, delay, power) to a sortable key.
PriorityFn = Callable[[str, int, float], Tuple]


def default_priority(name: str, delay: int, power: float) -> Tuple:
    """Schedule power-hungry, long operations first (ties by name)."""
    return (-power, -delay, name)


def pasap_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    locked: Optional[Mapping[str, int]] = None,
    max_horizon: Optional[int] = None,
    priority: PriorityFn = default_priority,
    label: str = "pasap",
) -> Schedule:
    """Power-constrained ASAP schedule.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power.
        power: The per-cycle power budget ``P``.
        locked: Start times of operations that are already fixed (their
            power is committed to the profile before scheduling the rest).
        max_horizon: Safety bound on how far an operation may be delayed;
            defaults to a generous bound derived from the total work.
        priority: Ready-operation ordering (see :func:`default_priority`).
        label: Label stored on the resulting schedule.

    Returns:
        A schedule that respects precedence and the power budget.

    Raises:
        PowerInfeasibleError: if some operation's own power exceeds the
            budget, or the horizon safety bound is hit.
    """
    start = pasap_core(cdfg, delays, powers, power, locked, max_horizon, priority)
    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"power_budget": power.max_power},
    )


def pasap_core(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    locked: Optional[Mapping[str, int]] = None,
    max_horizon: Optional[int] = None,
    priority: PriorityFn = default_priority,
    locked_base: Optional["LockedProfileCache"] = None,
) -> Dict[str, int]:
    """The pasap stretching loop, returning only the start-time map.

    This is the hot path of the synthesis engine's window recomputation
    (called twice per committed binding decision, once forward and once on
    the reversed graph for palap); it skips the :class:`Schedule`
    construction — and its defensive dict copies and validation — that
    :func:`pasap_schedule` layers on top for external callers.

    ``locked_base`` optionally carries the power profile of the locked
    operations over from the previous engine iteration: the engine's
    locked set only ever *grows* by the operation it just committed, so
    the profile can be extended by the delta instead of being rebuilt
    from every locked operation each time.  The cache replays the same
    additions in the same order, so the profile is float-identical to a
    fresh build (a mismatched or shrunken locked set falls back to the
    full rebuild).
    """
    locked = locked if locked is not None else {}
    schedulable = cdfg.schedulable_operations()

    if max_horizon is None:
        total_cycles = sum(delays[n] for n in cdfg.operation_names())
        max_horizon = max(total_cycles * 4 + 16, 64)

    # Single-operation feasibility: an operation drawing more than P in a
    # cycle can never be placed.
    if not power.is_unbounded:
        for name in schedulable:
            if not power.allows(powers[name]):
                raise PowerInfeasibleError(
                    f"operation {name!r} draws {powers[name]:.3f} per cycle, "
                    f"exceeding the budget {power.max_power:.3f}"
                )

    # Commit locked operations first (incrementally when a cache is given).
    if locked_base is not None:
        profile, start = locked_base.profile_for(cdfg, delays, powers, locked)
    else:
        profile, start = _committed_locked(cdfg, delays, powers, locked)

    # Process in topological waves; inside a wave, order by priority.
    remaining = [n for n in cdfg.topological_order() if n not in start]
    scheduled = set(start)

    while remaining:
        ready = [
            n
            for n in remaining
            if all(p in scheduled for p in cdfg.predecessors(n))
        ]
        if not ready:
            # Should not happen on a DAG; defensive.
            raise PowerInfeasibleError(
                f"no ready operations among {remaining!r}; dependence deadlock"
            )
        ready.sort(key=lambda n: priority(n, delays[n], powers[n]))
        for name in ready:
            data_ready = 0
            for pred in cdfg.predecessors(name):
                data_ready = max(data_ready, start[pred] + delays[pred])
            offset = 0
            op_delay = delays[name]
            op_power = powers[name]
            if cdfg.operation(name).is_virtual or op_power == 0.0:
                start[name] = data_ready
            else:
                while not profile_allows(profile, data_ready + offset, op_delay, op_power, power):
                    offset += 1
                    if data_ready + offset > max_horizon:
                        raise PowerInfeasibleError(
                            f"operation {name!r} cannot be placed within the "
                            f"horizon {max_horizon} under budget {power.max_power:.3f}"
                        )
                start[name] = data_ready + offset
                add_to_profile(profile, start[name], op_delay, op_power)
            scheduled.add(name)
        remaining = [n for n in remaining if n not in scheduled]

    return start


def _committed_locked(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    locked: Mapping[str, int],
) -> Tuple[List[float], Dict[str, int]]:
    """Profile and start map with every locked operation committed."""
    profile: List[float] = []
    start: Dict[str, int] = {}
    for name, fixed_start in locked.items():
        if name not in cdfg:
            continue
        start[name] = fixed_start
        add_to_profile(profile, fixed_start, delays[name], powers[name])
    return profile, start


class LockedProfileCache:
    """Incrementally maintained power profile of the locked operations.

    The synthesis engine locks exactly one more operation per committed
    decision, so successive window recomputations share all but one entry
    of their locked set.  This cache keeps the previous locked profile
    and extends it by the delta — committing the new entries in the same
    ``dict`` insertion order a fresh build would use, which keeps the
    floating-point profile identical bit for bit.

    Whenever the new locked set is not a superset of the cached one, or a
    cached operation changed its start/delay/power (e.g. after the
    engine's backtrack-and-lock rollback), the cache rebuilds from
    scratch, so correctness never depends on the engine's call pattern.
    """

    def __init__(self) -> None:
        self._profile: List[float] = []
        self._start: Dict[str, int] = {}
        self._signature: Dict[str, Tuple[int, int, float]] = {}
        # Locked keys in the iteration order they were committed with;
        # float addition is order-sensitive, so reuse requires the new
        # locked mapping to iterate with the cached order as a prefix.
        self._order: List[str] = []

    def profile_for(
        self,
        cdfg: CDFG,
        delays: Mapping[str, int],
        powers: Mapping[str, float],
        locked: Mapping[str, int],
    ) -> Tuple[List[float], Dict[str, int]]:
        names = list(locked)
        reusable = (
            len(names) >= len(self._order) and names[: len(self._order)] == self._order
        )
        if reusable:
            for name, (cached_start, cached_delay, cached_power) in self._signature.items():
                if (
                    locked.get(name) != cached_start
                    or delays[name] != cached_delay
                    or powers[name] != cached_power
                ):
                    reusable = False
                    break
        if not reusable:
            self._profile = []
            self._start = {}
            self._signature = {}
            self._order = []
        for name in names[len(self._order) :]:
            self._order.append(name)
            if name not in cdfg:
                continue
            fixed_start = locked[name]
            self._start[name] = fixed_start
            add_to_profile(self._profile, fixed_start, delays[name], powers[name])
            self._signature[name] = (fixed_start, delays[name], powers[name])
        return list(self._profile), dict(self._start)


def pasap_schedule_with_library(
    cdfg: CDFG,
    library: FULibrary,
    power: PowerConstraint,
    selection: Optional[Selection] = None,
    locked: Optional[Mapping[str, int]] = None,
    label: str = "pasap",
) -> Schedule:
    """pasap using delays/powers from a library module selection."""
    if selection is None:
        selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return pasap_schedule(cdfg, delays, powers, power, locked=locked, label=label)


def pasap_start_times(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    locked: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Convenience wrapper returning only the start-time map."""
    return pasap_schedule(cdfg, delays, powers, power, locked=locked).start_times
