"""Unit tests for repro.ir.cdfg."""

import pytest

from repro.ir.cdfg import CDFG, CDFGError
from repro.ir.operation import Operation, OpType


def build_small() -> CDFG:
    g = CDFG("small")
    g.add_operation(Operation("a", OpType.INPUT))
    g.add_operation(Operation("b", OpType.INPUT))
    g.add_operation(Operation("s", OpType.ADD))
    g.add_operation(Operation("o", OpType.OUTPUT))
    g.add_edge("a", "s", port=0)
    g.add_edge("b", "s", port=1)
    g.add_edge("s", "o")
    return g


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CDFG("")

    def test_duplicate_operation_rejected(self):
        g = CDFG()
        g.add_operation(Operation("a", OpType.INPUT))
        with pytest.raises(CDFGError):
            g.add_operation(Operation("a", OpType.ADD))

    def test_edge_to_unknown_node_rejected(self):
        g = CDFG()
        g.add_operation(Operation("a", OpType.INPUT))
        with pytest.raises(CDFGError):
            g.add_edge("a", "missing")
        with pytest.raises(CDFGError):
            g.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        g = CDFG()
        g.add_operation(Operation("a", OpType.ADD))
        with pytest.raises(CDFGError):
            g.add_edge("a", "a")

    def test_cycle_rejected(self):
        g = CDFG()
        for name in "abc":
            g.add_operation(Operation(name, OpType.ADD))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        with pytest.raises(CDFGError):
            g.add_edge("c", "a")
        # the offending edge must not have been left behind
        assert ("c", "a") not in g.edges()

    def test_duplicate_edge_increases_multiplicity(self):
        g = CDFG()
        g.add_operation(Operation("x", OpType.INPUT))
        g.add_operation(Operation("sq", OpType.MUL))
        g.add_edge("x", "sq", port=0)
        g.add_edge("x", "sq", port=1)
        assert g.edge_multiplicity("x", "sq") == 2
        assert g.num_edges() == 1

    def test_remove_operation(self):
        g = build_small()
        g.remove_operation("o")
        assert "o" not in g
        assert ("s", "o") not in g.edges()

    def test_remove_unknown_operation(self):
        with pytest.raises(CDFGError):
            build_small().remove_operation("nope")


class TestQueries:
    def test_len_and_contains(self):
        g = build_small()
        assert len(g) == 4
        assert "s" in g
        assert "zzz" not in g

    def test_operation_lookup(self):
        g = build_small()
        assert g.operation("s").optype is OpType.ADD
        with pytest.raises(CDFGError):
            g.operation("zzz")

    def test_predecessors_successors(self):
        g = build_small()
        assert sorted(g.predecessors("s")) == ["a", "b"]
        assert g.successors("s") == ("o",)

    def test_sources_and_sinks(self):
        g = build_small()
        assert sorted(g.sources()) == ["a", "b"]
        assert g.sinks() == ["o"]

    def test_topological_order_respects_edges(self):
        g = build_small()
        order = g.topological_order()
        assert order.index("a") < order.index("s") < order.index("o")
        assert tuple(reversed(order)) == g.reverse_topological_order()

    def test_type_histogram(self):
        histogram = build_small().type_histogram()
        assert histogram[OpType.INPUT] == 2
        assert histogram[OpType.ADD] == 1
        assert histogram[OpType.OUTPUT] == 1

    def test_operations_of_type(self):
        assert build_small().operations_of_type(OpType.ADD) == ["s"]

    def test_schedulable_excludes_virtual(self):
        g = build_small()
        g.add_operation(Operation("c", OpType.CONST))
        assert "c" not in g.schedulable_operations()
        assert "s" in g.schedulable_operations()

    def test_arithmetic_operations(self):
        assert build_small().arithmetic_operations() == ["s"]

    def test_summary(self):
        summary = build_small().summary()
        assert summary["operations"] == 4
        assert summary["edges"] == 3
        assert summary["types"]["+"] == 1


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_small()
        clone = g.copy()
        clone.remove_operation("o")
        assert "o" in g
        assert "o" not in clone

    def test_reversed_flips_edges(self):
        g = build_small()
        rev = g.reversed()
        assert ("o", "s") in rev.edges()
        assert ("s", "a") in rev.edges() or ("s", "b") in rev.edges()
        # the original is untouched
        assert ("a", "s") in g.edges()

    def test_reversed_is_cached_and_read_only(self):
        g = build_small()
        rev = g.reversed()
        assert g.reversed() is rev  # cached until the base graph mutates
        with pytest.raises(CDFGError):
            rev.remove_operation("o")
        with pytest.raises(CDFGError):
            rev.add_edge("a", "b")
        # a copy of the view is mutable again
        rev.copy().remove_operation("o")
        # mutating the base graph drops the cached reversal
        g.add_operation(Operation("extra", OpType.ADD))
        assert g.reversed() is not rev

    def test_subgraph(self):
        g = build_small()
        sub = g.subgraph(["a", "b", "s"])
        assert len(sub) == 3
        assert ("a", "s") in sub.edges()
        assert "o" not in sub

    def test_subgraph_unknown_member(self):
        with pytest.raises(CDFGError):
            build_small().subgraph(["a", "zzz"])

    def test_iteration(self):
        g = build_small()
        assert set(iter(g)) == {"a", "b", "s", "o"}
