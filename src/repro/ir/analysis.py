"""Static analyses of a CDFG.

These are the classic pre-scheduling analyses used throughout high-level
synthesis:

* **as-soon-as-possible (ASAP) levels** and **as-late-as-possible (ALAP)
  levels** in *unit-delay* terms (structural depth, independent of the
  functional-unit library),
* **critical path length** (in operations and in cycles for a concrete
  delay assignment),
* **mobility** (slack between ASAP and ALAP under a latency bound),
* lower bounds on resources and power (used to pick sensible constraint
  ranges in the experiments).

Delay-aware variants accept a ``delays`` mapping (operation name → cycles)
so that multi-cycle operators such as the serial multiplier from the
paper's Table 1 are handled correctly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from .cdfg import CDFG, CDFGError
from .operation import OpType


def unit_delays(cdfg: CDFG) -> Dict[str, int]:
    """A delay map giving every non-virtual operation one cycle."""
    return {n: 0 if cdfg.operation(n).is_virtual else 1 for n in cdfg.operation_names()}


def _check_delays(cdfg: CDFG, delays: Mapping[str, int]) -> None:
    missing = [n for n in cdfg.operation_names() if n not in delays]
    if missing:
        raise CDFGError(f"delay map missing operations: {sorted(missing)}")
    negative = [n for n, d in delays.items() if d < 0]
    if negative:
        raise CDFGError(f"negative delays for operations: {sorted(negative)}")


class ValidatedDelayMap(dict):
    """A delay map already copied and checked against one specific CDFG.

    The analyses below defensively copy and validate every incoming delay
    mapping.  Done naively that work is *quadratic* for callers like the
    force-directed scheduler or the synthesis engine, which invoke
    ``asap_times``/``alap_times`` once per committed operation.  Wrapping
    a map once with :func:`validated_delays` lets every downstream
    analysis skip the copy and the re-validation.

    The wrapper is tied to the CDFG it was validated against — both by
    identity and by the graph's mutation counter, so a map validated
    before the graph changed is re-checked rather than trusted.  Handing
    it to an analysis over a *different* graph likewise falls back to
    the normal copy-and-check path.
    """

    __slots__ = ("cdfg", "version")

    def __init__(self, cdfg: CDFG, data: Mapping[str, int]) -> None:
        super().__init__(data)
        self.cdfg = cdfg
        self.version = cdfg._version

    def _read_only(self, *_args, **_kwargs):
        raise TypeError(
            "ValidatedDelayMap is read-only (its contents were validated "
            "once); build a plain dict from it and re-wrap with "
            "validated_delays() instead"
        )

    __setitem__ = _read_only
    __delitem__ = _read_only
    clear = _read_only
    pop = _read_only
    popitem = _read_only
    setdefault = _read_only
    update = _read_only


def validated_delays(
    cdfg: CDFG, delays: Optional[Mapping[str, int]] = None
) -> ValidatedDelayMap:
    """Copy + validate ``delays`` for ``cdfg`` exactly once.

    Passing the returned map back into any analysis of the same graph is
    free; missing or negative delays raise :class:`CDFGError` here, with
    the same messages the analyses used to produce.
    """
    if (
        isinstance(delays, ValidatedDelayMap)
        and delays.cdfg is cdfg
        and delays.version == cdfg._version
    ):
        return delays
    checked = dict(delays) if delays is not None else unit_delays(cdfg)
    _check_delays(cdfg, checked)
    return ValidatedDelayMap(cdfg, checked)


def asap_times(cdfg: CDFG, delays: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
    """Earliest start time of every operation ignoring resources and power.

    Args:
        cdfg: The graph to analyse.
        delays: Cycles per operation; defaults to unit delays.

    Returns:
        Mapping of operation name to earliest start cycle (cycle 0 based).
    """
    delays = validated_delays(cdfg, delays)
    start: Dict[str, int] = {}
    for name in cdfg.topological_order():
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start[pred] + delays[pred])
        start[name] = ready
    return start


def alap_times(
    cdfg: CDFG,
    latency: int,
    delays: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Latest start time of every operation under a latency bound.

    Args:
        cdfg: The graph to analyse.
        latency: Total number of cycles available (all operations must
            finish by cycle ``latency``).
        delays: Cycles per operation; defaults to unit delays.

    Returns:
        Mapping of operation name to latest feasible start cycle.

    Raises:
        CDFGError: if the latency bound is smaller than the critical path.
    """
    delays = validated_delays(cdfg, delays)
    cp = critical_path_length(cdfg, delays)
    if latency < cp:
        raise CDFGError(
            f"latency bound {latency} is below the critical path length {cp}"
        )
    start: Dict[str, int] = {}
    for name in cdfg.reverse_topological_order():
        latest_finish = latency
        for succ in cdfg.successors(name):
            latest_finish = min(latest_finish, start[succ])
        start[name] = latest_finish - delays[name]
    return start


def critical_path_length(cdfg: CDFG, delays: Optional[Mapping[str, int]] = None) -> int:
    """Length (in cycles) of the longest dependence chain."""
    delays = validated_delays(cdfg, delays)
    start = asap_times(cdfg, delays)
    if not start:
        return 0
    return max(start[n] + delays[n] for n in cdfg.operation_names())


def critical_path(cdfg: CDFG, delays: Optional[Mapping[str, int]] = None) -> List[str]:
    """One longest dependence chain, as an ordered list of operation names."""
    delays = validated_delays(cdfg, delays)
    start = asap_times(cdfg, delays)
    if not start:
        return []
    # Walk backwards from the operation with the latest finish time.
    tail = max(cdfg.operation_names(), key=lambda n: start[n] + delays[n])
    path = [tail]
    current = tail
    while cdfg.predecessors(current):
        current = max(
            cdfg.predecessors(current), key=lambda p: start[p] + delays[p]
        )
        path.append(current)
    path.reverse()
    return path


def mobility(
    cdfg: CDFG,
    latency: int,
    delays: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Scheduling freedom (ALAP start minus ASAP start) for every operation."""
    delays = validated_delays(cdfg, delays)
    asap = asap_times(cdfg, delays)
    alap = alap_times(cdfg, latency, delays)
    return {n: alap[n] - asap[n] for n in cdfg.operation_names()}


def depth_levels(cdfg: CDFG) -> Dict[str, int]:
    """Structural depth (number of operations on the longest path from a source)."""
    levels: Dict[str, int] = {}
    for name in cdfg.topological_order():
        preds = cdfg.predecessors(name)
        levels[name] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def concurrency_profile(
    cdfg: CDFG,
    start_times: Mapping[str, int],
    delays: Optional[Mapping[str, int]] = None,
) -> List[int]:
    """Number of operations executing in each cycle for a given schedule.

    Virtual operations are ignored.  The profile has one entry per cycle
    from 0 to the schedule's makespan (exclusive).
    """
    delays = dict(delays) if delays is not None else unit_delays(cdfg)
    horizon = 0
    for name in cdfg.operation_names():
        if name in start_times:
            horizon = max(horizon, start_times[name] + delays[name])
    profile = [0] * horizon
    for name in cdfg.operation_names():
        op = cdfg.operation(name)
        if op.is_virtual or name not in start_times:
            continue
        for cycle in range(start_times[name], start_times[name] + delays[name]):
            profile[cycle] += 1
    return profile


def resource_lower_bound(
    cdfg: CDFG,
    latency: int,
    optype: OpType,
    delays: Optional[Mapping[str, int]] = None,
) -> int:
    """Classic lower bound on the number of FUs of one type needed.

    ``ceil(total busy cycles of that type / latency)`` — the usual
    area/latency bound used to sanity-check synthesis results.
    """
    delays = dict(delays) if delays is not None else unit_delays(cdfg)
    busy = sum(delays[n] for n in cdfg.operations_of_type(optype))
    if busy == 0:
        return 0
    return math.ceil(busy / max(1, latency))


def energy_lower_bound_power(
    total_energy: float,
    latency: int,
) -> float:
    """Minimum peak-power budget implied by total energy and a latency bound.

    If the whole computation consumes ``total_energy`` (power × cycles
    summed over operations) and must finish within ``latency`` cycles, no
    schedule can keep the per-cycle power below ``total_energy / latency``.
    Used to pick the lower end of the power sweep in the Figure-2 bench.
    """
    if latency <= 0:
        raise ValueError("latency must be positive")
    return total_energy / latency


def operation_intervals(
    start_times: Mapping[str, int],
    delays: Mapping[str, int],
) -> Dict[str, Tuple[int, int]]:
    """Half-open execution intervals ``[start, start + delay)`` per operation."""
    return {n: (start_times[n], start_times[n] + delays[n]) for n in start_times}
