#!/usr/bin/env python3
"""Inspect a synthesized design: Gantt charts, FSM controller, Verilog skeleton.

Run with::

    python examples/datapath_inspection.py [benchmark] [latency] [budget]

After synthesis this script prints everything a hardware designer would
want to review before committing to the design:

* the schedule Gantt chart (which operation runs when),
* the datapath occupancy chart (which FU instance runs what, and how busy
  each instance is),
* the derived FSM controller (states, started operations, register loads),
* the structural-Verilog skeleton of the datapath.
"""

from __future__ import annotations

import sys

from repro import build_benchmark, default_library, synthesize
from repro.datapath import build_controller
from repro.reporting import datapath_gantt, schedule_gantt, utilization


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "hal"
    latency = int(sys.argv[2]) if len(sys.argv) > 2 else 17
    budget = float(sys.argv[3]) if len(sys.argv) > 3 else 11.0

    library = default_library()
    cdfg = build_benchmark(benchmark)
    result = synthesize(cdfg, library, latency, budget)

    print(result.describe())
    print()
    print(schedule_gantt(result.schedule, cell_width=2))
    print()
    print(datapath_gantt(result.datapath))
    print()

    busiest = max(utilization(result.datapath).items(), key=lambda kv: kv[1])
    print(f"busiest functional unit: {busiest[0]} ({100 * busiest[1]:.0f}% of cycles)")
    print()

    controller = build_controller(result.datapath)
    print(controller.describe())
    print()
    print(
        f"controller contribution: area {controller.area:.1f}, "
        f"power {controller.power:.1f}/cycle "
        f"(datapath area {result.total_area:.1f}, peak power {result.peak_power:.1f})"
    )
    print()
    print(result.datapath.to_structural_verilog())


if __name__ == "__main__":
    main()
