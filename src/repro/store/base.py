"""The storage interface every cache consumer stands on.

A :class:`ResultStore` persists *payloads* — the ``{"key": ..., "record":
...}`` dictionaries the content-addressed cache has always filed — and
answers three kinds of questions:

* **point lookups** by content address (:meth:`ResultStore.get`),
* **range scans** by the columns every record shares — scenario family,
  scheduler, binder, selector, the (T, P, R) constraint axes and the
  feasible flag (:meth:`ResultStore.scan` with a :class:`StoreQuery`),
* **inventory**: :meth:`ResultStore.count`, :meth:`ResultStore.keys`,
  :meth:`ResultStore.iter_payloads`.

Two backends implement it: :class:`~repro.store.legacy.LegacyStore`, the
original one-JSON-file-per-key layout, and
:class:`~repro.store.columnar.ColumnarStore`, the sharded append-then-
compact columnar format built for millions of records.  The
:class:`~repro.explore.cache.ResultCache` facade (journal, stats,
in-memory layer, read/write gating) works identically over either.

:class:`StoredRow` is the scalar projection of one record — what a range
scan yields without touching the full JSON blob.  ``scan`` only
materializes record dictionaries when asked (``with_records=True``),
which is what makes "every frontier point ever computed for ``elliptic``
under ``pasap``" an indexed column read instead of N file opens.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, List, Optional, Tuple


class StoreError(RuntimeError):
    """A malformed store directory, file or query."""


#: Ordered scalar columns every backend indexes.  The name doubles as the
#: :class:`StoredRow` attribute and the ``repro store query`` output key.
COLUMN_NAMES = (
    "family",
    "scheduler",
    "binder",
    "selector",
    "latency",
    "power_budget",
    "register_budget",
    "feasible",
    "area",
    "fu_area",
    "peak_power",
    "result_latency",
    "registers",
    "backtracks",
    "elapsed",
    "cached",
    "error_type",
)


@dataclass(frozen=True)
class StoredRow:
    """The scalar (columnar) projection of one stored record.

    Attributes:
        key: Content address (64 hex chars).
        family: Graph identity — the registered benchmark name, or the
            inline CDFG's ``name`` field (``""`` when anonymous).
        scheduler: Scheduler strategy name of the task.
        binder: Binder strategy name of the task.
        selector: Module-selection policy name of the task.
        latency: The task's latency bound ``T`` (``None`` = unbounded).
        power_budget: The task's power budget ``P`` (``None`` = unbounded).
        register_budget: The task's register budget ``R`` (``None`` =
            unbounded).
        feasible: Whether synthesis succeeded under the constraints.
        area: Total datapath area (``None`` when infeasible).
        fu_area: Functional-unit area (``None`` when infeasible).
        peak_power: Peak per-cycle power of the result.
        result_latency: Cycles the result actually used (the record's
            ``latency`` field — distinct from the constraint ``T``).
        registers: Register count of the result's allocation.
        backtracks: Engine backtrack count.
        elapsed: Wall-clock seconds of the original synthesis.
        cached: The record's stored ``cached`` flag.
        error_type: Exception class name for infeasible records.
    """

    key: str
    family: str = ""
    scheduler: str = ""
    binder: str = ""
    selector: str = ""
    latency: Optional[int] = None
    power_budget: Optional[float] = None
    register_budget: Optional[int] = None
    feasible: bool = False
    area: Optional[float] = None
    fu_area: Optional[float] = None
    peak_power: Optional[float] = None
    result_latency: Optional[int] = None
    registers: Optional[int] = None
    backtracks: int = 0
    elapsed: float = 0.0
    cached: bool = False
    error_type: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what ``repro store query`` prints)."""
        return {name: getattr(self, name) for name in ("key",) + COLUMN_NAMES}


def family_of(task: Dict[str, Any]) -> str:
    """The scenario-family column value for one task dict.

    A registered benchmark name is its own family; an inline CDFG
    contributes its ``name`` field (anonymous graphs index as ``""``).
    """
    graph = task.get("graph")
    if isinstance(graph, str):
        return graph
    if isinstance(graph, dict):
        name = graph.get("name")
        return name if isinstance(name, str) else ""
    return ""


def row_from_payload(key: str, payload: Dict[str, Any]) -> StoredRow:
    """Project one stored payload onto its indexable scalar columns.

    Tolerant of partially-populated records (every metric defaults to the
    :class:`StoredRow` default) but raises :class:`StoreError` when the
    payload has no ``record`` dict at all — that is not a record, and
    indexing it would corrupt the store's answers.
    """
    record = payload.get("record") if isinstance(payload, dict) else None
    if not isinstance(record, dict):
        raise StoreError(f"payload for {key!r} has no record dict")
    task = record.get("task")
    task = task if isinstance(task, dict) else {}

    def _opt_int(value: Any) -> Optional[int]:
        return int(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else None

    def _opt_float(value: Any) -> Optional[float]:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = float(value)
            return None if math.isnan(value) else value
        return None

    return StoredRow(
        key=key,
        family=family_of(task),
        scheduler=str(task.get("scheduler") or ""),
        binder=str(task.get("binder") or ""),
        selector=str(task.get("selector") or ""),
        latency=_opt_int(task.get("latency")),
        power_budget=_opt_float(task.get("power_budget")),
        register_budget=_opt_int(task.get("register_budget")),
        feasible=bool(record.get("feasible")),
        area=_opt_float(record.get("area")),
        fu_area=_opt_float(record.get("fu_area")),
        peak_power=_opt_float(record.get("peak_power")),
        result_latency=_opt_int(record.get("latency")),
        registers=_opt_int(record.get("registers")),
        backtracks=int(record.get("backtracks") or 0),
        elapsed=float(record.get("elapsed") or 0.0),
        cached=bool(record.get("cached")),
        error_type=(
            str(record["error_type"]) if record.get("error_type") is not None else None
        ),
    )


Range = Tuple[Optional[float], Optional[float]]


def _normalize_range(value: Any, name: str) -> Optional[Range]:
    """Accept a scalar (exact match) or a (lo, hi) pair; ``None`` passes."""
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (float(value), float(value))
    try:
        lo, hi = value
    except (TypeError, ValueError):
        raise StoreError(
            f"query {name} must be a number or a (lo, hi) pair, got {value!r}"
        ) from None
    lo = None if lo is None else float(lo)
    hi = None if hi is None else float(hi)
    if lo is not None and hi is not None and lo > hi:
        raise StoreError(f"query {name} range is inverted: ({lo}, {hi})")
    return (lo, hi)


def _in_range(value: Optional[float], bounds: Optional[Range]) -> bool:
    if bounds is None:
        return True
    if value is None:
        return False
    lo, hi = bounds
    if lo is not None and value < lo:
        return False
    if hi is not None and value > hi:
        return False
    return True


@dataclass(frozen=True)
class StoreQuery:
    """A declarative filter over the store's scalar columns.

    String columns match exactly (``None`` = any); the constraint axes
    ``latency`` (T), ``power`` (P) and ``register`` (R) accept a single
    number for an exact match or a ``(lo, hi)`` pair for an inclusive
    range, with ``None`` at either end leaving that side open.  Records
    whose constraint is *unbounded* (``None``) only match when the axis
    is unconstrained in the query.

    ``StoreQuery(family="elliptic", scheduler="pasap", power=(8, 40))``
    is "every elliptic point pasap computed with P between 8 and 40".

    ``key_prefix`` restricts the scan to content addresses starting with
    the given hex prefix.  Backends use it to *prune*: the columnar store
    skips every shard whose directory prefix is incompatible, the legacy
    store skips object files without opening them.
    """

    family: Optional[str] = None
    scheduler: Optional[str] = None
    binder: Optional[str] = None
    selector: Optional[str] = None
    feasible: Optional[bool] = None
    latency: Any = None
    power: Any = None
    register: Any = None
    key_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "latency", _normalize_range(self.latency, "latency"))
        object.__setattr__(self, "power", _normalize_range(self.power, "power"))
        object.__setattr__(self, "register", _normalize_range(self.register, "register"))
        if self.key_prefix is not None:
            if not isinstance(self.key_prefix, str):
                raise StoreError(
                    f"query key_prefix must be a hex string, got {self.key_prefix!r}"
                )
            prefix = self.key_prefix.lower()
            if not prefix or len(prefix) > 64 or set(prefix) - set("0123456789abcdef"):
                raise StoreError(
                    "query key_prefix must be 1..64 hex chars, "
                    f"got {self.key_prefix!r}"
                )
            object.__setattr__(self, "key_prefix", prefix)

    @property
    def is_empty(self) -> bool:
        """True when the query matches every record (no filter set)."""
        return all(getattr(self, f.name) is None for f in fields(self))

    def matches(self, row: StoredRow) -> bool:
        """Whether one row satisfies every filter of this query."""
        if self.key_prefix is not None and not row.key.startswith(self.key_prefix):
            return False
        if self.family is not None and row.family != self.family:
            return False
        if self.scheduler is not None and row.scheduler != self.scheduler:
            return False
        if self.binder is not None and row.binder != self.binder:
            return False
        if self.selector is not None and row.selector != self.selector:
            return False
        if self.feasible is not None and row.feasible != self.feasible:
            return False
        return (
            _in_range(row.latency, self.latency)
            and _in_range(row.power_budget, self.power)
            and _in_range(row.register_budget, self.register)
        )


class ResultStore(ABC):
    """Abstract persistence backend for content-addressed result payloads.

    Implementations must be safe for concurrent *processes* writing to one
    directory (each :meth:`put` lands atomically, readers never observe a
    torn record) and must treat corrupt data as absent rather than fatal —
    the consumers above recompute on a miss.
    """

    #: Registry-style backend name (``"legacy"`` / ``"columnar"``).
    backend = "abstract"

    def __init__(self, root) -> None:
        from pathlib import Path

        self.root = Path(root).expanduser()

    # ------------------------------------------------------------------ #
    # Point access
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key`` (``{"key":..., "record":...}``), or None."""

    @abstractmethod
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist ``payload`` under ``key`` (overwrite-by-address is fine:
        the address is a content hash, so twins carry identical records)."""

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    @abstractmethod
    def scan(
        self,
        query: Optional[StoreQuery] = None,
        *,
        with_records: bool = False,
    ) -> Iterator[Any]:
        """Yield :class:`StoredRow` for every record matching ``query``.

        With ``with_records=True`` yields ``(row, record_dict)`` pairs —
        the only mode that deserializes full records, and only for the
        rows that matched.
        """

    def keys(self) -> List[str]:
        """Every content address in the store (unordered)."""
        return [row.key for row in self.scan()]

    def iter_payloads(self) -> Iterator[Dict[str, Any]]:
        """Yield every stored payload (the migration feed)."""
        for row, record in self.scan(with_records=True):
            yield {"key": row.key, "record": record}

    # ------------------------------------------------------------------ #
    # Inventory / maintenance
    # ------------------------------------------------------------------ #
    @abstractmethod
    def count(self) -> int:
        """Number of distinct records stored."""

    def compact(self) -> Dict[str, Any]:
        """Merge loose data into its densest on-disk form; return counters.

        A no-op for backends with nothing to compact.
        """
        return {"backend": self.backend, "compacted": 0}

    @abstractmethod
    def store_stats(self) -> Dict[str, Any]:
        """Backend-specific inventory (file/segment/shard counts, bytes)."""
