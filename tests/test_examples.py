"""Smoke test every example script, so the docs' code can never rot.

Each ``examples/*.py`` runs in a subprocess with the repository's
``src`` on ``PYTHONPATH`` — exactly how the README tells a user to run
them — and must exit 0.  A new example is picked up automatically by the
glob; an example that breaks with an API change fails CI (and tier 1)
instead of quietly rotting in the docs.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "serve_quickstart.py" in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
