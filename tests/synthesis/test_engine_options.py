"""Tests for the engine's tunable options and internal decision scoring."""

import pytest

from repro.scheduling.constraints import SynthesisConstraints
from repro.synthesis.engine import EngineOptions, PowerConstrainedSynthesizer


def run(cdfg, library, latency, power, **option_overrides):
    options = EngineOptions(**option_overrides)
    constraints = SynthesisConstraints.of(latency, power)
    return PowerConstrainedSynthesizer(library, constraints, options).synthesize(cdfg)


class TestDelayPenalty:
    def test_zero_weight_recovers_pure_area_greedy(self, cosine, library):
        """With no delay penalty the greedy is purely area-lexicographic; the
        result is still legal, just (usually) larger."""
        priced = run(cosine, library, 15, 30.0)
        unpriced = run(cosine, library, 15, 30.0, delay_area_weight=0.0)
        priced.verify()
        unpriced.verify()
        # Pricing schedule delay should not hurt on the paper benchmarks.
        assert priced.total_area <= unpriced.total_area * 1.05

    def test_large_weight_still_legal(self, hal, library):
        result = run(hal, library, 17, 12.0, delay_area_weight=50.0)
        result.verify()


class TestModuleUpgrade:
    def test_disabled_upgrade_never_uses_parallel_multiplier_at_loose_t(self, hal, library):
        result = run(hal, library, 17, 12.0, allow_module_upgrade=False)
        result.verify()
        assert result.allocation_summary().get("Mult (par.)", 0) == 0

    def test_upgrade_allowed_can_differ(self, cosine, library):
        """Allowing per-decision module upgrades must never make the result
        illegal; areas may legitimately differ from the restricted run."""
        restricted = run(cosine, library, 12, 30.0, allow_module_upgrade=False)
        free = run(cosine, library, 12, 30.0, allow_module_upgrade=True)
        restricted.verify()
        free.verify()


class TestOptionObject:
    def test_defaults(self):
        options = EngineOptions()
        assert options.trace is True
        assert options.allow_module_upgrade is True
        assert options.delay_area_weight == pytest.approx(4.0)

    def test_options_recorded_per_run(self, hal, library):
        first = run(hal, library, 17, 12.0)
        second = run(hal, library, 17, 12.0, trace=False)
        assert first.trace and not second.trace
        # identical constraints -> identical datapath regardless of tracing
        assert first.total_area == second.total_area
