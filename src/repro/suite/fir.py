"""16-tap FIR filter benchmark (additional workload).

Not part of the paper's Figure 2, but a standard HLS workload used by the
extra examples and ablation benchmarks: 16 constant multiplications (one
per tap) followed by a balanced adder tree.  Its wide, shallow structure
is the opposite of HAL's long multiply chain, which makes it a good
stress test for the power budget — many multiplications want to execute
in the same few cycles.
"""

from __future__ import annotations

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG


def fir_cdfg(taps: int = 16, include_io: bool = True) -> CDFG:
    """Build a ``taps``-tap FIR filter CDFG with a balanced adder tree.

    Args:
        taps: Number of filter taps (must be at least 2).
        include_io: Include explicit input/output operations (default).

    Returns:
        A validated :class:`~repro.ir.cdfg.CDFG` named ``"fir"`` (or
        ``"fir<N>"`` for a non-default tap count).
    """
    if taps < 2:
        raise ValueError("a FIR filter needs at least two taps")
    name = "fir" if taps == 16 else f"fir{taps}"
    b = CDFGBuilder(name)

    if include_io:
        samples = [b.input(f"in_x{i}") for i in range(taps)]
    else:
        samples = [b.const(f"x{i}") for i in range(taps)]
    coeffs = [b.const(f"coef_{i}") for i in range(taps)]

    products = [b.mul(f"p{i}", samples[i], coeffs[i]) for i in range(taps)]

    # Balanced adder tree.
    level = 0
    current = products
    while len(current) > 1:
        next_level = []
        for i in range(0, len(current) - 1, 2):
            next_level.append(b.add(f"t{level}_{i // 2}", current[i], current[i + 1]))
        if len(current) % 2 == 1:
            next_level.append(current[-1])
        current = next_level
        level += 1

    if include_io:
        b.output("out_y", current[0])
    return b.build()
