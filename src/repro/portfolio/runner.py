"""The portfolio race runner: canonical decisions, prior-ranked launches.

One race takes a ``scheduler="portfolio"`` task, fans its contender
subset out over a :class:`~repro.portfolio.executors.RaceExecutor`, gates
every completion through the certificate check (each contender runs with
``verify=True``), and returns a single :class:`~repro.api.batch.TaskResult`
shaped exactly like any other record — plus a ``winner`` naming the
strategy pair that produced it.

The decision rule is **canonical**, not first-past-the-post: the winner
is the canonically-*first* certified-feasible contender, where canonical
order is the configured ``portfolio_strategies`` tuple — the order hashed
into the task's content address.  The race resolves as soon as contender
``i`` is certified feasible and every contender before it has a terminal
outcome; contenders after the earliest certified one are cancelled (their
result can no longer matter).  Parallelism, completion order, crashes of
later contenders and prior-ranked launch order therefore change only how
*fast* the answer arrives, never which answer it is — the property that
keeps a content-addressed cache coherent and makes priors safe to mine
from anything.

``deadline_s`` switches the rule: collect certified results until the
deadline (or until everyone is terminal) and return the best-area one,
ties broken by canonical index.  A deadline that expires with nothing
certified yields an infeasible ``PortfolioDeadlineError`` record, which
is never cached — it reflects the deadline, not the spec.

Outcome classification of an all-infeasible race: if every contender
returned a genuine verdict, the portfolio verdict is infeasible with the
canonical-first contender's ``error_type`` and is cacheable; if any
contender *errored* (``WorkerCrash`` included), the aggregate is a
non-cacheable ``PortfolioExecutionError`` — a crash is missing evidence,
not evidence of infeasibility.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..api.batch import TaskResult
from ..api.task import SynthesisTask, TaskError
from ..store.base import family_of
from ..store.priors import Priors, mine_priors, pair_label
from .config import PortfolioConfig
from .executors import Contender, RaceExecutor, default_executor

__all__ = [
    "ContenderResult",
    "PortfolioOutcome",
    "PortfolioRunner",
    "run_portfolio",
]

#: ``error_type`` of a deadline that expired with nothing certified.
DEADLINE_ERROR = "PortfolioDeadlineError"

#: ``error_type`` of an all-infeasible race tainted by contender errors.
EXECUTION_ERROR = "PortfolioExecutionError"

#: Record-dict fields copied from a winning contender onto the portfolio
#: record (everything scalar except identity/bookkeeping fields).
_COPIED_FIELDS = (
    "area",
    "fu_area",
    "peak_power",
    "latency",
    "registers",
    "backtracks",
)


def _classify(outcome: Optional[Dict[str, Any]]) -> str:
    """``pending`` / ``feasible`` / ``infeasible`` / ``error`` of one outcome."""
    if outcome is None:
        return "pending"
    if outcome.get("feasible") is True:
        return "feasible"
    if "feasible" in outcome:
        return "infeasible"
    return "error"


@dataclass
class ContenderResult:
    """One contender's fate in a race.

    Attributes:
        contender: The entrant (index, label, concrete task).
        outcome: Its record/error dict, ``None`` while pending.
        cancelled: True when the runner stopped it as a loser.
        from_cache: True when the outcome was answered from the cache
            without launching.
    """

    contender: Contender
    outcome: Optional[Dict[str, Any]] = None
    cancelled: bool = False
    from_cache: bool = False

    @property
    def status(self) -> str:
        """``feasible`` / ``infeasible`` / ``error`` / ``cancelled`` / ``pending``."""
        if self.outcome is None:
            return "cancelled" if self.cancelled else "pending"
        return _classify(self.outcome)

    @property
    def terminal(self) -> bool:
        return self.outcome is not None

    def to_dict(self) -> Dict[str, Any]:
        """The per-contender summary shipped on :class:`PortfolioOutcome`."""
        summary: Dict[str, Any] = {
            "label": self.contender.label,
            "status": self.status,
            "from_cache": self.from_cache,
        }
        if self.outcome is not None:
            for key in ("area", "elapsed", "error_type"):
                if self.outcome.get(key) is not None:
                    summary[key] = self.outcome[key]
        return summary


@dataclass
class PortfolioOutcome:
    """Everything one race produced.

    Attributes:
        record: The portfolio-level :class:`~repro.api.batch.TaskResult`
            (its ``task`` is the portfolio task; its ``winner`` names the
            winning pair, if any).
        winner: The winning pair label, ``None`` for infeasible races.
        cacheable: Whether the record is a true verdict on the spec —
            deadline expiries and crash-tainted infeasibles are not.
        launch_order: Pair labels in the order they were (or would be)
            launched, after prior ranking.
        priors_ranked: True when priors actually permuted the canonical
            launch order.
        deadline_expired: True when a ``deadline_s`` ran out before a
            certified result arrived.
        first_certified_s: Race-clock seconds until the first certified
            completion *arrived* (the metric priors improve), ``None``
            when nothing certified.
        elapsed: Race-clock seconds until the decision.
        contenders: Per-contender summaries, in canonical order.
    """

    record: TaskResult
    winner: Optional[str] = None
    cacheable: bool = False
    launch_order: List[str] = field(default_factory=list)
    priors_ranked: bool = False
    deadline_expired: bool = False
    first_certified_s: Optional[float] = None
    elapsed: float = 0.0
    contenders: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (what the CLI prints with ``--explain``)."""
        return {
            "record": self.record.to_dict(),
            "winner": self.winner,
            "cacheable": self.cacheable,
            "launch_order": list(self.launch_order),
            "priors_ranked": self.priors_ranked,
            "deadline_expired": self.deadline_expired,
            "first_certified_s": self.first_certified_s,
            "elapsed": self.elapsed,
            "contenders": [dict(entry) for entry in self.contenders],
        }


class PortfolioRunner:
    """Drives one race over an injectable executor and clock.

    Every effect the runner has on the outside world flows through the
    :class:`~repro.portfolio.executors.RaceExecutor` seam and the cache,
    and every time measurement through ``clock`` — which is what makes
    all race orderings (wins, ties, crashes, deadline expiry mid-flight)
    drivable deterministically in tests, with zero sleeps.
    """

    def __init__(
        self,
        task: SynthesisTask,
        *,
        cache=None,
        executor: Optional[RaceExecutor] = None,
        clock: Optional[Callable[[], float]] = None,
        priors: Optional[Priors] = None,
        max_parallel: Optional[int] = None,
    ) -> None:
        self.task = task
        self.cache = cache
        self.config = PortfolioConfig.from_task(task)
        self.clock = clock if clock is not None else time.monotonic
        self.executor = executor if executor is not None else default_executor(cache)
        self.max_parallel = max_parallel
        self._priors = priors
        pairs = self.config.resolved_pairs(task.binder)
        _, engine_overrides = PortfolioConfig.from_task_options(task.options)
        self.slots: List[ContenderResult] = []
        for index, (scheduler, binder) in enumerate(pairs):
            contender_task = dataclasses.replace(
                task,
                scheduler=scheduler,
                binder=binder,
                options=dict(engine_overrides),
            )
            self.slots.append(
                ContenderResult(
                    Contender(
                        index=index,
                        label=pair_label(scheduler, binder),
                        scheduler=scheduler,
                        binder=binder,
                        task=contender_task,
                    )
                )
            )

    # ------------------------------------------------------------------ #
    # Priors
    # ------------------------------------------------------------------ #
    def priors(self) -> Priors:
        """The priors ranking this race's launch order (mined lazily)."""
        if self._priors is None:
            if self.cache is not None and getattr(self.cache, "read", False):
                self._priors = mine_priors(
                    self.cache.store, family=family_of(self.task.to_dict())
                )
            else:
                self._priors = Priors()
        return self._priors

    def launch_order(self) -> List[ContenderResult]:
        """Slots in prior-ranked launch order (canonical order when no priors)."""
        labels = [slot.contender.label for slot in self.slots]
        ranked = self.priors().rank(
            labels,
            family=family_of(self.task.to_dict()),
            latency=self.task.latency,
            power_budget=self.task.power_budget,
            register_budget=self.task.register_budget,
        )
        by_label = {slot.contender.label: slot for slot in self.slots}
        return [by_label[label] for label in ranked]

    # ------------------------------------------------------------------ #
    # The race
    # ------------------------------------------------------------------ #
    def run(self) -> PortfolioOutcome:
        """Race the contenders and return the portfolio outcome."""
        started = self.clock()
        first_certified: Optional[float] = None
        ordered = self.launch_order()
        launch_labels = [slot.contender.label for slot in ordered]
        priors_ranked = launch_labels != [s.contender.label for s in self.slots]

        # The cache pre-answers whatever it can: a warm concrete-strategy
        # record is a completion that never needs a launch, which is what
        # makes portfolio wins strategy-exact on re-lookup.
        if self.cache is not None and getattr(self.cache, "read", False):
            for slot in ordered:
                hit = self.cache.get(slot.contender.task)
                if hit is not None:
                    slot.outcome = hit.to_dict()
                    slot.from_cache = True
                    if slot.status == "feasible" and first_certified is None:
                        first_certified = 0.0

        deadline = self.config.deadline_s
        pending = [slot for slot in ordered if slot.outcome is None]
        limit = self.max_parallel if self.max_parallel else len(pending)
        limit = max(1, int(limit))
        in_flight = 0
        deadline_expired = False

        def launch_some() -> None:
            nonlocal in_flight
            while pending and in_flight < limit and not self._decided():
                slot = pending.pop(0)
                if slot.cancelled:
                    continue
                self.executor.launch(slot.contender)
                in_flight += 1

        def cancel_losers() -> None:
            """In race mode, contenders after the earliest certified one lose."""
            if deadline is not None:
                return
            certified = [s.contender.index for s in self.slots if s.status == "feasible"]
            if not certified:
                return
            earliest = min(certified)
            for slot in self.slots:
                if (
                    slot.contender.index > earliest
                    and not slot.terminal
                    and not slot.cancelled
                ):
                    slot.cancelled = True
                    self.executor.cancel(slot.contender)

        try:
            cancel_losers()
            launch_some()
            while True:
                if self._decided():
                    break
                if in_flight == 0 and not pending:
                    break
                timeout: Optional[float] = None
                if deadline is not None:
                    timeout = deadline - (self.clock() - started)
                    if timeout <= 0:
                        deadline_expired = any(
                            not s.terminal and not s.cancelled for s in self.slots
                        )
                        break
                before_poll = self.clock()
                completion = self.executor.poll(timeout)
                if completion is None:
                    if deadline is not None and self.clock() > before_poll:
                        continue  # the deadline check above decides expiry
                    break  # the executor ran dry without consuming time
                index, outcome = completion
                slot = self.slots[index]
                if slot.cancelled:  # a straggler answer from a loser
                    continue
                slot.outcome = outcome
                in_flight = max(0, in_flight - 1)
                if slot.status == "feasible" and first_certified is None:
                    first_certified = self.clock() - started
                cancel_losers()
                launch_some()
            # whoever is still running past the decision/deadline loses
            for slot in self.slots:
                if not slot.terminal and not slot.cancelled:
                    slot.cancelled = True
                    self.executor.cancel(slot.contender)
        finally:
            self.executor.close()

        elapsed = self.clock() - started
        return self._conclude(
            elapsed=elapsed,
            first_certified=first_certified,
            launch_labels=launch_labels,
            priors_ranked=priors_ranked,
            deadline_expired=deadline_expired,
        )

    def _decided(self) -> bool:
        """Whether the decision rule already has its answer."""
        if self.config.deadline_s is not None:
            # deadline mode collects until expiry or everyone is terminal
            return all(s.terminal or s.cancelled for s in self.slots)
        for slot in self.slots:  # canonical order
            status = slot.status
            if status == "feasible":
                return True
            if status == "pending":
                return False
        return True  # everyone terminal (or cancelled), nobody feasible

    def _winner_slot(self) -> Optional[ContenderResult]:
        certified = [s for s in self.slots if s.status == "feasible"]
        if not certified:
            return None
        if self.config.deadline_s is None:
            # canonical rule: first certified contender in config order
            for slot in self.slots:
                if slot.status == "feasible":
                    return slot
            return None
        # deadline rule: best area, ties to the canonical-first (a feasible
        # outcome without an area sorts last rather than crashing the pick)
        def area_key(slot: ContenderResult):
            area = (slot.outcome or {}).get("area")
            return (area is None, area if area is not None else 0.0, slot.contender.index)

        return min(certified, key=area_key)

    def _conclude(
        self,
        *,
        elapsed: float,
        first_certified: Optional[float],
        launch_labels: Sequence[str],
        priors_ranked: bool,
        deadline_expired: bool,
    ) -> PortfolioOutcome:
        winner = self._winner_slot()
        if winner is not None:
            outcome = winner.outcome or {}
            record = TaskResult(
                task=self.task,
                feasible=True,
                elapsed=elapsed,
                winner=winner.contender.label,
                **{name: outcome.get(name) for name in _COPIED_FIELDS if name != "backtracks"},
                backtracks=int(outcome.get("backtracks") or 0),
            )
            # File the winner under its own concrete-strategy address too
            # (idempotent for executors that already cached it) so warm
            # lookups stay strategy-exact.
            if (
                self.cache is not None
                and getattr(self.cache, "write", False)
                and not winner.from_cache
                and not outcome.get("cached")
            ):
                self.cache.put(
                    winner.contender.task,
                    _contender_record(winner.contender.task, outcome),
                )
            return PortfolioOutcome(
                record=record,
                winner=winner.contender.label,
                cacheable=True,
                launch_order=list(launch_labels),
                priors_ranked=priors_ranked,
                deadline_expired=False,
                first_certified_s=first_certified,
                elapsed=elapsed,
                contenders=[slot.to_dict() for slot in self.slots],
            )

        lines = [
            f"{slot.contender.label}: "
            + (
                str((slot.outcome or {}).get("error"))
                if slot.terminal
                else slot.status
            )
            for slot in self.slots
        ]
        if deadline_expired:
            error_type = DEADLINE_ERROR
            cacheable = False
            header = (
                f"portfolio deadline of {self.config.deadline_s}s expired with "
                "no certified result"
            )
        else:
            errored = [s for s in self.slots if s.status in ("error", "cancelled", "pending")]
            if errored:
                error_type = EXECUTION_ERROR
                cacheable = False
                header = (
                    f"{len(errored)} of {len(self.slots)} portfolio contenders "
                    "failed to produce a verdict"
                )
            else:
                # every contender returned a true verdict: the portfolio
                # verdict is infeasible, typed by the canonical-first one
                error_type = (
                    (self.slots[0].outcome or {}).get("error_type") or "SynthesisError"
                )
                cacheable = True
                header = f"all {len(self.slots)} portfolio contenders are infeasible"
        record = TaskResult(
            task=self.task,
            feasible=False,
            error="\n".join([header] + lines),
            error_type=error_type,
            elapsed=elapsed,
        )
        return PortfolioOutcome(
            record=record,
            winner=None,
            cacheable=cacheable,
            launch_order=list(launch_labels),
            priors_ranked=priors_ranked,
            deadline_expired=deadline_expired,
            first_certified_s=first_certified,
            elapsed=elapsed,
            contenders=[slot.to_dict() for slot in self.slots],
        )


def _contender_record(task: SynthesisTask, outcome: Dict[str, Any]) -> TaskResult:
    """Rebuild a :class:`TaskResult` for one contender from its outcome dict."""
    return TaskResult(
        task=task,
        feasible=bool(outcome.get("feasible")),
        area=outcome.get("area"),
        fu_area=outcome.get("fu_area"),
        peak_power=outcome.get("peak_power"),
        latency=outcome.get("latency"),
        registers=outcome.get("registers"),
        backtracks=int(outcome.get("backtracks") or 0),
        error=outcome.get("error"),
        error_type=outcome.get("error_type"),
        elapsed=float(outcome.get("elapsed") or 0.0),
    )


def run_portfolio(
    task: SynthesisTask,
    *,
    cache=None,
    executor: Optional[RaceExecutor] = None,
    clock: Optional[Callable[[], float]] = None,
    priors: Optional[Priors] = None,
    max_parallel: Optional[int] = None,
) -> PortfolioOutcome:
    """Race one portfolio task; the functional face of :class:`PortfolioRunner`.

    Args:
        task: A ``scheduler="portfolio"`` task.
        cache: A :class:`~repro.explore.cache.ResultCache`.  Pre-answers
            contenders it already holds, receives the winner's record
            under its concrete-strategy address, and supplies the store
            priors mine from.
        executor: The race seam; defaults to
            :func:`~repro.portfolio.executors.default_executor` (process
            workers when possible, inline otherwise).
        clock: Monotonic-seconds callable; defaults to
            :func:`time.monotonic`.
        priors: Pre-mined launch priors; mined from the cache's store
            when omitted.
        max_parallel: Launch-slot limit; every contender at once when
            omitted.

    Raises:
        TaskError: When the task is not a portfolio task or its config
            is malformed.
    """
    if task.scheduler != "portfolio":
        raise TaskError(
            f"run_portfolio requires a portfolio task, got scheduler={task.scheduler!r}"
        )
    runner = PortfolioRunner(
        task,
        cache=cache,
        executor=executor,
        clock=clock,
        priors=priors,
        max_parallel=max_parallel,
    )
    return runner.run()
