"""Fluent builder for CDFGs.

Writing benchmark graphs node-by-node with explicit
:class:`~repro.ir.operation.Operation` objects is verbose.  The
:class:`CDFGBuilder` offers a compact expression-like API::

    b = CDFGBuilder("hal")
    x = b.input("x")
    u = b.input("u")
    three = b.const("three", 3)
    m1 = b.mul("m1", three, x)
    m2 = b.mul("m2", u, m1)
    b.output("out_u", m2)
    graph = b.build()

Every helper returns the operation *name* so results can be fed directly
into later operations.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .cdfg import CDFG
from .operation import Operation, OpType
from .validate import validate_cdfg


class CDFGBuilder:
    """Incrementally construct a :class:`~repro.ir.cdfg.CDFG`."""

    def __init__(self, name: str = "cdfg") -> None:
        self._cdfg = CDFG(name)
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Generic node creation
    # ------------------------------------------------------------------ #
    def _fresh_name(self, prefix: str) -> str:
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if candidate not in self._cdfg:
                return candidate

    def op(
        self,
        optype: OpType,
        name: Optional[str] = None,
        inputs: Sequence[str] = (),
        **attrs: Any,
    ) -> str:
        """Add an operation of ``optype`` fed by ``inputs``; return its name."""
        if name is None:
            name = self._fresh_name(optype.name.lower())
        operation = Operation(name, optype, attrs=attrs)
        self._cdfg.add_operation(operation)
        for port, producer in enumerate(inputs):
            self._cdfg.add_edge(producer, name, port=port)
        return name

    # ------------------------------------------------------------------ #
    # Typed helpers
    # ------------------------------------------------------------------ #
    def input(self, name: Optional[str] = None, **attrs: Any) -> str:
        """Add a primary input operation."""
        return self.op(OpType.INPUT, name, (), **attrs)

    def const(self, name: Optional[str] = None, value: Any = None, **attrs: Any) -> str:
        """Add a constant (virtual) operation."""
        if value is not None:
            attrs["value"] = value
        return self.op(OpType.CONST, name, (), **attrs)

    def add(self, name: Optional[str] = None, a: str = "", b: str = "", **attrs: Any) -> str:
        return self.op(OpType.ADD, name, (a, b), **attrs)

    def sub(self, name: Optional[str] = None, a: str = "", b: str = "", **attrs: Any) -> str:
        return self.op(OpType.SUB, name, (a, b), **attrs)

    def mul(self, name: Optional[str] = None, a: str = "", b: str = "", **attrs: Any) -> str:
        return self.op(OpType.MUL, name, (a, b), **attrs)

    def gt(self, name: Optional[str] = None, a: str = "", b: str = "", **attrs: Any) -> str:
        return self.op(OpType.GT, name, (a, b), **attrs)

    def lt(self, name: Optional[str] = None, a: str = "", b: str = "", **attrs: Any) -> str:
        return self.op(OpType.LT, name, (a, b), **attrs)

    def output(self, name: Optional[str] = None, value: str = "", **attrs: Any) -> str:
        """Add a primary output consuming ``value``."""
        return self.op(OpType.OUTPUT, name, (value,), **attrs)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    @property
    def cdfg(self) -> CDFG:
        """The graph under construction (not yet validated)."""
        return self._cdfg

    def build(self, validate: bool = True) -> CDFG:
        """Return the constructed CDFG, validating it by default."""
        if validate:
            validate_cdfg(self._cdfg)
        return self._cdfg
