"""Reporting: ASCII tables, series/CSV/plots and paper-experiment drivers."""

from .table import format_cell, render_table
from .series import Series, ascii_plot, save_csv, to_csv
from .gantt import datapath_gantt, schedule_gantt, utilization
from .experiments import (
    Figure1Data,
    Figure2Data,
    figure1_experiment,
    figure2_experiment,
    table1_report,
)

__all__ = [
    "format_cell",
    "render_table",
    "Series",
    "ascii_plot",
    "save_csv",
    "to_csv",
    "datapath_gantt",
    "schedule_gantt",
    "utilization",
    "Figure1Data",
    "Figure2Data",
    "figure1_experiment",
    "figure2_experiment",
    "table1_report",
]
