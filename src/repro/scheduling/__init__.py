"""Schedulers: classical baselines and the paper's power-constrained pasap/palap."""

from .constraints import (
    ConstraintError,
    PowerConstraint,
    ResourceConstraint,
    SynthesisConstraints,
    TimeConstraint,
    feasible_power_floor,
    minimum_feasible_power,
)
from .schedule import Schedule, ScheduleError, add_to_profile, profile_allows
from .asap import asap_schedule, asap_schedule_with_library
from .alap import alap_schedule, alap_schedule_with_library
from .pasap import (
    PowerInfeasibleError,
    default_priority,
    pasap_schedule,
    pasap_schedule_with_library,
    pasap_start_times,
)
from .palap import palap_schedule, palap_schedule_with_library, palap_start_times
from .mobility import Window, WindowSet, compute_windows, windows_feasible
from .list_scheduler import (
    ResourceInfeasibleError,
    greedy_allocation_for_latency,
    list_schedule,
    minimal_allocation,
)
from .force_directed import force_directed_schedule
from .two_step import TwoStepResult, two_step_schedule
from .exact import (
    ExactSchedulerError,
    exists_schedule,
    minimum_latency_under_power,
    optimality_gap,
)

__all__ = [
    "ConstraintError",
    "PowerConstraint",
    "ResourceConstraint",
    "SynthesisConstraints",
    "TimeConstraint",
    "feasible_power_floor",
    "minimum_feasible_power",
    "Schedule",
    "ScheduleError",
    "add_to_profile",
    "profile_allows",
    "asap_schedule",
    "asap_schedule_with_library",
    "alap_schedule",
    "alap_schedule_with_library",
    "PowerInfeasibleError",
    "default_priority",
    "pasap_schedule",
    "pasap_schedule_with_library",
    "pasap_start_times",
    "palap_schedule",
    "palap_schedule_with_library",
    "palap_start_times",
    "Window",
    "WindowSet",
    "compute_windows",
    "windows_feasible",
    "ResourceInfeasibleError",
    "greedy_allocation_for_latency",
    "list_schedule",
    "minimal_allocation",
    "force_directed_schedule",
    "TwoStepResult",
    "two_step_schedule",
    "ExactSchedulerError",
    "exists_schedule",
    "minimum_latency_under_power",
    "optimality_gap",
]
